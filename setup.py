"""Legacy setup shim: enables fully offline installs via
``python setup.py develop`` when pip cannot fetch build dependencies
(the project metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
