#!/usr/bin/env python3
"""Geo-distributed scaling: regenerate the shape of Figures 2 and 3.

Runs message-level latency measurements for small clusters (and the
paper's node counts when ``REPRO_FULL=1``) plus the capacity-model
throughput sweep over the full n ∈ {5, 10, 16, 31, 61, 100}.

Run:  python examples/geo_scaling.py
      REPRO_FULL=1 python examples/geo_scaling.py   # paper-scale (slow)
"""

import os

from repro.harness.experiments import (
    fig2_commit_latency,
    fig3_throughput,
    format_rows,
    goodcase_latency_rounds,
    node_counts,
)


def main() -> None:
    print("Good-case latency in message delays (Theorem 3: Lyra = 3):")
    print(format_rows([goodcase_latency_rounds()]))

    ns = node_counts()
    print(f"\nFig. 2 — commit latency vs n (message-level, n ∈ {ns}):")
    print(format_rows(fig2_commit_latency(ns)))

    print("\nFig. 3 — saturation throughput vs n (capacity model):")
    rows = fig3_throughput()
    print(format_rows(rows))
    from repro.metrics.ascii_chart import chart_fig3

    print()
    print(chart_fig3(rows))

    by_n = {r["n"]: r for r in rows}
    print(
        f"\nAt n = 100: Lyra {by_n[100]['lyra_ktps']:.0f}k tx/s vs "
        f"Pompē {by_n[100]['pompe_ktps']:.0f}k tx/s "
        f"→ {by_n[100]['ratio']:.1f}x (paper: up to 7x; Lyra bound: "
        f"{by_n[100]['lyra_bound']})"
    )
    if not os.environ.get("REPRO_FULL"):
        print("\n(set REPRO_FULL=1 to sweep the paper's node counts end to end)")


if __name__ == "__main__":
    main()
