#!/usr/bin/env python3
"""Observability: trace one transaction batch through the whole pipeline.

Instruments a Lyra cluster with the structured trace log, runs it, then
prints the life of the first committed instance — proposed, decided
(3-message-delay BOC), committed (prefix stability), executed (reveal) —
at every replica, plus the cluster-wide phase decomposition.  Dumps the
full trace to ``lyra_trace.jsonl`` for offline analysis.

Run:  python examples/trace_timeline.py
"""

from repro.harness import ExperimentConfig, build_lyra_cluster
from repro.harness.experiments import format_rows, latency_breakdown
from repro.metrics.tracelog import PHASES, install_lyra_tracing


def main() -> None:
    cfg = ExperimentConfig(
        n_nodes=4,
        batch_size=10,
        clients_per_node=1,
        client_window=5,
        duration_us=4_000_000,
        warmup_rounds=2,
        warmup_spacing_us=150_000,
        seed=8,
    )
    cluster = build_lyra_cluster(cfg)
    log = install_lyra_tracing(cluster)
    cluster.run()

    first = cluster.nodes[0].commit.output_log[0].instance
    print(f"Timeline of instance {first} (proposer pid {first.proposer}):\n")
    print(f"{'phase':<12}" + "".join(f"node {pid:<7}" for pid in range(4)))
    base = None
    for phase in PHASES:
        cells = []
        for pid in range(4):
            t = log.first_times(first, node=pid).get(phase)
            if t is None:
                cells.append(f"{'-':<12}")
                continue
            if base is None:
                base = t
            cells.append(f"+{(t - base) / 1000.0:<10.1f}")
        print(f"{phase:<12}" + "".join(cells))
    print("\n(times in ms relative to the proposal; '-' = event at another node)")

    print("\nCluster-wide phase decomposition (proposer-side means):")
    print(format_rows(latency_breakdown(n=4)))

    count = log.dump_jsonl("lyra_trace.jsonl")
    print(f"\nFull trace: {count} events written to lyra_trace.jsonl")


if __name__ == "__main__":
    main()
