#!/usr/bin/env python3
"""Quickstart: run a 4-node Lyra cluster and commit transactions.

Builds the full stack — geo-distributed simulated WAN (Oregon / Ireland /
Sydney), VSS commit-reveal, leaderless BOC, the Commit protocol — drives
it with closed-loop clients for a few simulated seconds, and prints what
the paper's Theorem 4 promises: a totally ordered, prefix-consistent,
obfuscated-until-commit transaction log.

Run:  python examples/quickstart.py
"""

from repro.harness import ExperimentConfig, build_lyra_cluster
from repro.metrics.stats import summarize_latencies


def main() -> None:
    config = ExperimentConfig(
        n_nodes=4,
        batch_size=10,
        clients_per_node=1,
        client_window=5,
        duration_us=5_000_000,  # 5 simulated seconds
        warmup_rounds=2,
        warmup_spacing_us=150_000,
        seed=42,
    )
    print(f"Building a Lyra cluster: n={config.n_nodes}, f={config.resolved_f()}")
    cluster = build_lyra_cluster(config)
    print(
        "Topology:",
        {pid: cluster.topology.region_of(pid) for pid in range(config.n_nodes)},
    )

    result = cluster.run()

    print("\n--- results ------------------------------------------")
    print(f"simulated duration : {result.duration_us / 1e6:.1f} s")
    print(f"events processed   : {result.events_processed:,}")
    print(f"messages delivered : {result.messages_delivered:,}")
    print(f"txs committed      : {result.committed_count}")
    print(f"latency            : {summarize_latencies(result.latencies_us).row()}")
    print(f"SMR safety         : {'OK' if result.safety_violation is None else result.safety_violation}")

    # Every replica holds the same committed log (prefix consistency).
    logs = [node.output_sequence() for node in cluster.nodes]
    print(f"committed log len  : {[len(log) for log in logs]}")
    head = logs[0][:3]
    print("log head (seq, cipher-id):")
    for seq, cid in head:
        print(f"  seq={seq:>12}  cipher={cid.hex()[:16]}…")

    # And the executed KV state is identical everywhere.
    sizes = {pid: len(store) for pid, store in cluster.stores.items()}
    print(f"kv store sizes     : {sizes}")


if __name__ == "__main__":
    main()
