#!/usr/bin/env python3
"""MEV quantified: a sandwich attack on an AMM, priced under both orders.

The paper's introduction motivates Lyra with the hundreds of millions of
dollars extracted by transaction reordering.  This example makes that
concrete on a constant-product AMM:

1. Alice submits a large BUY (price-moving).
2. Under a clear-text protocol (Pompē's ordering phase), Mallory sees the
   order before it is sequenced and wraps it: her own BUY lands *before*
   Alice (cheap), her SELL lands *after* (expensive) — the classic
   sandwich.  We replay both committed orders through the pool and report
   her mark-to-market profit.
3. Under Lyra the sandwich cannot be constructed: Alice's payload is
   encrypted until her position in the committed order is immutable.  The
   best Mallory can do is trade after the reveal — we price that too.

Run:  python examples/amm_sandwich.py
"""

from repro.core.types import Transaction
from repro.workload.amm import (
    BUY,
    SELL,
    ConstantProductAmm,
    encode_swap,
)

ALICE, MALLORY = 1, 666
POOL = dict(reserve_x=1_000_000, reserve_y=1_000_000, fee_bps=30)


def show_run(title: str, order) -> float:
    pool = ConstantProductAmm(**POOL)
    print(f"\n{title}")
    print(f"  start price: {pool.price:.4f} X/Y")
    for tx in order:
        result = pool.apply_transaction(tx)
        who = "Alice  " if tx.client_id == ALICE else "Mallory"
        side = "BUY " if result.direction == BUY else "SELL"
        print(
            f"  {who} {side} in={result.amount_in:>7} out={result.amount_out:>7}"
            f"  price {result.price_before:.4f} → {result.price_after:.4f}"
        )
    value = pool.net_value(MALLORY)
    print(f"  Mallory net position value: {value:+.1f} X")
    return value


def main() -> None:
    alice_buy = Transaction(ALICE, 0, encode_swap(BUY, 100_000))
    front_buy = Transaction(MALLORY, 0, encode_swap(BUY, 50_000))
    back_sell = Transaction(MALLORY, 1, encode_swap(SELL, 49_264))  # what the front bought

    sandwiched = show_run(
        "Clear-text ordering (Pompē): Mallory sandwiches Alice",
        [front_buy, alice_buy, back_sell],
    )
    blind = show_run(
        "Commit-reveal ordering (Lyra): Mallory reacts only after commit",
        [alice_buy, front_buy, back_sell],
    )

    print("\n--- summary -------------------------------------------")
    print(f"Mallory's profit with the sandwich : {sandwiched:+.1f} X")
    print(f"Mallory's result when blind (Lyra) : {blind:+.1f} X")
    print(f"MEV extracted by reordering        : {sandwiched - blind:+.1f} X")
    assert sandwiched > 0 > blind or sandwiched > blind
    print(
        "\nLyra removes the information channel the sandwich needs: payloads"
        "\nare revealed only once their position in the order is locked."
    )


if __name__ == "__main__":
    main()
