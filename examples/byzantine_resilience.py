#!/usr/bin/env python3
"""Byzantine resilience walk-through (§VI-D and §V-E).

Runs a 4-node Lyra cluster six times, each with one replica misbehaving in
a different way — equivocation, partial dissemination, flooding, future
sequence numbers, prefix stalling — and verifies safety and liveness every
time.  Then contrasts leader censorship: a Byzantine HotStuff leader
silently starves a victim's certificates in Pompē, while leaderless Lyra
keeps serving the same victim.

Run:  python examples/byzantine_resilience.py
"""

from repro.harness.experiments import (
    byzantine_behaviours,
    censorship_comparison,
    format_rows,
)


def main() -> None:
    print("One Byzantine replica per run (Lyra, n = 4, f = 1):\n")
    rows = byzantine_behaviours()
    print(format_rows(rows))
    assert all(r["safety_violation"] is None and r["live"] for r in rows)
    print(
        "\nEvery case: SMR safety holds and correct clients keep committing."
        "\n- equivocator / silent-proposer: their instances resolve to reject"
        "\n  (VVB-Unicity / expiration timers), honest traffic unaffected;"
        "\n- flooder: extra instances commit but do not stall honest ones;"
        "\n- future-sequence: the acceptance-window mitigation rejects them;"
        "\n- prefix-staller: the top-(2f+1) selection rule ignores low-balls."
    )

    print("\nCensorship: Byzantine leader (Pompē) vs leaderless Lyra:\n")
    rows = censorship_comparison()
    print(format_rows(rows))
    pompe = next(r for r in rows if r["system"].startswith("pompe"))
    lyra = next(r for r in rows if r["system"] == "lyra")
    print(
        f"\nPompē's leader dropped {pompe['certs_censored']} certificates: the"
        f" victim completed {pompe['victim_completed']} transactions."
        f"\nLyra has no leader to bribe: the same victim completed"
        f" {lyra['victim_completed']}."
    )


if __name__ == "__main__":
    main()
