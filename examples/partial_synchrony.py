#!/usr/bin/env python3
"""Partial synchrony in action: asynchrony, partitions, and GST (§II-A).

Three runs of the same 4-node Lyra cluster:

1. a synchronous baseline;
2. an adversary delaying arbitrary messages (up to 400 ms) until GST = 2 s
   — safety holds throughout, commits flow once the network stabilises;
3. a 2–2 network partition healing at t = 3 s — neither side holds a
   2f+1 quorum, so *nothing* commits during the split (and nothing
   unsafe happens), then both sides converge on one log.

Run:  python examples/partial_synchrony.py
"""

from repro.harness import ExperimentConfig, build_lyra_cluster
from repro.net.adversary import PartialSynchronyAdversary, PartitionAdversary
from repro.sim.engine import MILLISECONDS, SECONDS
from repro.sim.rng import RngRegistry


def base_config(seed=71):
    return ExperimentConfig(
        n_nodes=4,
        seed=seed,
        batch_size=5,
        clients_per_node=1,
        client_window=3,
        duration_us=10 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )


def report(name, cluster, result):
    logs = [len(n.output_sequence()) for n in cluster.nodes]
    print(
        f"{name:<22} committed={result.committed_count:<4} "
        f"latency={result.avg_latency_ms:7.1f}ms  logs={logs}  "
        f"safety={'OK' if result.safety_violation is None else 'VIOLATED'}"
    )


def main() -> None:
    print("Three partial-synchrony regimes, same protocol, same seed:\n")

    cluster = build_lyra_cluster(base_config())
    report("synchronous", cluster, cluster.run())

    cluster = build_lyra_cluster(base_config())
    cluster.network.adversary = PartialSynchronyAdversary(
        2 * SECONDS, max_delay_us=400 * MILLISECONDS, rng=RngRegistry(71)
    )
    report("adversary until GST=2s", cluster, cluster.run())

    cluster = build_lyra_cluster(base_config())
    cluster.network.adversary = PartitionAdversary({0, 1}, heal_at_us=3 * SECONDS)
    # Peek mid-partition: no quorum, no commits.
    cluster_nodes = cluster.nodes
    for node in cluster_nodes:
        node.start()
    cluster.sim.run(until=int(2.5 * SECONDS))
    during = [len(n.output_sequence()) for n in cluster_nodes]
    print(f"{'2-2 partition @2.5s':<22} committed logs during split: {during}")
    cluster.sim.run(until=base_config().duration_us)
    result = cluster.run()  # consolidates measurements (sim already drained)
    report("partition heals @3s", cluster, result)

    print(
        "\nTakeaway: Δ only gates the fast path.  Before GST the adversary"
        "\ncontrols the schedule and Lyra simply waits (safety is"
        "\nunconditional); after GST the 3-delay pipeline resumes."
    )


if __name__ == "__main__":
    main()
