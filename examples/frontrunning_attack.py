#!/usr/bin/env python3
"""The Fig. 1 attack, end to end: front-running Pompē, failing against Lyra.

Scenario (paper Fig. 1): Alice submits a market order from Tokyo.  Mallory
runs the Singapore validator and sits on a network path that violates the
triangle inequality towards the São Paulo validators:

    ping(Tokyo, Singapore) + ping(Singapore, São Paulo)
        = 35 ms + 105 ms = 140 ms  <  150 ms = ping(Tokyo, São Paulo)

Against Pompē, Mallory reads Alice's transaction in the clear during the
ordering phase, races her own transaction down the fast path, and
cherry-picks the lowest 2f+1 timestamp signatures — her transaction is
sequenced FIRST despite being issued strictly later.

Against Lyra, Alice's payload is VSS-encrypted: Mallory sees only a cipher,
learns the content after it is committed in a locked prefix, and her
backdated injection is rejected by every correct validator (Equation 1 /
acceptance window).

Run:  python examples/frontrunning_attack.py
"""

from repro.attacks.frontrun import Fig1Scenario, run_fig1_lyra, run_fig1_pompe
from repro.net.latency import region_latency_ms, triangle_violations


def main() -> None:
    scenario = Fig1Scenario()
    print("Topology:", dict(enumerate(scenario.regions())))
    print(
        "Triangle check: d(tokyo,singapore) + d(singapore,saopaulo) ="
        f" {region_latency_ms('tokyo', 'singapore') + region_latency_ms('singapore', 'saopaulo'):.0f} ms"
        f"  <  d(tokyo,saopaulo) = {region_latency_ms('tokyo', 'saopaulo'):.0f} ms"
    )
    for src, via, dst, adv in triangle_violations(scenario.regions()):
        print(f"  violation: {src} → {via} → {dst} wins by {adv:.0f} ms")

    victim_ts, attacker_ts = scenario.median_timestamps_ms()
    print(
        f"\nPompē-style median timestamps: victim {victim_ts:.0f} ms vs "
        f"attacker {attacker_ts:.0f} ms (attacker reacted later, yet earlier ts)"
    )

    print("\n=== Attack vs Pompē (clear-text ordering) ===")
    pompe = run_fig1_pompe(scenario)
    print(f"attacker observed plaintext : {pompe.attacker_observed_plaintext}")
    print(f"attack succeeded            : {pompe.attack_succeeded}")
    print(f"detail                      : {pompe.detail}")

    print("\n=== Attack vs Lyra (commit-reveal + order fairness) ===")
    lyra = run_fig1_lyra(scenario)
    print(f"attack succeeded            : {lyra.attack_succeeded}")
    print(f"backdated injection rejected: {lyra.attacker_rejected}")
    print(f"detail                      : {lyra.detail}")

    assert pompe.attack_succeeded and not lyra.attack_succeeded
    print("\nConclusion: the same attacker beats Pompē and bounces off Lyra.")


if __name__ == "__main__":
    main()
