"""Command-line entry point: regenerate any paper artefact.

Usage::

    python -m repro fig1            # Fig. 1 front-running attack
    python -m repro fig2 [n ...]    # Fig. 2 commit latency sweep
    python -m repro fig3            # Fig. 3 throughput model
    python -m repro rounds          # good-case message delays (Theorem 3)
    python -m repro lambda          # λ ablation (§VI-B)
    python -m repro batch           # batch-size ablation (§VI-B)
    python -m repro byzantine       # §VI-D behaviours + censorship
    python -m repro obfuscation     # VSS vs hash commit-reveal
    python -m repro decomp          # latency decomposition + Δ sensitivity
    python -m repro report          # write results/results.json + REPORT.md
    python -m repro all             # everything above (quick mode)

Set ``REPRO_FULL=1`` for the paper's full node counts.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments as exp


def _print(title: str, rows) -> None:
    print(f"\n## {title}")
    if isinstance(rows, dict):
        rows = [rows]
    print(exp.format_rows(rows))


def cmd_fig1(args) -> None:
    _print("FIG 1 — front-running", exp.fig1_frontrunning())


def cmd_fig2(args) -> None:
    from repro.metrics.ascii_chart import chart_fig2

    ns = [int(x) for x in args.ns] if args.ns else None
    rows = exp.fig2_commit_latency(ns)
    _print("FIG 2 — commit latency vs n (ms)", rows)
    print()
    print(chart_fig2(rows))


def cmd_fig3(args) -> None:
    from repro.metrics.ascii_chart import chart_fig3

    rows = exp.fig3_throughput()
    _print("FIG 3 — throughput vs n (k tx/s)", rows)
    print()
    print(chart_fig3(rows))
    _print("FIG 3 — message-level validation (n=4)", exp.fig3_sim_validation())


def cmd_rounds(args) -> None:
    _print("LAT3 — good-case message delays", exp.goodcase_latency_rounds())


def cmd_lambda(args) -> None:
    _print("LAM — lambda sweep", exp.lambda_ablation())
    _print("LAM — jitter sensitivity", exp.jitter_sensitivity())


def cmd_batch(args) -> None:
    _print("BATCH — batch-size sweep", exp.batch_ablation())


def cmd_byzantine(args) -> None:
    _print("BYZ — Byzantine behaviours", exp.byzantine_behaviours())
    _print("BYZ — censorship comparison", exp.censorship_comparison())


def cmd_obfuscation(args) -> None:
    _print("OBF — VSS vs hash commit-reveal", exp.obfuscation_ablation())


def cmd_decomp(args) -> None:
    _print("DECOMP — latency phases", exp.latency_breakdown())
    _print("DECOMP — delta sensitivity", exp.delta_ablation())


def cmd_report(args) -> None:
    from repro.harness.artifacts import generate_report

    generate_report(args.outdir)


def cmd_all(args) -> None:
    cmd_rounds(args)
    cmd_fig1(args)
    cmd_fig2(argparse.Namespace(ns=None))
    cmd_fig3(args)
    cmd_lambda(args)
    cmd_batch(args)
    cmd_byzantine(args)
    cmd_obfuscation(args)
    cmd_decomp(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Lyra paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig1").set_defaults(fn=cmd_fig1)
    p2 = sub.add_parser("fig2")
    p2.add_argument("ns", nargs="*", help="node counts (default: quick sweep)")
    p2.set_defaults(fn=cmd_fig2)
    sub.add_parser("fig3").set_defaults(fn=cmd_fig3)
    sub.add_parser("rounds").set_defaults(fn=cmd_rounds)
    sub.add_parser("lambda").set_defaults(fn=cmd_lambda)
    sub.add_parser("batch").set_defaults(fn=cmd_batch)
    sub.add_parser("byzantine").set_defaults(fn=cmd_byzantine)
    sub.add_parser("obfuscation").set_defaults(fn=cmd_obfuscation)
    sub.add_parser("decomp").set_defaults(fn=cmd_decomp)
    pr = sub.add_parser("report")
    pr.add_argument("--outdir", default="results")
    pr.set_defaults(fn=cmd_report)
    sub.add_parser("all").set_defaults(fn=cmd_all)
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
