"""Command-line entry point: regenerate any paper artefact, run single
clusters, or fan out cached parallel sweeps.

Usage::

    python -m repro fig1            # Fig. 1 front-running attack
    python -m repro fig2 [n ...]    # Fig. 2 commit latency sweep
    python -m repro fig3            # Fig. 3 throughput model
    python -m repro rounds          # good-case message delays (Theorem 3)
    python -m repro lambda          # λ ablation (§VI-B)
    python -m repro batch           # batch-size ablation (§VI-B)
    python -m repro distance        # distance-estimator error ablation
    python -m repro byzantine       # §VI-D behaviours + censorship
    python -m repro obfuscation     # VSS vs hash commit-reveal
    python -m repro decomp          # latency decomposition + Δ sensitivity
    python -m repro report          # phase-latency decomposition report
    python -m repro report --outdir results   # legacy artefact bundle
    python -m repro all             # everything above (quick mode)

    python -m repro run --protocol pompe --n 7          # one cluster
    python -m repro chaos --loss 0.15 --crash 2:2000:3000  # fault schedule
    python -m repro sweep --protocol lyra,pompe \\
        --n 4 7 10 --seeds 1 2 3 --workers 4 \\
        --cache-dir results/sweep-cache                  # cached grid

Cluster-running commands accept a uniform ``--protocol`` flag mapping onto
the :func:`repro.harness.build_cluster` factory.  Set ``REPRO_FULL=1`` for
the paper's full node counts; ``REPRO_WORKERS`` / ``REPRO_CACHE``
parallelise and cache the figure entry points the same way ``sweep`` does
explicitly.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments as exp


def _print(title: str, rows) -> None:
    print(f"\n## {title}")
    if isinstance(rows, dict):
        rows = [rows]
    print(exp.format_rows(rows))


def _parse_protocols(value: str):
    from repro.harness.factory import available_protocols

    names = tuple(p.strip().lower() for p in value.split(",") if p.strip())
    unknown = [p for p in names if p not in available_protocols()]
    if unknown:
        raise SystemExit(
            f"unknown protocol(s) {', '.join(unknown)}; "
            f"available: {', '.join(available_protocols())}"
        )
    if not names:
        raise SystemExit("--protocol needs at least one protocol name")
    return names


def _add_protocol_flag(parser, default: str) -> None:
    parser.add_argument(
        "--protocol",
        default=default,
        help=f"comma-separated protocol name(s) (default: {default})",
    )


def _config_from_args(args, n: int, seed: int):
    from repro.harness.config import ExperimentConfig
    from repro.sim.engine import MILLISECONDS

    return ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=args.batch,
        lambda_us=args.lambda_ms * MILLISECONDS,
        clients_per_node=args.clients,
        client_window=args.window,
        duration_us=args.duration_ms * MILLISECONDS,
        warmup_rounds=args.warmup_rounds,
        warmup_spacing_us=150 * MILLISECONDS,
        backend=getattr(args, "backend", "python"),
        dissemination=getattr(args, "dissemination", None) or "all2all",
        fanout=getattr(args, "fanout", 8),
        distance_mode=getattr(args, "distance_mode", None) or "probe",
        gossip_fanout=getattr(args, "gossip_fanout", 3),
        gossip_rounds=getattr(args, "gossip_rounds", 6),
    )


def _add_config_flags(parser) -> None:
    parser.add_argument("--batch", type=int, default=10, help="batch size")
    parser.add_argument("--lambda-ms", type=int, default=5, help="λ in ms")
    parser.add_argument("--clients", type=int, default=1, help="clients per node")
    parser.add_argument("--window", type=int, default=5, help="client window")
    parser.add_argument(
        "--duration-ms", type=int, default=4000, help="virtual duration in ms"
    )
    parser.add_argument("--warmup-rounds", type=int, default=2)
    parser.add_argument(
        "--backend",
        choices=["python", "vector"],
        default="python",
        help="simulation backend (decided prefixes are bit-identical)",
    )
    parser.add_argument(
        "--dissemination",
        choices=["all2all", "tree", "gossip"],
        default="all2all",
        help="broadcast dissemination strategy (default all2all)",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=8,
        help="relay fan-out for tree/gossip dissemination (default 8)",
    )
    parser.add_argument(
        "--distance-mode",
        choices=["probe", "gossip"],
        default="probe",
        help="warm-up distance estimation: all-to-all probes (default) or "
        "epidemic gossip averaging (O(n·fanout) messages per round)",
    )
    parser.add_argument(
        "--gossip-fanout",
        type=int,
        default=3,
        help="peers contacted per gossip distance round (default 3)",
    )
    parser.add_argument(
        "--gossip-rounds",
        type=int,
        default=6,
        help="gossip distance rounds during warm-up (default 6)",
    )


def cmd_fig1(args) -> None:
    _print("FIG 1 — front-running", exp.fig1_frontrunning())


def cmd_fig2(args) -> None:
    from repro.metrics.ascii_chart import chart_fig2

    protocols = _parse_protocols(args.protocol)
    ns = [int(x) for x in args.ns] if args.ns else None
    rows = exp.fig2_commit_latency(ns, protocols=protocols)
    _print("FIG 2 — commit latency vs n (ms)", rows)
    if set(protocols) >= {"lyra", "pompe"}:
        print()
        print(chart_fig2(rows))


def cmd_fig3(args) -> None:
    from repro.metrics.ascii_chart import chart_fig3

    rows = exp.fig3_throughput()
    _print("FIG 3 — throughput vs n (k tx/s)", rows)
    print()
    print(chart_fig3(rows))
    _print("FIG 3 — message-level validation (n=4)", exp.fig3_sim_validation())


def cmd_rounds(args) -> None:
    _print("LAT3 — good-case message delays", exp.goodcase_latency_rounds())


def cmd_lambda(args) -> None:
    _print("LAM — lambda sweep", exp.lambda_ablation())
    _print("LAM — jitter sensitivity", exp.jitter_sensitivity())


def cmd_batch(args) -> None:
    _print("BATCH — batch-size sweep", exp.batch_ablation())


def cmd_distance(args) -> None:
    import json
    import os

    rows = exp.ablation_distance_error(
        tuple(args.rounds) if args.rounds else (1, 2, 4, 6),
        n=args.n,
        seed=args.seed,
    )
    _print("DIST — estimator error vs λ-validation failures", rows)
    path = args.out or "ABLATION_distance_error.json"
    outdir = os.path.dirname(path)
    if outdir:
        os.makedirs(outdir, exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"n": args.n, "seed": args.seed, "rows": rows},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nartifact written to {path}")


def cmd_byzantine(args) -> None:
    _print("BYZ — Byzantine behaviours", exp.byzantine_behaviours())
    _print("BYZ — censorship comparison", exp.censorship_comparison())


def cmd_obfuscation(args) -> None:
    _print("OBF — VSS vs hash commit-reveal", exp.obfuscation_ablation())


def cmd_decomp(args) -> None:
    _print("DECOMP — latency phases", exp.latency_breakdown())
    _print("DECOMP — delta sensitivity", exp.delta_ablation())


def cmd_report(args) -> None:
    """Observability report: the paper's per-phase latency decomposition
    plus wire/fault/cache stats — from a fresh traced run, or from a
    dumped trace JSONL.  With ``--outdir``, the legacy artefact generator
    (results.json + REPORT.md) runs instead."""
    if args.outdir is not None:
        from repro.harness.artifacts import generate_report

        generate_report(args.outdir)
        return

    from repro.metrics.report import render_run_report
    from repro.metrics.spans import export_chrome_trace
    from repro.metrics.tracelog import TraceLog

    if args.trace_jsonl:
        trace = TraceLog.load_jsonl(args.trace_jsonl)
        print(
            render_run_report(
                trace=trace,
                title=f"Trace report — {args.trace_jsonl}",
                proposer_only=not args.all_nodes,
            )
        )
        if args.export_chrome:
            count = export_chrome_trace(trace, args.export_chrome)
            print(f"wrote {count} chrome://tracing events to {args.export_chrome}")
        return

    from repro.harness.factory import build_cluster
    from repro.sim.engine import MILLISECONDS

    config = _config_from_args(args, args.n, args.seed)
    config.tracing = True
    config.metrics = True
    if args.delay_ms is not None:
        # The §III rig: uniform jitter-free links with Δ = one delay, so
        # BOC's 3-message-delay decision bound is directly visible in the
        # proposed->decided row.
        config.uniform_delay_us = args.delay_ms * MILLISECONDS
        config.delta_us = args.delay_ms * MILLISECONDS
    cluster = build_cluster(config, protocol="lyra")
    result = cluster.run()
    print(
        render_run_report(
            trace=cluster.trace,
            result=result,
            title=f"Observability report — lyra n={args.n} seed={args.seed}",
            proposer_only=not args.all_nodes,
        )
    )
    if args.export_trace:
        count = cluster.trace.dump_jsonl(args.export_trace)
        print(f"wrote {count} trace events to {args.export_trace}")
    if args.export_chrome:
        count = export_chrome_trace(cluster.trace, args.export_chrome)
        print(f"wrote {count} chrome://tracing events to {args.export_chrome}")


def cmd_run(args) -> None:
    """Run one cluster through the unified factory and print its result."""
    from repro.harness.factory import build_cluster

    protocol = _parse_protocols(args.protocol)[0]
    config = _config_from_args(args, args.n, args.seed)
    shards = getattr(args, "shards", 1)
    extra = {}
    if shards > 1:
        if protocol != "lyra":
            raise SystemExit("--shards currently supports the lyra protocol only")
        from repro.sim.shard import run_sharded

        run = run_sharded(config, shards)
        result = run.result
        extra = {
            "shards": run.plan.n_shards,
            "epoch_us": run.plan.epoch_us,
            "barriers": run.barriers,
            "frames_exchanged": run.frames_exchanged,
            "prefix_sha256": run.digest(),
        }
    else:
        result = build_cluster(config, protocol=protocol).run()
    _print(
        f"RUN — {protocol} n={args.n} seed={args.seed}",
        {
            "protocol": protocol,
            "n": args.n,
            "seed": args.seed,
            "committed": result.committed_count,
            "throughput_tps": round(result.throughput_tps, 1),
            "latency_ms": round(result.avg_latency_ms, 1),
            "p99_ms": round(result.p99_latency_us / 1000.0, 1),
            "safety": result.safety_violation,
            **extra,
        },
    )


def cmd_chaos(args) -> None:
    """Run a seeded fault schedule and print a pass/fail invariant report."""
    from repro.harness.factory import build_cluster
    from repro.net.faults import CrashEvent, FaultPlan, LinkFault
    from repro.sim.engine import MILLISECONDS

    crashes = []
    for spec in args.crash or []:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"bad --crash spec {spec!r}; expected pid:crash_ms[:recover_ms]"
            )
        pid, crash_ms = int(parts[0]), int(parts[1])
        recover_ms = int(parts[2]) if len(parts) == 3 else None
        crashes.append(
            CrashEvent(
                pid=pid,
                crash_at_us=crash_ms * MILLISECONDS,
                recover_at_us=(
                    recover_ms * MILLISECONDS if recover_ms is not None else None
                ),
            )
        )
    plan = FaultPlan(
        links=(
            LinkFault(
                drop_rate=args.loss,
                duplicate_rate=args.dup,
                reorder_rate=args.reorder,
                corrupt_rate=args.corrupt,
            ),
        ),
        crashes=tuple(crashes),
    )
    config = _config_from_args(args, args.n, args.seed)
    config.fault_plan = plan
    config.reliable_channels = True
    cluster = build_cluster(config, protocol="lyra")
    result = cluster.run()

    print(f"## CHAOS — n={args.n} seed={args.seed}")
    print(
        f"fault plan: loss={args.loss} dup={args.dup} reorder={args.reorder} "
        f"corrupt={args.corrupt} crashes={len(crashes)}"
    )
    print()
    print("fault stats:")
    for key in sorted(result.fault_stats):
        print(f"  {key:<20} {result.fault_stats[key]}")
    print()
    print("committed log lengths:")
    for node in cluster.nodes:
        marker = f" (recovered x{node.recoveries})" if node.recoveries else ""
        print(f"  pid {node.pid}: {len(node.output_sequence())}{marker}")
    print()
    print(cluster.watchdog.report.render())
    if result.safety_violation is not None:
        print(f"end-of-run safety violation: {result.safety_violation}")
    if result.safety_violation is not None or result.invariant_violations:
        raise SystemExit(1)


def _parse_seed_specs(tokens):
    """Expand seed tokens: ``7`` is one seed, ``A:B`` is the half-open
    range [A, B) — so ``--seeds 0:25`` fuzzes seeds 0..24."""
    seeds = []
    for tok in tokens:
        if ":" in tok:
            lo, hi = tok.split(":", 1)
            lo_i, hi_i = int(lo), int(hi)
            if hi_i <= lo_i:
                raise SystemExit(f"bad seed range {tok!r}: need A < B")
            seeds.extend(range(lo_i, hi_i))
        else:
            seeds.append(int(tok))
    return seeds


def cmd_fuzz(args) -> None:
    """Seeded adversarial-schedule fuzzing with an invariant oracle.

    Three modes: generate-and-run a seed batch (default), replay a saved
    schedule/outcome JSON bit-identically (``--replay``), or run the named
    attack corpus against its expected verdicts (``--corpus``).  Any
    unexpected violation exits 1 and, in batch mode, writes a minimized
    still-failing schedule artifact via ddmin shrinking.
    """
    import json
    import os

    from repro.attacks.fuzz import (
        FuzzSchedule,
        generate_schedule,
        run_corpus,
        run_schedule,
        shrink_schedule,
    )
    from repro.sim.engine import MILLISECONDS

    def describe(schedule) -> str:
        parts = [f"{len(schedule.attacks)} atk"]
        if schedule.plan.links:
            parts.append(f"{len(schedule.plan.links)} links")
        if schedule.plan.crashes:
            parts.append(f"{len(schedule.plan.crashes)} crashes")
        if schedule.delta_piggyback:
            parts.append("pbd")
        return ", ".join(parts)

    def report(label: str, outcome) -> None:
        status = "ok" if outcome.ok else "VIOLATION"
        lens = "/".join(
            str(outcome.committed_lens[p]) for p in sorted(outcome.committed_lens)
        )
        print(
            f"  {label:<36} {status:<9} committed={lens} "
            f"probes={outcome.probe_successes}/{outcome.probe_attempts} "
            f"digest={outcome.digest[:12]}"
        )
        for viol in outcome.violations:
            print(f"    {viol}")
        if outcome.safety_violation is not None:
            print(f"    end-of-run safety: {outcome.safety_violation}")

    # ------------------------------------------------------------------
    # Corpus mode: every case must match its expected oracle verdict.
    # ------------------------------------------------------------------
    if args.corpus is not None:
        names = list(args.corpus) or None
        print(f"## FUZZ — attack corpus (seed={args.seed})")
        verdicts = run_corpus(names, seed=args.seed)
        mismatches = 0
        for v in verdicts:
            expect = "violation" if v.case.expect_violation else "clean"
            got = "clean" if v.outcome.ok else "violation"
            mark = "pass" if v.passed else "MISMATCH"
            print(f"  {v.case.name:<30} expect={expect:<9} got={got:<9} {mark}")
            if not v.passed:
                mismatches += 1
                for viol in v.outcome.violations[:3]:
                    print(f"    {viol}")
        print(f"{len(verdicts) - mismatches}/{len(verdicts)} cases matched")
        if mismatches:
            raise SystemExit(1)
        return

    # ------------------------------------------------------------------
    # Replay mode: re-run a saved schedule (or saved outcome) JSON; when
    # the artifact carries a digest the replay must be bit-identical.
    # ------------------------------------------------------------------
    if args.replay:
        with open(args.replay) as fh:
            data = json.load(fh)
        if "minimized" in data:  # a batch-mode violation artifact
            data = data["minimized"]
        saved_digest = data.get("digest")
        schedule = FuzzSchedule.from_dict(data.get("schedule", data))
        print(f"## FUZZ — replay {args.replay}")
        outcome = run_schedule(schedule)
        report(f"seed {schedule.seed} [{describe(schedule)}]", outcome)
        if saved_digest is not None:
            match = saved_digest == outcome.digest
            print(f"  digest match: {match}")
            if not match:
                raise SystemExit(1)
        elif not outcome.ok:
            raise SystemExit(1)
        return

    # ------------------------------------------------------------------
    # Batch mode: generate honest-majority schedules from a seed range.
    # ------------------------------------------------------------------
    seeds = _parse_seed_specs(args.seeds)
    duration_us = args.duration_ms * MILLISECONDS
    print(f"## FUZZ — {len(seeds)} generated schedules, n={args.n}")
    failures = []
    for seed in seeds:
        schedule = generate_schedule(seed, n_nodes=args.n, duration_us=duration_us)
        outcome = run_schedule(schedule)
        report(f"seed {seed} [{describe(schedule)}]", outcome)
        if not outcome.ok:
            failures.append(outcome)
    print(f"{len(seeds) - len(failures)}/{len(seeds)} schedules clean")
    if failures:
        outdir = args.out or "."
        os.makedirs(outdir, exist_ok=True)
        for outcome in failures:
            shrunk = shrink_schedule(outcome.schedule)
            shrunk_outcome = run_schedule(shrunk)
            path = os.path.join(
                outdir, f"fuzz-violation-seed{outcome.schedule.seed}.json"
            )
            with open(path, "w") as fh:
                json.dump(
                    {
                        "original": outcome.to_dict(),
                        "minimized": shrunk_outcome.to_dict(),
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                )
            print(
                f"  minimized repro for seed {outcome.schedule.seed} "
                f"written to {path} "
                f"(replay with: python -m repro fuzz --replay {path})"
            )
        raise SystemExit(1)


def _workload_spec_from_args(args, n: int, duration_us: int):
    """Translate the workload CLI flags into a WorkloadSpec."""
    from repro.sim.engine import SECONDS
    from repro.workload.spec import ClientGroup, WorkloadSpec

    per_client = max(args.offered_tps / n, 1e-3)
    if args.arrival == "poisson":
        arrival = {"kind": "poisson", "rate_tps": per_client}
    elif args.arrival == "bursty":
        arrival = {"kind": "bursty", "rate_tps": per_client}
    elif args.arrival == "diurnal":
        # Compress the day/night cycle into the run so the modulation is
        # actually visible over a short horizon.
        arrival = {
            "kind": "diurnal",
            "rate_tps": per_client,
            "period_us": max(1 * SECONDS, duration_us // 2),
        }
    elif args.arrival == "trace":
        if args.trace_file:
            with open(args.trace_file) as fh:
                offsets = [int(line) for line in fh if line.strip()]
        else:
            # No trace given: replay a uniform schedule at the offered rate.
            gap = int(1_000_000 / per_client)
            count = max(1, int(per_client * duration_us / 1_000_000))
            offsets = [i * gap for i in range(count)]
        arrival = {"kind": "trace", "offsets_us": offsets}
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown arrival process {args.arrival!r}")

    groups = [
        ClientGroup(
            name="traffic",
            client="arrival",
            count_per_node=1,
            arrival=arrival,
            body=args.body,
            users=args.users,
        )
    ]
    if args.mev:
        # The Fig. 1 cell: AMM victims homed far from the replica
        # majority, one MEV bot colocated with a (Pompē-colluding)
        # replica close to it.
        groups.append(
            ClientGroup(
                name="victims",
                client="arrival",
                count=1,
                home=0,
                arrival={"kind": "poisson", "rate_tps": args.victim_tps},
                body="amm",
                body_params={"amount_min": 1_000, "amount_max": 5_000},
            )
        )
        groups.append(
            ClientGroup(
                name="mev",
                client="mev",
                count=1,
                home=1,
                collude=True,
            )
        )
    return WorkloadSpec(groups=tuple(groups), fairness=True, users=args.users)


def cmd_workload(args) -> None:
    """Run the open-loop traffic engine and print the fairness report."""
    from repro.harness.config import ExperimentConfig
    from repro.harness.factory import build_cluster
    from repro.metrics.capacity import extrapolate_users
    from repro.sim.engine import MILLISECONDS
    from repro.workload.spec import mev_node_classes

    protocols = _parse_protocols(args.protocol)
    # The MEV cell needs the Fig. 1 geometry: the replica majority far
    # from the victim's home and the bot's colluding replica between
    # them, plus per-transaction batches so ordering races are visible.
    n = args.n if args.n is not None else (7 if args.mev else 4)
    batch = args.batch if args.batch is not None else (1 if args.mev else 10)
    regions = None
    if args.mev:
        if n < 3:
            raise SystemExit("--mev needs n >= 3")
        regions = ["tokyo", "singapore"] + ["saopaulo"] * (n - 2)
    duration_us = args.duration_ms * MILLISECONDS
    spec = _workload_spec_from_args(args, n, duration_us)

    failed = False
    for protocol in protocols:
        config = ExperimentConfig(
            n_nodes=n,
            seed=args.seed,
            batch_size=batch,
            duration_us=duration_us,
            warmup_rounds=2,
            warmup_spacing_us=150 * MILLISECONDS,
            workload=spec,
        )
        if regions is not None:
            config.regions = regions
        cluster = build_cluster(
            config,
            protocol=protocol,
            node_classes=mev_node_classes(spec, protocol, n) or None,
        )
        result = cluster.run()

        print(f"\n## WORKLOAD — {protocol} n={n} seed={args.seed}")
        print(
            f"arrival={args.arrival} offered={args.offered_tps:g}tps "
            f"users={args.users} body={args.body} "
            f"mev={'on' if args.mev else 'off'}"
        )
        block = result.fairness
        if not block:
            print("FAIL: result has no fairness block")
            failed = True
            continue
        counts = block.get("counts", {})
        print(
            f"throughput_tps={result.throughput_tps:.1f} "
            f"submitted={counts.get('submitted')} "
            f"completed={counts.get('completed')} "
            f"incomplete={counts.get('incomplete')}"
        )
        reorder = block["reorder"]
        print(
            f"reorder distance: mean={reorder['mean']:.2f} "
            f"p99={reorder['p99']} max={reorder['max']} "
            f"kendall_tau={reorder['kendall_tau']:.4f} "
            f"(over {reorder['count']} txs)"
        )
        sandwich = block["sandwich"]
        print(
            f"sandwich: attempts={sandwich['attempts']} "
            f"launched={sandwich['launched']} landed={sandwich['landed']} "
            f"successes={sandwich['successes']} "
            f"success_rate={sandwich['success_rate']:.3f}"
        )
        for name, row in sorted(block.get("latency", {}).items()):
            print(
                f"latency[{name}]: p50={row['p50_us'] / 1000:.1f}ms "
                f"p99={row['p99_us'] / 1000:.1f}ms "
                f"(count={row['count']})"
            )
        cap = extrapolate_users(
            protocol=protocol,
            n=n,
            f=config.resolved_f(),
            users=spec.resolved_users(n),
            offered_tps=spec.offered_tps(n),
            measured_tps=result.throughput_tps,
        )
        print(
            f"capacity[{protocol}]: model_tps={cap['capacity_tps']:.0f} "
            f"binding={cap['binding_resource']} "
            f"per_user_tps={cap['per_user_tps']:.2e} "
            f"users_at_capacity={cap['users_at_capacity']:.3g} "
            f"sustainable={cap['sustainable']}"
        )
        if result.safety_violation is not None:
            print(f"FAIL: safety violation: {result.safety_violation}")
            failed = True
        if result.invariant_violations:
            print(
                f"FAIL: {len(result.invariant_violations)} invariant "
                f"violation(s); first: {result.invariant_violations[0]}"
            )
            failed = True
    print()
    if failed:
        print("RESULT: FAIL")
        raise SystemExit(1)
    print("RESULT: PASS")


def cmd_bench(args) -> None:
    """Run the fixed micro/macro perf suite and emit BENCH_<date>.json."""
    from repro.bench import (
        check_against_baseline,
        default_output_path,
        run_bench_suite,
    )
    from repro.bench.suite import write_report

    report = run_bench_suite(
        quick=args.quick,
        macro_n=args.n,
        macro_duration_ms=args.duration_ms,
        coalesce=args.coalesce,
        observability=args.observability,
        backend=args.backend,
        backend_twins=args.backends,
        shards=args.shards,
        dissemination=args.dissemination,
        fanout=args.fanout,
        gossip_distance=args.gossip_distance,
        gossip_round_budgets=tuple(args.gossip_rounds),
        gossip_fanout=args.gossip_fanout,
        profile=args.profile,
    )
    out = args.out or default_output_path()
    path = write_report(report, out)
    print(f"\n## BENCH — wrote {path}")
    env = report.get("environment", {})
    print(
        f"environment: python={env.get('python')} numpy={env.get('numpy')} "
        f"blas={env.get('blas')} cpu={env.get('cpu')}"
    )
    headline = report["macro"][report["headline"]]
    print(
        f"headline: {report['headline']} "
        f"events/s={headline['events_per_s']} "
        f"events={headline['events']} wall_s={headline['wall_s']} "
        f"prefix={headline['prefix_sha256'][:16]}…"
    )
    digest = report["caches"].get("digest", {})
    sig = report["caches"].get("signature_verify", {})
    print(
        f"caches: digest hit-rate={digest.get('hit_rate', 0.0)} "
        f"signature-verify hit-rate={sig.get('hit_rate', 0.0)}"
    )
    if args.profile:
        for cname, cell in report["macro"].items():
            rows = cell.get("profile_top")
            if not rows:
                continue
            print(f"\nprofile: {cname} (top {len(rows)} by cumulative time)")
            for row in rows:
                print(
                    f"  {row['cumtime_s']:>9.3f}s cum {row['tottime_s']:>9.3f}s "
                    f"tot {row['ncalls']:>9} calls  {row['function']}"
                )
    failed = False
    if args.backends:
        from repro.bench.suite import check_backend_equivalence

        eq_failures = check_backend_equivalence(report)
        if eq_failures:
            print("\nBENCH BACKEND EQUIVALENCE: FAIL")
            for f in eq_failures:
                print(f"  - {f}")
            failed = True
        else:
            print("\nBENCH BACKEND EQUIVALENCE: PASS (all twin digests identical)")
    if args.shards > 1:
        from repro.bench.suite import check_sharding

        shard_failures = check_sharding(report)
        if shard_failures:
            print("\nBENCH SHARDING CHECK: FAIL")
            for f in shard_failures:
                print(f"  - {f}")
            failed = True
        else:
            scells = [
                c for name, c in report["macro"].items()
                if name.endswith("_sharded")
            ]
            extra = ""
            if scells and scells[0].get("speedup_vs_single") is not None:
                extra = (
                    f", {scells[0]['shards']} shards "
                    f"{scells[0]['speedup_vs_single']}x vs single-process"
                )
            print(
                f"\nBENCH SHARDING CHECK: PASS (digest identical{extra})"
            )
    if args.dissemination:
        from repro.bench.suite import check_dissemination

        diss_failures = check_dissemination(report)
        if diss_failures:
            print(f"\nBENCH DISSEMINATION CHECK ({args.dissemination}): FAIL")
            for f in diss_failures:
                print(f"  - {f}")
            failed = True
        else:
            print(
                f"\nBENCH DISSEMINATION CHECK ({args.dissemination}): PASS"
            )
    if args.gossip_distance:
        from repro.bench.suite import check_gossip_distance

        gd_failures = check_gossip_distance(report)
        if gd_failures:
            print("\nBENCH GOSSIP-DISTANCE CHECK: FAIL")
            for f in gd_failures:
                print(f"  - {f}")
            failed = True
        else:
            print(
                "\nBENCH GOSSIP-DISTANCE CHECK: PASS "
                "(safe, converged, O(n*fanout) wire bound held)"
            )
    if args.observability:
        from repro.bench.suite import check_observability

        obs_failures = check_observability(report)
        if obs_failures:
            print("\nBENCH OBSERVABILITY CHECK: FAIL")
            for f in obs_failures:
                print(f"  - {f}")
            failed = True
        else:
            obs = report["macro"][f"{report['headline']}_observed"]
            overhead = obs.get("overhead_vs_plain")
            if overhead is None:
                overhead = 1.0 - obs["events_per_s"] / max(
                    1e-9, headline["events_per_s"]
                )
            print(
                f"\nBENCH OBSERVABILITY CHECK: PASS "
                f"(paired overhead {overhead * 100:+.1f}%, "
                f"digest identical)"
            )
    if args.check_against:
        import json as _json

        baseline = _json.loads(open(args.check_against).read())
        failures = check_against_baseline(
            report, baseline, tolerance=args.max_slowdown
        )
        if failures:
            print(f"\nBENCH CHECK vs {args.check_against}: FAIL")
            for f in failures:
                print(f"  - {f}")
            failed = True
        else:
            print(f"\nBENCH CHECK vs {args.check_against}: PASS")
    if failed:
        raise SystemExit(1)


def cmd_sweep(args) -> None:
    """Fan a (protocol, n, seed) grid across workers with result caching."""
    from repro.harness.sweep import grid_cells, run_sweep

    protocols = _parse_protocols(args.protocol)
    base = _config_from_args(args, args.n[0], args.seeds[0])
    cells = grid_cells(
        base, protocols=protocols, seeds=args.seeds, n_nodes=args.n
    )

    def _progress(record, done, total) -> None:
        state = (
            "cached"
            if record.cached
            else ("ok" if record.ok else f"FAILED: {record.error}")
        )
        print(
            f"[{done}/{total}] {record.protocol:>6} "
            f"n={record.config['n_nodes']:<3} seed={record.config['seed']:<3} "
            f"{record.key[:12]} {state}",
            flush=True,
        )

    report = run_sweep(
        cells,
        workers=args.workers,
        cache_dir=args.cache_dir,
        force=args.force,
        progress=_progress,
    )
    rows = [
        {
            "protocol": r.protocol,
            "n": r.config["n_nodes"],
            "seed": r.config["seed"],
            "cached": r.cached,
            "committed": r.result.committed_count if r.ok else None,
            "throughput_tps": round(r.result.throughput_tps, 1) if r.ok else None,
            "latency_ms": round(r.result.avg_latency_ms, 1) if r.ok else None,
            "safety": r.result.safety_violation if r.ok else r.error,
        }
        for r in report.records
    ]
    _print(
        f"SWEEP — {len(cells)} cells "
        f"({report.executed} run, {report.cache_hits} cached, "
        f"{report.failures} failed)",
        rows,
    )
    if report.failures:
        raise SystemExit(1)


def cmd_all(args) -> None:
    cmd_rounds(args)
    cmd_fig1(args)
    cmd_fig2(argparse.Namespace(ns=None, protocol="lyra,pompe"))
    cmd_fig3(args)
    cmd_lambda(args)
    cmd_batch(args)
    cmd_byzantine(args)
    cmd_obfuscation(args)
    cmd_decomp(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Lyra paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig1").set_defaults(fn=cmd_fig1)
    p2 = sub.add_parser("fig2")
    p2.add_argument("ns", nargs="*", help="node counts (default: quick sweep)")
    _add_protocol_flag(p2, "lyra,pompe")
    p2.set_defaults(fn=cmd_fig2)
    p3 = sub.add_parser("fig3")
    _add_protocol_flag(p3, "lyra,pompe")
    p3.set_defaults(fn=cmd_fig3)
    sub.add_parser("rounds").set_defaults(fn=cmd_rounds)
    sub.add_parser("lambda").set_defaults(fn=cmd_lambda)
    sub.add_parser("batch").set_defaults(fn=cmd_batch)
    pdist = sub.add_parser(
        "distance",
        help="distance-estimator error ablation (probe vs gossip rounds)",
    )
    pdist.add_argument("--n", type=int, default=16, help="cluster size")
    pdist.add_argument("--seed", type=int, default=23)
    pdist.add_argument(
        "--rounds",
        type=int,
        nargs="+",
        default=None,
        help="gossip round budgets to sweep (default: 1 2 4 6)",
    )
    pdist.add_argument(
        "--out",
        default=None,
        help="artifact path (default: ./ABLATION_distance_error.json)",
    )
    pdist.set_defaults(fn=cmd_distance)
    sub.add_parser("byzantine").set_defaults(fn=cmd_byzantine)
    sub.add_parser("obfuscation").set_defaults(fn=cmd_obfuscation)
    sub.add_parser("decomp").set_defaults(fn=cmd_decomp)
    pr = sub.add_parser(
        "report",
        help="per-phase latency decomposition + wire/fault/cache stats",
    )
    pr.add_argument(
        "--outdir",
        default=None,
        help="legacy mode: write results/results.json + REPORT.md here "
        "instead of the observability report",
    )
    pr.add_argument("--n", type=int, default=4, help="cluster size")
    pr.add_argument("--seed", type=int, default=1)
    pr.add_argument(
        "--delay-ms",
        type=int,
        default=None,
        help="uniform jitter-free one-way link delay in ms (makes the "
        "proposed->decided p50 checkable against 3 message delays)",
    )
    pr.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="render from a dumped TraceLog JSONL instead of running",
    )
    pr.add_argument(
        "--all-nodes",
        action="store_true",
        help="decompose phases at every node, not just each proposer",
    )
    pr.add_argument(
        "--export-trace",
        default=None,
        metavar="PATH",
        help="dump the run's TraceLog as JSONL",
    )
    pr.add_argument(
        "--export-chrome",
        default=None,
        metavar="PATH",
        help="export spans in chrome://tracing JSON format",
    )
    _add_config_flags(pr)
    pr.set_defaults(fn=cmd_report)

    prun = sub.add_parser("run", help="run one cluster via the factory")
    _add_protocol_flag(prun, "lyra")
    prun.add_argument("--n", type=int, default=4, help="cluster size")
    prun.add_argument("--seed", type=int, default=1)
    prun.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition the cluster over N lockstep worker processes "
        "(decided prefixes stay bit-identical to --shards 1)",
    )
    _add_config_flags(prun)
    prun.set_defaults(fn=cmd_run)

    psweep = sub.add_parser(
        "sweep", help="parallel cached sweep over a (protocol, n, seed) grid"
    )
    _add_protocol_flag(psweep, "lyra")
    psweep.add_argument(
        "--n", type=int, nargs="+", default=[4], help="node counts to sweep"
    )
    psweep.add_argument(
        "--seeds", type=int, nargs="+", default=[1], help="seeds to sweep"
    )
    psweep.add_argument("--workers", type=int, default=1)
    psweep.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-cell JSONL results here; re-runs skip cached cells",
    )
    psweep.add_argument(
        "--force", action="store_true", help="ignore and overwrite cached cells"
    )
    _add_config_flags(psweep)
    psweep.set_defaults(fn=cmd_sweep)

    pbench = sub.add_parser(
        "bench", help="run the fixed perf suite and emit BENCH_<date>.json"
    )
    pbench.add_argument(
        "--quick",
        action="store_true",
        help="swap the n=32 headline cell for a small CI-sized one",
    )
    pbench.add_argument(
        "--n", type=int, default=None, help="override headline cell size"
    )
    pbench.add_argument(
        "--duration-ms",
        type=int,
        default=None,
        help="override headline cell virtual duration",
    )
    pbench.add_argument(
        "--out", default=None, help="output path (default: ./BENCH_<date>.json)"
    )
    pbench.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE_JSON",
        help="compare against a baseline report; exit 1 on regression",
    )
    pbench.add_argument(
        "--coalesce",
        action="store_true",
        help="also run *_coalesced macro cells (wire coalescing + delta "
        "piggybacks on; the classic cells still run for digest checks)",
    )
    pbench.add_argument(
        "--observability",
        action="store_true",
        help="also run a tracing+metrics headline cell and fail on >5%% "
        "events/sec overhead or decided-prefix digest drift",
    )
    pbench.add_argument(
        "--backend",
        choices=["python", "vector"],
        default="python",
        help="simulation backend every macro cell runs on (default python)",
    )
    pbench.add_argument(
        "--backends",
        action="store_true",
        help="re-run each macro cell on the other backend and fail on any "
        "decided-prefix digest divergence between the pair",
    )
    pbench.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="also run the scaling cell through the partitioned core with N "
        "worker processes and fail unless its decided-prefix digest matches "
        "the single-process cell bit-for-bit",
    )
    pbench.add_argument(
        "--dissemination",
        choices=["tree", "gossip"],
        default=None,
        help="also run a headline twin cell under that broadcast strategy; "
        "a degenerate tree (fanout >= n-1) must reproduce the all2all "
        "digest exactly",
    )
    pbench.add_argument(
        "--fanout",
        type=int,
        default=8,
        help="relay fan-out for --dissemination tree/gossip (default 8)",
    )
    pbench.add_argument(
        "--gossip-distance",
        action="store_true",
        help="also run headline twin cells with epidemic gossip distance "
        "estimation, sweeping --gossip-rounds budgets, and fail on any "
        "safety, convergence, or O(n*fanout) wire-bound violation",
    )
    pbench.add_argument(
        "--gossip-rounds",
        type=int,
        nargs="+",
        default=[2, 6],
        metavar="R",
        help="gossip round budgets for --gossip-distance twins (default 2 6)",
    )
    pbench.add_argument(
        "--gossip-fanout",
        type=int,
        default=3,
        help="peers contacted per gossip distance round (default 3)",
    )
    pbench.add_argument(
        "--profile",
        action="store_true",
        help="wrap each macro cell in cProfile and report the top-20 "
        "functions by cumulative time (events/sec then carries profiler "
        "overhead and is excluded from baseline comparison)",
    )
    pbench.add_argument(
        "--max-slowdown",
        "--tolerance",  # legacy spelling
        dest="max_slowdown",
        type=float,
        default=0.30,
        help="allowed events/sec slowdown vs baseline (default 0.30)",
    )
    pbench.set_defaults(fn=cmd_bench)

    pwork = sub.add_parser(
        "workload",
        help="open-loop traffic engine: arrival-driven load, fairness "
        "report, capacity extrapolation",
    )
    _add_protocol_flag(pwork, "lyra")
    pwork.add_argument(
        "--n",
        type=int,
        default=None,
        help="cluster size (default: 4, or 7 with --mev)",
    )
    pwork.add_argument("--seed", type=int, default=1)
    pwork.add_argument(
        "--arrival",
        choices=("poisson", "bursty", "diurnal", "trace"),
        default="poisson",
        help="arrival process of the main traffic group",
    )
    pwork.add_argument(
        "--offered-tps",
        type=float,
        default=200.0,
        help="aggregate offered rate of the main traffic group (tx/s)",
    )
    pwork.add_argument(
        "--users",
        type=int,
        default=1000,
        help="simulated user population the traffic stands in for "
        "(Poisson superposition; feeds the capacity extrapolation)",
    )
    pwork.add_argument(
        "--body",
        choices=("raw", "kv_zipf", "amm"),
        default="raw",
        help="body mix of the main traffic group",
    )
    pwork.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="with --arrival trace: file of submission offsets (µs, one "
        "per line)",
    )
    pwork.add_argument(
        "--mev",
        action="store_true",
        help="add the adversarial cell: AMM victim traffic plus a "
        "colluding MEV bot chasing it (Fig. 1 geometry)",
    )
    pwork.add_argument(
        "--victim-tps",
        type=float,
        default=2.0,
        help="victim swap rate in the --mev cell",
    )
    pwork.add_argument(
        "--batch",
        type=int,
        default=None,
        help="batch size (default: 10, or 1 with --mev)",
    )
    pwork.add_argument(
        "--duration-ms", type=int, default=4000, help="virtual duration in ms"
    )
    pwork.set_defaults(fn=cmd_workload)

    pchaos = sub.add_parser(
        "chaos", help="run a seeded fault schedule and print an invariant report"
    )
    pchaos.add_argument("--n", type=int, default=4, help="cluster size")
    pchaos.add_argument("--seed", type=int, default=1)
    pchaos.add_argument(
        "--loss", type=float, default=0.1, help="per-link drop probability"
    )
    pchaos.add_argument(
        "--dup", type=float, default=0.02, help="per-link duplication probability"
    )
    pchaos.add_argument(
        "--reorder", type=float, default=0.02, help="per-link reordering probability"
    )
    pchaos.add_argument(
        "--corrupt", type=float, default=0.01, help="per-link corruption probability"
    )
    pchaos.add_argument(
        "--crash",
        action="append",
        metavar="PID:CRASH_MS[:RECOVER_MS]",
        help="schedule a crash (repeatable); omit RECOVER_MS for crash-stop",
    )
    _add_config_flags(pchaos)
    pchaos.set_defaults(fn=cmd_chaos)

    pfuzz = sub.add_parser(
        "fuzz",
        help="seeded adversarial-schedule fuzzing: generate, replay a "
        "saved schedule, or run the attack corpus",
    )
    pfuzz.add_argument(
        "--seeds",
        nargs="+",
        default=["0:10"],
        metavar="SEED|A:B",
        help="seeds and/or half-open A:B ranges to fuzz (default 0:10)",
    )
    pfuzz.add_argument("--n", type=int, default=4, help="cluster size")
    pfuzz.add_argument(
        "--duration-ms", type=int, default=3000, help="virtual duration in ms"
    )
    pfuzz.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="re-run a saved schedule/outcome JSON; with a saved digest "
        "the replay must be bit-identical",
    )
    pfuzz.add_argument(
        "--corpus",
        nargs="*",
        default=None,
        metavar="CASE",
        help="run the named attack-corpus cases (no names = all) against "
        "their expected oracle verdicts",
    )
    pfuzz.add_argument(
        "--seed", type=int, default=1, help="base seed for --corpus runs"
    )
    pfuzz.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for minimized violation artifacts (default: cwd)",
    )
    pfuzz.set_defaults(fn=cmd_fuzz)

    sub.add_parser("all").set_defaults(fn=cmd_all)
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
