"""Simulated processes with a serialised-CPU cost model.

A :class:`SimProcess` is one node of the distributed system.  Incoming
messages are not handled instantaneously: each handler invocation may charge
virtual CPU time (via :meth:`SimProcess.charge`), and the :class:`CpuModel`
serialises that work — a node busy verifying a batch of signatures delays
every later message, exactly the queueing behaviour that makes a HotStuff
leader a bottleneck on real hardware.

The class is transport-agnostic: a network (see :mod:`repro.net.network`)
attaches itself and provides ``send``/``broadcast`` primitives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.timers import TimerWheel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.message import Message
    from repro.net.network import Network


class CpuModel:
    """A single serialised core with a virtual-time work queue.

    ``acquire(cost)`` returns the completion time of a job of ``cost``
    microseconds submitted now: the job starts when the core frees up and
    runs for ``cost``.  With ``cost == 0`` the model is pass-through.
    """

    def __init__(self, sim: Simulator, *, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError("CPU speed must be positive")
        self._sim = sim
        self._speed = speed
        self._free_at: int = 0
        self.busy_time: int = 0

    @property
    def free_at(self) -> int:
        return self._free_at

    def acquire(self, cost_us: int) -> int:
        """Reserve the core for ``cost_us`` of work; return completion time."""
        if cost_us < 0:
            raise ValueError("CPU cost must be non-negative")
        scaled = int(round(cost_us / self._speed))
        start = max(self._sim.now, self._free_at)
        self._free_at = start + scaled
        self.busy_time += scaled
        return self._free_at

    def utilisation(self, window_us: int) -> float:
        """Fraction of the last ``window_us`` the core was busy (approx.)."""
        if window_us <= 0:
            return 0.0
        return min(1.0, self.busy_time / window_us)


class SimProcess:
    """Base class for all simulated nodes (replicas, clients, attackers)."""

    def __init__(self, pid: int, sim: Simulator, *, cpu_speed: float = 1.0) -> None:
        self.pid = pid
        self.sim = sim
        self.cpu = CpuModel(sim, speed=cpu_speed)
        self.timers = TimerWheel(sim)
        self.network: Optional["Network"] = None
        self.crashed = False
        self._handlers: Dict[str, Callable[["Message", int], None]] = {}
        self.messages_received = 0
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Called by the network when the process is registered."""
        self.network = network

    def handler(self, kind: str, fn: Callable[["Message", int], None]) -> None:
        """Register a dispatch handler for a message kind."""
        self._handlers[kind] = fn

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, message: "Message") -> None:
        """Send a point-to-point message (authenticated reliable channel)."""
        if self.crashed:
            return
        assert self.network is not None, "process not attached to a network"
        self.messages_sent += 1
        self.bytes_sent += message.size
        self.network.send(self.pid, dst, message)

    def broadcast(self, message: "Message", *, include_self: bool = True) -> None:
        """Send ``message`` to every process (optionally including self)."""
        if self.crashed:
            return
        assert self.network is not None, "process not attached to a network"
        for dst in self.network.pids():
            if dst == self.pid and not include_self:
                continue
            self.send(dst, message)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliver(self, message: "Message", sender: int) -> None:
        """Entry point used by the network; dispatches to ``on_message``."""
        if self.crashed:
            return
        self.messages_received += 1
        self.on_message(message, sender)

    def on_message(self, message: "Message", sender: int) -> None:
        """Dispatch on the message kind; subclasses may override entirely."""
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message, sender)

    # ------------------------------------------------------------------
    # CPU accounting
    # ------------------------------------------------------------------
    def charge(self, cost_us: int, callback: Optional[Callable[[], None]] = None) -> None:
        """Charge ``cost_us`` of CPU work; run ``callback`` when it completes.

        Without a callback the work is accounted for (delaying later jobs)
        but control continues synchronously — appropriate for costs whose
        result is needed inline.
        """
        done_at = self.cpu.acquire(cost_us)
        if callback is not None:
            self.sim.schedule_at(done_at, callback)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop the process: drop all I/O and cancel timers."""
        self.crashed = True
        self.timers.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pid={self.pid})"


__all__ = ["SimProcess", "CpuModel"]
