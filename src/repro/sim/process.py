"""Simulated processes with a serialised-CPU cost model.

A :class:`SimProcess` is one node of the distributed system.  Incoming
messages are not handled instantaneously: each handler invocation may charge
virtual CPU time (via :meth:`SimProcess.charge`), and the :class:`CpuModel`
serialises that work — a node busy verifying a batch of signatures delays
every later message, exactly the queueing behaviour that makes a HotStuff
leader a bottleneck on real hardware.

The class is transport-agnostic: a network (see :mod:`repro.net.network`)
attaches itself and provides ``send``/``broadcast`` primitives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.timers import TimerWheel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.message import Message
    from repro.net.network import Network


class CpuModel:
    """A single serialised core with a virtual-time work queue.

    ``acquire(cost)`` returns the completion time of a job of ``cost``
    microseconds submitted now: the job starts when the core frees up and
    runs for ``cost``.  With ``cost == 0`` the model is pass-through.
    """

    def __init__(self, sim: Simulator, *, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError("CPU speed must be positive")
        self._sim = sim
        self._speed = speed
        self._free_at: int = 0
        self.busy_time: int = 0
        self._window_mark_us: int = 0
        self._window_busy_base: int = 0

    @property
    def free_at(self) -> int:
        return self._free_at

    def acquire(self, cost_us: int) -> int:
        """Reserve the core for ``cost_us`` of work; return completion time."""
        if cost_us < 0:
            raise ValueError("CPU cost must be non-negative")
        if self._speed == 1.0:
            scaled = cost_us  # overwhelmingly common; skip the float round
        else:
            scaled = int(round(cost_us / self._speed))
        start = max(self._sim.now, self._free_at)
        self._free_at = start + scaled
        self.busy_time += scaled
        return self._free_at

    def mark_window(self) -> None:
        """Reset the measurement window for :meth:`utilisation` to now."""
        self._window_mark_us = self._sim.now
        self._window_busy_base = self._completed_busy()

    def _completed_busy(self) -> int:
        """Busy time actually elapsed by now (acquired work still queued
        past ``now`` hasn't run yet and must not count)."""
        return self.busy_time - max(0, self._free_at - self._sim.now)

    def utilisation(self) -> float:
        """Fraction of time since the last :meth:`mark_window` (or process
        start) the core was busy."""
        window_us = self._sim.now - self._window_mark_us
        if window_us <= 0:
            return 0.0
        busy = self._completed_busy() - self._window_busy_base
        return min(1.0, max(0, busy) / window_us)

    def cancel_backlog(self) -> None:
        """Abandon queued-but-unstarted work (the owner crashed)."""
        overshoot = max(0, self._free_at - self._sim.now)
        self.busy_time -= overshoot
        self._free_at = self._sim.now


class SimProcess:
    """Base class for all simulated nodes (replicas, clients, attackers)."""

    def __init__(self, pid: int, sim: Simulator, *, cpu_speed: float = 1.0) -> None:
        self.pid = pid
        self.sim = sim
        self.cpu = CpuModel(sim, speed=cpu_speed)
        self.timers = TimerWheel(sim)
        self.network: Optional["Network"] = None
        self.crashed = False
        #: Bumped on every recovery; scheduled callbacks capture the value
        #: at creation and refuse to run into a later incarnation.
        self.incarnation = 0
        self._handlers: Dict[str, Callable[["Message", int], None]] = {}
        self.messages_received = 0
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Called by the network when the process is registered."""
        self.network = network

    def handler(self, kind: str, fn: Callable[["Message", int], None]) -> None:
        """Register a dispatch handler for a message kind."""
        self._handlers[kind] = fn

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, message: "Message") -> None:
        """Send a point-to-point message (authenticated reliable channel)."""
        if self.crashed:
            return
        assert self.network is not None, "process not attached to a network"
        self.messages_sent += 1
        self.bytes_sent += message.size
        self.network.send(self.pid, dst, message)

    def broadcast(self, message: "Message", *, include_self: bool = True) -> None:
        """Send ``message`` to every process (optionally including self).

        Delegates to the network's zero-copy fan-out: one shared frame, one
        checksum stamp, one size estimate for the whole replica group.
        """
        if self.crashed:
            return
        assert self.network is not None, "process not attached to a network"
        attempts = self.network.broadcast(
            self.pid, message, include_self=include_self
        )
        self.messages_sent += attempts
        self.bytes_sent += attempts * message.size

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliver(self, message: "Message", sender: int) -> None:
        """Entry point used by the network; dispatches to ``on_message``."""
        if self.crashed:
            return
        self.messages_received += 1
        self.on_message(message, sender)

    def deliver_batch(self, messages: List["Message"], sender: int) -> None:
        """Deliver several same-frame messages from ``sender``.

        The network calls this when a coalesced frame unpacks into multiple
        application messages.  The default just loops :meth:`deliver`;
        subclasses may override to amortise per-message overhead (one CPU
        acquire, one deferred event) across the batch.
        """
        for message in messages:
            self.deliver(message, sender)

    def on_message(self, message: "Message", sender: int) -> None:
        """Dispatch on the message kind; subclasses may override entirely."""
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message, sender)

    # ------------------------------------------------------------------
    # CPU accounting
    # ------------------------------------------------------------------
    def charge(self, cost_us: int, callback: Optional[Callable[[], None]] = None) -> None:
        """Charge ``cost_us`` of CPU work; run ``callback`` when it completes.

        Without a callback the work is accounted for (delaying later jobs)
        but control continues synchronously — appropriate for costs whose
        result is needed inline.
        """
        done_at = self.cpu.acquire(cost_us)
        if callback is not None:
            epoch = self.incarnation

            def _run() -> None:
                # Work in flight when the process crashed must not land:
                # the core lost it, and a recovered incarnation must not
                # see callbacks from its previous life.
                if self.crashed or self.incarnation != epoch:
                    return
                callback()

            # ``acquire`` never completes in the past, and the completion
            # is never cancelled — fire-and-forget, so the arena backend
            # can skip the Event record.
            self.sim.schedule_light(done_at - self.sim.now, _run)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop the process: drop all I/O and cancel timers."""
        self.crashed = True
        self.timers.close()
        self.cpu.cancel_backlog()

    def recover(self) -> None:
        """Bring a crashed process back as a fresh incarnation.

        Re-arms the timer wheel; subclasses restore durable state and
        re-schedule their own timers on top of this.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.incarnation += 1
        self.timers.reopen()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pid={self.pid})"


__all__ = ["SimProcess", "CpuModel"]
