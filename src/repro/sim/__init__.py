"""Deterministic discrete-event simulation engine.

The engine is the substrate every protocol in this repository runs on.  It
provides a virtual clock with microsecond resolution, a deterministic event
queue (ties broken by insertion order), cancellable timers, and a process
abstraction with a serialised CPU so compute costs (signature verification,
share combination, ...) translate into virtual latency exactly like they
would on a real core.

Determinism contract: given the same seed and the same sequence of
``schedule`` calls, two runs produce identical event orders and therefore
identical protocol outputs.  All randomness must flow through
:mod:`repro.sim.rng`.
"""

from repro.sim.engine import Simulator, Event, SimulationError
from repro.sim.timers import Timer, TimerWheel
from repro.sim.process import SimProcess, CpuModel
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Timer",
    "TimerWheel",
    "SimProcess",
    "CpuModel",
    "RngRegistry",
    "derive_seed",
]
