"""Seed management for deterministic simulations.

Every source of randomness in a run (network jitter, client think times,
Byzantine strategies, ...) draws from its own :class:`numpy.random.Generator`
derived from a single root seed via ``SeedSequence.spawn``-style key
derivation.  Two components never share a stream, so adding a new random
consumer does not perturb existing ones — a property that keeps regression
benchmarks comparable across versions.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a label path.

    The derivation is a SHA-256 of the root seed and the labels, so it is
    stable across Python versions and platforms (unlike ``hash()``).
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "big") >> 1


class RngRegistry:
    """Hands out independent named random generators for one simulation run."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, *labels: str) -> np.random.Generator:
        """Return the generator for a label path, creating it on first use.

        Repeated calls with the same labels return the *same* generator
        object, so state advances across calls as expected.
        """
        key = "/".join(str(x) for x in labels)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *labels))
            self._streams[key] = gen
        return gen

    def fork(self, *labels: str) -> "RngRegistry":
        """Create a child registry rooted at a derived seed."""
        return RngRegistry(derive_seed(self.root_seed, *labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"


__all__ = ["RngRegistry", "derive_seed"]
