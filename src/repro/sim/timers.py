"""Cancellable timers and per-owner timer bookkeeping.

Protocols set many short-lived timers (VVB expiration timers, DBFT round
timers, pacemaker view timers).  :class:`Timer` wraps a scheduled event with
restart/cancel semantics; :class:`TimerWheel` tracks every live timer of one
protocol instance so teardown can cancel them all (preventing callbacks from
firing into a dead object, the classic source of "ghost vote" bugs in
simulators).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer bound to a simulator."""

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self.fired_count = 0

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: int) -> None:
        """(Re)arm the timer to fire ``delay`` microseconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fired_count += 1
        self._callback()


class TimerWheel:
    """Named timers for one protocol instance, cancellable as a group."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._timers: Dict[str, Timer] = {}
        self._closed = False

    def set(self, name: str, delay: int, callback: Callable[[], None]) -> Timer:
        """Arm (or re-arm) the named timer."""
        if self._closed:
            raise RuntimeError("timer wheel is closed")
        timer = self._timers.get(name)
        if timer is None:
            timer = Timer(self._sim, callback)
            self._timers[name] = timer
        else:
            # Rebind the callback: the same logical timer can carry
            # round-specific closures.
            timer._callback = callback
        timer.start(delay)
        return timer

    def cancel(self, name: str) -> None:
        timer = self._timers.get(name)
        if timer is not None:
            timer.cancel()

    def armed(self, name: str) -> bool:
        timer = self._timers.get(name)
        return timer is not None and timer.armed

    def close(self) -> None:
        """Cancel every timer and refuse further arming."""
        for timer in self._timers.values():
            timer.cancel()
        self._closed = True

    def reopen(self) -> None:
        """Accept arming again after :meth:`close` (crash recovery).

        Timers cancelled by the close stay cancelled — the recovered owner
        must re-arm whatever it still needs.
        """
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed


__all__ = ["Timer", "TimerWheel"]
