"""Partitioned simulation core: shard workers in deterministic lockstep.

One simulated cluster is split across worker *processes* by node group;
each worker advances its local partition through conservative-lookahead
epochs and the workers exchange cross-shard message frames at epoch
barriers.  Decided prefixes stay **bit-identical** to the single-process
backends — the ``goodcase_n100`` digest oracle pins this — because three
properties hold by construction:

Epoch bound
    The epoch length is ``B = min cross-shard floor_us − 1``, where
    ``floor_us(src, dst)`` is the latency model's hard lower bound for the
    link (for the geo model that is the ±3σ truncation / 20%-of-base
    clamp, for uniform links the delay itself).  Epoch ``k`` executes the
    half-open window ``((k−1)·B, k·B]``; a message sent at any ``t ≥
    (k−1)·B`` toward another shard arrives at ``t + floor > (k−1)·B + B =
    k·B``, i.e. strictly after the barrier at which its frame is
    exchanged.  No worker can ever receive a frame "late", so no rollback
    is ever needed — this is classic conservative PDES lookahead.

Sender-side completeness
    A delivery's arrival time is a function of sender-side state only:
    the sender's egress bandwidth queue, the per-*source* jitter stream,
    and the per-*link* fault stream.  A worker therefore computes the
    exact arrival time of a remote-bound message locally and ships the
    ``(src, dst, arrival_us, message)`` frame; the receiving worker's
    injection consumes no randomness.

Canonical same-instant order
    All network deliveries are scheduled at ``priority = src + 1``
    (timers and CPU completions stay at 0), and the engines order a
    bucket by ``(priority, insertion)``.  Same-instant deliveries from
    different senders therefore execute in sender-pid order *regardless*
    of which side of a barrier scheduled them, and same-sender deliveries
    keep the sender's send order because frame order is preserved
    end-to-end (capture order → coordinator routing → injection order).

Every worker builds the **full** cluster — identical construction-time
RNG draws, keys, topology and client placement on every process — then
starts only its local replicas; remote replicas stay inert and remote
clients are neutered (their sends drop silently and their timer chains
are cancelled, so they contribute zero processed events).  Per-entity
RNG streams (per-node, per-client, per-source jitter, per-link faults)
make the partition exact: a worker draws only the streams its local
senders own.

Not shardable (rejected loudly): ``gst_us > 0`` (the partial-synchrony
adversary draws one global delay stream), ``tracing``/``metrics``
(process-local registries would silently report a partition), fairness
workloads and MEV bots (both need one globally interleaved
submission/observation order).
"""

from __future__ import annotations

import hashlib
import statistics
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ShardPlan",
    "ShardedRun",
    "digest_outputs",
    "plan_shards",
    "run_sharded",
]


# ----------------------------------------------------------------------
# Digest oracle
# ----------------------------------------------------------------------
def digest_outputs(outputs: Dict[int, Sequence[Tuple[int, bytes]]]) -> str:
    """sha256 over every node's decided prefix, in pid order.

    Identical format to :func:`repro.bench.suite.prefix_digest` (which
    delegates here), so sharded runs and single-process runs are directly
    comparable.
    """
    h = hashlib.sha256()
    for pid in sorted(outputs):
        for seq, cipher_id in outputs[pid]:
            h.update(seq.to_bytes(8, "big", signed=True))
            h.update(cipher_id)
        h.update(b"|")
    return h.hexdigest()


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass
class ShardPlan:
    """How one cluster is partitioned, and the epoch that makes it safe."""

    n_shards: int
    #: Epoch length in µs: ``min cross-shard floor_us − 1``.
    epoch_us: int
    #: Node pids per shard (clients follow their home replica at build).
    node_pids: List[List[int]] = field(default_factory=list)

    def shard_of(self, pid: int) -> int:
        for idx, pids in enumerate(self.node_pids):
            if pid in pids:
                return idx
        raise KeyError(pid)


def _assign_nodes(n: int, n_regions: int, n_shards: int) -> List[int]:
    """Shard index per node pid.

    With ``n_shards <= n_regions`` the region list is split into
    contiguous groups balanced by node count, so shards align with
    regions and the epoch bound is an inter-region floor (tens of ms).
    With more shards than regions, nodes go round-robin — correct but
    with an intra-region epoch bound (sub-ms), which is what the
    shard-count-invariance tests exercise.
    """
    if n_shards > n_regions:
        return [pid % n_shards for pid in range(n)]
    counts = [len(range(i, n, n_regions)) for i in range(n_regions)]
    groups: List[List[int]] = []
    start, remaining = 0, n
    for s in range(n_shards):
        left = n_shards - s
        take: List[int] = []
        acc = 0
        while start < n_regions:
            must_leave = left - 1
            if n_regions - start <= must_leave and take:
                break
            take.append(start)
            acc += counts[start]
            start += 1
            if acc * left >= remaining and n_regions - start >= must_leave:
                break
        groups.append(take)
        remaining -= acc
    shard_of_region = {r: s for s, grp in enumerate(groups) for r in grp}
    return [shard_of_region[pid % n_regions] for pid in range(n)]


def plan_shards(config, n_shards: int) -> ShardPlan:
    """Partition ``config``'s cluster into ``n_shards`` and derive the
    epoch bound from the latency model's cross-shard floors."""
    # Late imports: repro.sim is the bottom layer; the planner reaches up
    # into harness/net only when actually invoked.
    from repro.harness.backend import make_latency_model
    from repro.net.topology import Topology
    from repro.sim.rng import RngRegistry

    n = config.n_nodes
    if not 1 <= n_shards <= n:
        raise ValueError(f"n_shards must be in [1, {n}], got {n_shards}")
    regions = list(config.regions)
    shard_of = _assign_nodes(n, len(regions), n_shards)
    node_pids = [
        [pid for pid in range(n) if shard_of[pid] == s] for s in range(n_shards)
    ]
    node_pids = [pids for pids in node_pids if pids]
    if len(node_pids) == 1:
        return ShardPlan(1, 0, node_pids)

    topology = Topology(n, regions)
    latency = make_latency_model(config, topology.placement, RngRegistry(config.seed))
    floor = None
    for src in range(n):
        for dst in range(n):
            if shard_of[src] == shard_of[dst]:
                continue
            f = latency.floor_us(src, dst)
            if floor is None or f < floor:
                floor = f
    # Clients sit in their home replica's region, so the minimum over
    # node pairs also bounds every cross-shard link that involves a
    # client.
    epoch_us = (floor or 0) - 1
    if epoch_us < 1:
        raise ValueError(
            f"cannot shard: minimum cross-shard latency floor is {floor}us; "
            "epoch bound would be < 1us (links faster than 2us cannot give "
            "the workers any lookahead)"
        )
    return ShardPlan(len(node_pids), epoch_us, node_pids)


def _check_shardable(config) -> None:
    if config.gst_us > 0:
        raise ValueError(
            "cannot shard gst_us > 0: the partial-synchrony adversary draws "
            "one global delay stream that cannot be partitioned by sender"
        )
    if config.tracing or config.metrics:
        raise ValueError(
            "cannot shard with tracing/metrics: both registries are "
            "process-local and would silently report one partition"
        )
    spec = config.resolved_workload()
    if spec.fairness:
        raise ValueError(
            "cannot shard a fairness workload: the submitted-order log needs "
            "one globally interleaved timeline"
        )
    if any(group.client == "mev" for group in spec.groups):
        raise ValueError(
            "cannot shard MEV workloads: bots observe execution at their "
            "home replica and need the global committed order"
        )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker(conn, config_dict: Dict[str, Any], node_pids: List[int]) -> None:
    """Pipe-driven worker: build the full cluster, simulate the local
    partition, trade frames at every barrier.  Must stay at module top
    level so multiprocessing can target it under any start method."""
    import gc

    try:
        from repro.harness.cluster import LyraCluster
        from repro.harness.config import ExperimentConfig

        config = ExperimentConfig.from_dict(config_dict)
        cluster = LyraCluster(config, local_pids=node_pids)
        local_nodes = set(node_pids)
        local = set(node_pids) | {
            c.pid for c in cluster.clients if c.home in local_nodes
        }
        captured: List[Tuple[int, int, int, Any]] = []
        cluster.network.enable_sharding(
            local, lambda src, dst, arr, msg: captured.append((src, dst, arr, msg))
        )
        for node in cluster.local_nodes():
            node.start()
        cluster.watchdog.start()
        conn.send(("ready", sorted(local)))
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # Per-worker event-loop CPU seconds (process CPU time, so a
        # worker descheduled on an oversubscribed host does not bill the
        # other workers' slices).  max() across the fleet is the run's
        # critical path: the wall time a one-core-per-shard host needs.
        loop_cpu = 0.0
        try:
            while True:
                cmd = conn.recv()
                kind = cmd[0]
                if kind == "run":
                    _, target, frames = cmd
                    cpu0 = time.process_time()
                    inject = cluster.network.inject_remote
                    for src, dst, arr, msg in frames:
                        inject(src, dst, arr, msg)
                    cluster.sim.run(until=target)
                    loop_cpu += time.process_time() - cpu0
                    out = captured[:]
                    captured.clear()
                    conn.send((out, cluster.network.pending_coalesced()))
                elif kind == "flush":
                    _, frames = cmd
                    cpu0 = time.process_time()
                    inject = cluster.network.inject_remote
                    for src, dst, arr, msg in frames:
                        inject(src, dst, arr, msg)
                    cluster.network.drain_pending()
                    loop_cpu += time.process_time() - cpu0
                    out = captured[:]
                    captured.clear()
                    conn.send((out, cluster.network.pending_coalesced()))
                elif kind == "finish":
                    break
                else:  # pragma: no cover - protocol bug
                    raise RuntimeError(f"unknown shard command {kind!r}")
        finally:
            if gc_was_enabled:
                gc.enable()
        cluster.watchdog.check_now()
        cluster.workload.finalize(cluster.sim.now)
        blob = _consolidate(cluster, local_nodes)
        blob["loop_cpu_s"] = loop_cpu
        conn.send(("done", blob))
    except Exception:  # pragma: no cover - surfaced by the coordinator
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _consolidate(cluster, local_nodes: set) -> Dict[str, Any]:
    """Everything the coordinator needs from one worker, as plain data."""
    nodes = cluster.local_nodes()
    clients = [c for c in cluster.clients if c.home in local_nodes]
    blob: Dict[str, Any] = {
        "outputs": {node.pid: node.output_sequence() for node in nodes},
        "exec_events": {
            pid: events
            for pid, events in cluster.exec_events.items()
            if pid in local_nodes
        },
        "events_processed": cluster.sim.events_processed,
        "messages_delivered": cluster.network.messages_delivered,
        "bytes_delivered": cluster.network.bytes_delivered,
        "executed_total": max((n.stats.txs_executed for n in nodes), default=0),
        "committed_count": sum(c.stats.completed for c in clients),
        "latencies": sorted(
            (c.pid, list(c.stats.latencies_us)) for c in clients
        ),
        "rejected": sum(n.commit.rejected_count for n in nodes if n.commit),
        "accepted": max(
            (n.commit.accepted_count for n in nodes if n.commit), default=0
        ),
        "invariant_checks": cluster.watchdog.report.checks_run,
        "watchdog_ticks": cluster.watchdog.ticks,
        "invariant_violations": [
            v.render() for v in cluster.watchdog.report.violations
        ],
        "fault_stats": {
            "unroutable_dropped": cluster.network.unroutable_dropped,
            "corrupt_dropped": cluster.network.corrupt_dropped,
        },
        "wire_stats": (
            cluster.network.wire_stats.to_dict()
            if cluster.network.wire_stats.frames_sent
            else {}
        ),
        "dissemination": (
            cluster.dissemination.stats_dict()
            if cluster.dissemination is not None
            else None
        ),
    }
    if cluster.fault_injector is not None:
        blob["fault_stats"].update(cluster.fault_injector.stats.to_dict())
    if cluster.network.reliable is not None:
        blob["fault_stats"].update(cluster.network.reliable.stats.to_dict())
    return blob


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class ShardedRun:
    """A sharded run's merged result plus its barrier bookkeeping."""

    result: Any  # ExperimentResult (typed loosely: sim must not import harness)
    outputs: Dict[int, List[Tuple[int, bytes]]]
    plan: ShardPlan
    barriers: int = 0
    frames_exchanged: int = 0
    #: Per-worker event-loop CPU seconds; ``max()`` is the critical path
    #: (the wall time a one-core-per-shard host would need).  Empty for
    #: single-process runs.
    worker_loop_cpu_s: List[float] = field(default_factory=list)

    def digest(self) -> str:
        return digest_outputs(self.outputs)


class _Workers:
    """The worker fleet: lockstep commands, frame routing, teardown."""

    def __init__(self, ctx, config, plan: ShardPlan) -> None:
        config_dict = config.to_dict()
        self.procs = []
        self.conns = []
        for pids in plan.node_pids:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child, config_dict, pids)
            )
            proc.daemon = True
            proc.start()
            child.close()
            self.procs.append(proc)
            self.conns.append(parent)
        self.owner: Dict[int, int] = {}
        for idx, conn in enumerate(self.conns):
            kind, payload = self._recv(conn)
            for pid in payload:
                self.owner[pid] = idx
        self.inboxes: List[list] = [[] for _ in self.conns]
        self.frames_exchanged = 0

    def _recv(self, conn):
        reply = conn.recv()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        return reply

    def _route(self, frames: Sequence[tuple]) -> None:
        owner = self.owner
        inboxes = self.inboxes
        for frame in frames:
            inboxes[owner[frame[1]]].append(frame)
        self.frames_exchanged += len(frames)

    def _exchange(self, command: tuple) -> bool:
        """Send one command (plus each worker's inbox) to every worker,
        collect and route the captured frames.  Returns True if any
        worker still has coalesced messages parked."""
        inboxes = self.inboxes
        self.inboxes = [[] for _ in self.conns]
        for conn, inbox in zip(self.conns, inboxes):
            conn.send(command + (inbox,))
        pending = False
        for conn in self.conns:
            frames, worker_pending = self._recv(conn)
            self._route(frames)
            pending = pending or bool(worker_pending)
        return pending

    def run_to(self, target_us: int) -> bool:
        return self._exchange(("run", target_us))

    def flush(self) -> bool:
        return self._exchange(("flush",))

    def finish(self) -> List[Dict[str, Any]]:
        for conn in self.conns:
            conn.send(("finish",))
        blobs = []
        for conn in self.conns:
            kind, blob = self._recv(conn)
            blobs.append(blob)
        return blobs

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self.procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)


def run_sharded(config, n_shards: int) -> ShardedRun:
    """Run one Lyra cluster partitioned over ``n_shards`` workers.

    Bit-identical to ``build_cluster(config).run()`` in every decided
    prefix (the digest oracle); measurement aggregates (events/sec,
    latency percentiles, throughput) are merged across workers.
    ``n_shards=1`` degenerates to the single-process path.
    """
    from repro.harness.sweep import _pool_context

    _check_shardable(config)
    plan = plan_shards(config, n_shards)
    if plan.n_shards == 1:
        return _run_single(config, plan)

    started = time.perf_counter()
    workers = _Workers(_pool_context(), config, plan)
    barriers = 0
    pending = False
    try:
        duration = config.duration_us
        epoch = plan.epoch_us
        now = 0
        while now < duration:
            now = min(now + epoch, duration)
            pending = workers.run_to(now)
            barriers += 1
        if pending and config.coalesce and config.coalesce_window_us > 0:
            # Mirror LyraCluster._drain_coalesced across the fleet: flush
            # every open window, give the protocol Δ-sized grace steps —
            # each cut into epoch-bounded sub-barriers so lookahead still
            # holds — and stop when no worker has parked messages (or at
            # the same 10Δ deadline).  Frames still in flight at the stop
            # are dropped, exactly as a single process drops events
            # scheduled past its final horizon.
            delta = config.delta_us
            deadline = duration + 10 * delta
            while True:
                workers.flush()
                if now >= deadline:
                    break
                step_target = min(now + delta, deadline)
                while now < step_target:
                    now = min(now + epoch, step_target)
                    pending = workers.run_to(now)
                    barriers += 1
                if not pending:
                    break
        blobs = workers.finish()
    finally:
        workers.close()
    wall_s = time.perf_counter() - started
    result, outputs = _merge(config, blobs, wall_s)
    return ShardedRun(
        result=result,
        outputs=outputs,
        plan=plan,
        barriers=barriers,
        frames_exchanged=workers.frames_exchanged,
        worker_loop_cpu_s=[
            round(blob.get("loop_cpu_s", 0.0), 3) for blob in blobs
        ],
    )


def _run_single(config, plan: ShardPlan) -> ShardedRun:
    from repro.harness.cluster import LyraCluster

    cluster = LyraCluster(config)
    result = cluster.run()
    outputs = {node.pid: node.output_sequence() for node in cluster.nodes}
    return ShardedRun(result=result, outputs=outputs, plan=plan)


def _merge(config, blobs: List[Dict[str, Any]], wall_s: float):
    """Fold worker blobs into one ExperimentResult + the merged outputs."""
    from repro.core.smr import check_output_sorted, check_prefix_consistency
    from repro.harness.cluster import ExperimentResult

    outputs: Dict[int, list] = {}
    exec_events: Dict[int, list] = {}
    latencies_by_pid: List[Tuple[int, List[int]]] = []
    fault_stats: Dict[str, int] = {}
    wire_stats: Dict[str, float] = {}
    dissemination: Optional[Dict[str, float]] = None
    result = ExperimentResult(
        n_nodes=config.n_nodes, duration_us=config.duration_us, sim_wall_s=wall_s
    )
    for blob in blobs:
        outputs.update({int(pid): out for pid, out in blob["outputs"].items()})
        exec_events.update(blob["exec_events"])
        latencies_by_pid.extend(blob["latencies"])
        result.events_processed += blob["events_processed"]
        result.messages_delivered += blob["messages_delivered"]
        result.bytes_delivered += blob["bytes_delivered"]
        result.committed_count += blob["committed_count"]
        result.executed_total = max(result.executed_total, blob["executed_total"])
        result.rejected_instances += blob["rejected"]
        result.accepted_instances = max(
            result.accepted_instances, blob["accepted"]
        )
        result.invariant_checks += blob["invariant_checks"]
        result.invariant_violations.extend(blob["invariant_violations"])
        for key, value in blob["fault_stats"].items():
            fault_stats[key] = fault_stats.get(key, 0) + value
        for key, value in blob["wire_stats"].items():
            if key == "coalescing_ratio":
                continue
            wire_stats[key] = wire_stats.get(key, 0) + value
        if blob["dissemination"] is not None:
            if dissemination is None:
                dissemination = dict(blob["dissemination"])
            else:
                for key, value in blob["dissemination"].items():
                    if key in ("strategy", "fanout"):
                        continue
                    dissemination[key] = dissemination.get(key, 0) + value
    # Every worker runs its own watchdog tick chain over the same horizon
    # — the one per-cluster timer that cannot be partitioned by owner.
    # The chains are identical by construction (same interval, same
    # lockstep barrier schedule), so the summed event count carries
    # ``n_workers − 1`` duplicate chains; drop them so the merged
    # ``events_processed`` equals the single-process run's exactly.
    # (Remote clients contribute zero events: ``neuter()`` cancels their
    # timer chains at build time.)
    ticks = [blob.get("watchdog_ticks", 0) for blob in blobs]
    if ticks:
        result.events_processed -= sum(ticks) - max(ticks)
    result.fault_stats = fault_stats
    if wire_stats:
        frames = wire_stats.get("frames_sent", 0)
        wire_stats["coalescing_ratio"] = round(
            wire_stats.get("messages_sent", 0) / frames if frames else 1.0, 4
        )
        result.wire_stats = wire_stats
    if dissemination is not None:
        result.wire_stats = dict(result.wire_stats)
        result.wire_stats["dissemination"] = dissemination

    latencies: List[int] = []
    for _pid, values in sorted(latencies_by_pid):
        latencies.extend(values)
    result.latencies_us = latencies
    if latencies:
        result.avg_latency_us = float(statistics.fmean(latencies))
        ordered = sorted(latencies)
        result.p50_latency_us = float(ordered[len(ordered) // 2])
        result.p99_latency_us = float(
            ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        )
    # Same estimator as LyraCluster._windowed_throughput: per-node window
    # sums, median across the merged fleet.
    measure_from = config.measurement_start_us()
    window_us = max(1, config.duration_us - measure_from)
    per_node = sorted(
        sum(count for t, count in events if t >= measure_from)
        for events in exec_events.values()
    )
    if per_node:
        result.throughput_tps = (
            per_node[len(per_node) // 2] * 1_000_000.0 / window_us
        )
    # The cross-shard safety check is the whole point: prefix agreement
    # is verified over the union of every worker's replicas.
    result.safety_violation = check_prefix_consistency(outputs)
    if result.safety_violation is None:
        for pid in sorted(outputs):
            err = check_output_sorted(outputs[pid])
            if err is not None:
                result.safety_violation = f"pid {pid}: {err}"
                break
    return result, outputs
