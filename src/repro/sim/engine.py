"""Core discrete-event simulator.

The simulator keeps a binary heap of :class:`Event` records ordered by
``(time, priority, sequence)``.  The ``sequence`` component is a global
insertion counter which guarantees a total, deterministic order even when
many events share a timestamp — essential for reproducible distributed
protocol runs.

Time is an integer number of microseconds.  Integer time avoids the
floating-point drift that makes long simulations diverge between platforms,
and a microsecond grain is fine enough to express both WAN latencies
(tens of milliseconds) and crypto costs (tens of microseconds).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

# Convenience time units, all expressed in the simulator's integer microsecond
# grain.  ``5 * MILLISECONDS`` reads better than ``5000``.
MICROSECONDS = 1
MILLISECONDS = 1_000
SECONDS = 1_000_000


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (time travel, re-running, ...)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them in
    deterministic order.  ``cancelled`` events stay in the heap (cancellation
    is O(1)) and are skipped when popped.
    """

    time: int
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event loop with an integer virtual clock."""

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._processed: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def now_ms(self) -> float:
        """Current virtual time in (float) milliseconds, for reporting."""
        return self._now / MILLISECONDS

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for profiling/metrics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``priority`` breaks ties at equal timestamps: lower runs first.
        Returns the :class:`Event`, whose :meth:`Event.cancel` removes it.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + int(delay), priority, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is {self._now})"
            )
        return self.schedule(when - self._now, callback, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event in the past")
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed.

        ``until`` is an absolute virtual time; on return ``now`` is
        ``min(until, time of last event)``.  Returns the number of events
        executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                if self.step():
                    executed += 1
            else:
                if until is not None and self._now < until and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event completes."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (e.g. a node's timers at shutdown)."""
        for event in events:
            event.cancel()


__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
]
