"""Core discrete-event simulator.

The simulator keeps a two-level queue: a binary heap of *distinct
timestamps*, each mapping to a bucket of :class:`Event` records ordered by
``(priority, sequence)``.  The ``sequence`` component is a global insertion
counter which guarantees a total, deterministic order even when many events
share a timestamp — essential for reproducible distributed protocol runs.

The bucket layer is a same-timestamp burst fast path: protocol broadcasts
land n-1 deliveries (and their follow-up CPU completions) on identical
timestamps, so most ``schedule`` calls append to an existing bucket in O(1)
instead of sifting through one global heap whose comparisons are tuple-wide.
Only the first event of a new timestamp pays a heap push, and the heap
holds bare integers.

Time is an integer number of microseconds.  Integer time avoids the
floating-point drift that makes long simulations diverge between platforms,
and a microsecond grain is fine enough to express both WAN latencies
(tens of milliseconds) and crypto costs (tens of microseconds).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from operator import attrgetter
from typing import Any, Callable, Dict, Iterable, List, Optional

# Convenience time units, all expressed in the simulator's integer microsecond
# grain.  ``5 * MILLISECONDS`` reads better than ``5000``.
MICROSECONDS = 1
MILLISECONDS = 1_000
SECONDS = 1_000_000


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (time travel, re-running, ...)."""


class Event:
    """A scheduled callback.

    Buckets order events by the explicit ``(priority, seq)`` key so the
    queue pops them in deterministic order — a plain ``__slots__`` class
    beats an ``order=True`` dataclass here because events are the single
    most-allocated object in a run and field-by-field ``__lt__`` dispatch
    showed up in profiles.  ``cancelled`` events stay in their bucket
    (cancellation is O(1)) and are skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"seq={self.seq}, cancelled={self.cancelled})"
        )


#: Bucket sort key: ties at one timestamp resolve by (priority, insertion).
_EVENT_KEY = attrgetter("priority", "seq")


class Simulator:
    """Deterministic discrete-event loop with an integer virtual clock."""

    def __init__(self) -> None:
        self._now: int = 0
        #: Min-heap of the distinct timestamps present in ``_buckets``.
        self._times: List[int] = []
        #: timestamp -> events at that time, kept sorted by (priority, seq).
        self._buckets: Dict[int, List[Event]] = {}
        #: Cursor into the bucket currently being drained (consumed prefix).
        self._bucket_pos: Dict[int, int] = {}
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._processed: int = 0
        #: Live count of queued events (kept O(1); see ``pending``).
        self._pending: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def now_ms(self) -> float:
        """Current virtual time in (float) milliseconds, for reporting."""
        return self._now / MILLISECONDS

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for profiling/metrics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones that
        have not been skipped yet).  O(1): maintained as a live counter."""
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``priority`` breaks ties at equal timestamps: lower runs first.
        Returns the :class:`Event`, whose :meth:`Event.cancel` removes it.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        event = Event(when, priority, next(self._counter), callback)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            heapq.heappush(self._times, when)
        elif priority >= bucket[-1].priority:
            # Fast path: seq is globally monotonic, so an appended event
            # with priority >= the tail keeps the bucket sorted.
            bucket.append(event)
        else:
            insort(bucket, event, lo=self._bucket_pos.get(when, 0), key=_EVENT_KEY)
        self._pending += 1
        return event

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is {self._now})"
            )
        return self.schedule(when - self._now, callback, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_event(self) -> Optional[Event]:
        """Peek the next live event, discarding drained buckets and
        cancelled bucket heads along the way.  On return the cursor of the
        head bucket points at the returned event, so the caller can consume
        it by advancing ``_bucket_pos`` once (see ``run``/``step``)."""
        times = self._times
        buckets = self._buckets
        positions = self._bucket_pos
        while times:
            t = times[0]
            bucket = buckets[t]
            pos = start = positions.get(t, 0)
            size = len(bucket)
            while pos < size and bucket[pos].cancelled:
                pos += 1
            if pos != start:
                self._pending -= pos - start
            if pos < size:
                positions[t] = pos
                return bucket[pos]
            heapq.heappop(times)
            del buckets[t]
            positions.pop(t, None)
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self._next_event()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue yielded an event in the past")
        self._bucket_pos[event.time] += 1
        self._pending -= 1
        self._now = event.time
        self._processed += 1
        event.callback()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed.

        ``until`` is an absolute virtual time; on return ``now`` is
        ``min(until, time of last event)``.  Returns the number of events
        executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        # The peek in ``_next_event`` leaves the cursor on the event, so the
        # hot loop consumes it inline instead of re-peeking via ``step`` —
        # the old peek-then-step shape called ``_next_event`` twice per event.
        next_event = self._next_event
        positions = self._bucket_pos
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                event = next_event()
                if event is None:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                when = event.time
                if until is not None and when > until:
                    self._now = until
                    break
                positions[when] += 1
                self._pending -= 1
                self._now = when
                self._processed += 1
                event.callback()
                executed += 1
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event completes."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (e.g. a node's timers at shutdown)."""
        for event in events:
            event.cancel()


__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
]
