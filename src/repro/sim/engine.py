"""Core discrete-event simulator.

The simulator keeps a two-level queue: a binary heap of *distinct
timestamps*, each mapping to a bucket of :class:`Event` records ordered by
``(priority, sequence)``.  The ``sequence`` component is a global insertion
counter which guarantees a total, deterministic order even when many events
share a timestamp — essential for reproducible distributed protocol runs.

The bucket layer is a same-timestamp burst fast path: protocol broadcasts
land n-1 deliveries (and their follow-up CPU completions) on identical
timestamps, so most ``schedule`` calls append to an existing bucket in O(1)
instead of sifting through one global heap whose comparisons are tuple-wide.
Only the first event of a new timestamp pays a heap push, and the heap
holds bare integers.

Time is an integer number of microseconds.  Integer time avoids the
floating-point drift that makes long simulations diverge between platforms,
and a microsecond grain is fine enough to express both WAN latencies
(tens of milliseconds) and crypto costs (tens of microseconds).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from operator import attrgetter
from typing import Any, Callable, Dict, Iterable, List, Optional

# Convenience time units, all expressed in the simulator's integer microsecond
# grain.  ``5 * MILLISECONDS`` reads better than ``5000``.
MICROSECONDS = 1
MILLISECONDS = 1_000
SECONDS = 1_000_000


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (time travel, re-running, ...)."""


class Event:
    """A scheduled callback.

    Buckets order events by the explicit ``(priority, seq)`` key so the
    queue pops them in deterministic order — a plain ``__slots__`` class
    beats an ``order=True`` dataclass here because events are the single
    most-allocated object in a run and field-by-field ``__lt__`` dispatch
    showed up in profiles.  ``cancelled`` events stay in their bucket
    (cancellation is O(1)) and are skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"seq={self.seq}, cancelled={self.cancelled})"
        )


#: Bucket sort key: ties at one timestamp resolve by (priority, insertion).
_EVENT_KEY = attrgetter("priority", "seq")


class Simulator:
    """Deterministic discrete-event loop with an integer virtual clock."""

    def __init__(self) -> None:
        self._now: int = 0
        #: Min-heap of the distinct timestamps present in ``_buckets``.
        self._times: List[int] = []
        #: timestamp -> events at that time, kept sorted by (priority, seq).
        self._buckets: Dict[int, List[Event]] = {}
        #: Cursor into the bucket currently being drained.  Only the head
        #: bucket ever has a consumed prefix (events at earlier times are
        #: gone, events at later times have not started), so two scalars
        #: replace the old per-timestamp position dict.
        self._head_time: int = -1
        self._head_pos: int = 0
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._processed: int = 0
        #: Live count of queued events (kept O(1); see ``pending``).
        self._pending: int = 0
        #: End-of-instant hooks: run whenever the loop is about to advance
        #: past the current timestamp while the dirty flag is set.  The
        #: coalescing layer uses this to flush per-link outboxes exactly
        #: once per simulated instant (see ``add_end_of_instant_hook``).
        self._instant_hooks: List[Callable[[], None]] = []
        self._instant_dirty = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def now_ms(self) -> float:
        """Current virtual time in (float) milliseconds, for reporting."""
        return self._now / MILLISECONDS

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for profiling/metrics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones that
        have not been skipped yet).  O(1): maintained as a live counter."""
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``priority`` breaks ties at equal timestamps: lower runs first.
        Returns the :class:`Event`, whose :meth:`Event.cancel` removes it.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        event = Event(when, priority, next(self._counter), callback)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            heapq.heappush(self._times, when)
        elif priority >= bucket[-1].priority:
            # Fast path: seq is globally monotonic, so an appended event
            # with priority >= the tail keeps the bucket sorted.
            bucket.append(event)
        else:
            lo = self._head_pos if when == self._head_time else 0
            insort(bucket, event, lo=lo, key=_EVENT_KEY)
        self._pending += 1
        return event

    def schedule_block(self, items: List, *, priority: int = 0) -> None:
        """Schedule many ``(delay, callback)`` pairs at one ``priority``.

        The per-event bookkeeping (bucket/heap lookups, the pending
        counter) is hoisted out of the loop; delays must be non-negative —
        callers on this path (broadcast fan-out) guarantee it by
        construction, so the guard of :meth:`schedule` is skipped.
        """
        now = self._now
        times = self._times
        buckets = self._buckets
        counter = self._counter
        head_time = self._head_time
        head_pos = self._head_pos
        for delay, callback in items:
            when = now + delay
            event = Event(when, priority, next(counter), callback)
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [event]
                heapq.heappush(times, when)
            elif bucket[-1].priority <= priority:
                bucket.append(event)
            else:
                lo = head_pos if when == head_time else 0
                insort(bucket, event, lo=lo, key=_EVENT_KEY)
        self._pending += len(items)

    def schedule_light(
        self, delay: int, callback: Callable[[], None], *, priority: int = 0
    ) -> None:
        """Fire-and-forget :meth:`schedule`: the caller promises it will
        never cancel (or even hold) the resulting event.

        The base simulator simply delegates, so the python backend is
        unchanged; accelerated backends exploit the promise to skip the
        per-event record entirely (see :mod:`repro.sim.arena`).
        """
        self.schedule(delay, callback, priority=priority)

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is {self._now})"
            )
        return self.schedule(when - self._now, callback, priority=priority)

    # ------------------------------------------------------------------
    # End-of-instant hooks
    # ------------------------------------------------------------------
    def add_end_of_instant_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run when the loop is about to leave the
        current timestamp (or the queue empties) while the instant is
        marked dirty.  Hooks fire *before* the ``until`` horizon check, so
        work emitted at the final instant of a bounded ``run`` is still
        flushed.  Hooks may schedule new events and re-mark the instant."""
        self._instant_hooks.append(hook)

    def mark_instant_dirty(self) -> None:
        """Request an end-of-instant hook pass before time next advances."""
        self._instant_dirty = True

    def _run_instant_hooks(self) -> None:
        self._instant_dirty = False
        for hook in self._instant_hooks:
            hook()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_event(self) -> Optional[Event]:
        """Peek the next live event, discarding drained buckets and
        cancelled bucket heads along the way.  On return the head cursor
        points at the returned event, so the caller can consume it by
        advancing ``_head_pos`` once (see ``run``/``step``)."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            pos = start = self._head_pos if t == self._head_time else 0
            size = len(bucket)
            while pos < size and bucket[pos].cancelled:
                pos += 1
            if pos != start:
                self._pending -= pos - start
            if pos < size:
                self._head_time = t
                self._head_pos = pos
                return bucket[pos]
            heapq.heappop(times)
            del buckets[t]
            self._head_time = -1
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self._next_event()
        while self._instant_dirty and (event is None or event.time > self._now):
            self._run_instant_hooks()
            event = self._next_event()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue yielded an event in the past")
        self._head_pos += 1
        self._pending -= 1
        self._now = event.time
        self._processed += 1
        event.callback()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed.

        ``until`` is an absolute virtual time; on return ``now`` is
        ``min(until, time of last event)``.  Returns the number of events
        executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        # The peek logic of ``_next_event`` is inlined below: at ~2 events
        # per delivered message the loop body dominates runs, and the
        # extra call frame plus attribute traffic showed up in profiles.
        times = self._times
        buckets = self._buckets
        limit = max_events if max_events is not None else float("inf")
        try:
            while not self._stopped and executed < limit:
                event = None
                while times:
                    t = times[0]
                    bucket = buckets[t]
                    pos = start = self._head_pos if t == self._head_time else 0
                    size = len(bucket)
                    while pos < size:
                        ev = bucket[pos]
                        if not ev.cancelled:
                            event = ev
                            break
                        pos += 1
                    if pos != start:
                        self._pending -= pos - start
                        self._head_time = t
                        self._head_pos = pos
                    if event is not None:
                        break
                    heapq.heappop(times)
                    del buckets[t]
                    self._head_time = -1
                # Flush coalescing outboxes before the clock leaves this
                # instant — and before the ``until`` horizon check, so a
                # burst at the boundary still goes out.
                if self._instant_dirty and (
                    event is None or event.time > self._now
                ):
                    self._run_instant_hooks()
                    continue
                if event is None:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                when = event.time
                if until is not None and when > until:
                    self._now = until
                    break
                # Drain the whole bucket inline: while ``now == when`` no
                # callback can schedule anything earlier (delays are
                # non-negative), so this bucket stays at the heap head
                # until exhausted and the heap/dict lookups above need not
                # repeat per event.
                self._now = when
                self._head_time = when
                while True:
                    self._head_pos = pos + 1
                    self._pending -= 1
                    self._processed += 1
                    event.callback()
                    executed += 1
                    if self._stopped or executed >= limit:
                        break
                    pos += 1
                    size = len(bucket)  # callbacks may have appended
                    event = None
                    while pos < size:
                        ev = bucket[pos]
                        if not ev.cancelled:
                            event = ev
                            break
                        pos += 1
                        self._pending -= 1
                    if event is None:
                        self._head_pos = pos
                        break
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event completes."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (e.g. a node's timers at shutdown)."""
        for event in events:
            event.cancel()


__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
]
