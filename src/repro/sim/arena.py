"""Arena-backed event loop for the accelerated ("vector") backend.

The stock :class:`~repro.sim.engine.Simulator` allocates one
:class:`~repro.sim.engine.Event` record per scheduled callback.  Most of a
run's events come from two fire-and-forget paths — broadcast fan-outs
(``schedule_block``) and deferred CPU completions (``schedule_light``) —
whose events are never cancelled and never escape to a caller, so the
record exists purely to carry ``(priority, seq, callback)`` through the
bucket.  For those, :class:`ArenaSimulator` stores the bare callback in the
bucket instead: the bucket list *is* the arena column, the implicit
priority is 0 and the implicit sequence number is the arrival position,
which is exactly what the global insertion counter would have assigned.

Fire-and-forget work at a non-zero priority (network deliveries run at
``priority = src + 1`` so same-instant ordering is canonical across shard
layouts) is stored as a two-tuple ``(priority, callback)`` — still no
counter bump and no 5-slot record, just one tuple.

Three invariants make the mixed representation safe and bit-identical:

- a bucket is kept sorted by priority with FIFO order among equals.  The
  base engine's ``(priority, seq)`` key reduces to exactly this because
  ``seq`` is globally monotonic, so ``insort``-by-priority (``bisect_right``
  semantics: new entries land after their priority peers) reproduces the
  original total order;
- bare/tuple entries cannot be cancelled, so the drain loop's cancellation
  scan only ever inspects real :class:`Event` records;
- tuple entries are only created with ``priority > 0``, so the implicit
  priority of a bare callback stays 0.

Drained bucket lists are recycled through a free-list instead of being
re-allocated every simulated instant.  The free list is bounded two ways:
at most ``_FREE_BUCKET_LIMIT`` lists are kept, and a list longer than
``_FREE_BUCKET_ENTRY_LIMIT`` at drain time goes back to the allocator —
an n=100 broadcast burst must not pin its peak-sized bucket for the rest
of the run (CPython's ``list.clear`` releases the item array, but the cap
keeps the bound independent of that implementation detail).
``schedule``/``schedule_at`` still return real, cancellable events, so
timers, the watchdog and the coalescing end-of-instant hooks run
unmodified.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable, List, Optional

from repro.sim.engine import Event, SimulationError, Simulator

#: Bucket lists kept for reuse; beyond this they go back to the allocator.
_FREE_BUCKET_LIMIT = 64
#: Buckets that drained more entries than this are not recycled: one
#: paper-scale burst must not hold its peak allocation for the whole run.
_FREE_BUCKET_ENTRY_LIMIT = 512


def _entry_priority(entry) -> int:
    """Sort key over mixed bucket entries: bare callbacks are priority 0,
    fire-and-forget tuples carry theirs in slot 0."""
    cls = entry.__class__
    if cls is Event:
        return entry.priority
    if cls is tuple:
        return entry[0]
    return 0


class ArenaSimulator(Simulator):
    """Drop-in :class:`Simulator` with arena-style bucket storage.

    Behaviour (execution order, virtual clock, ``pending``/``processed``
    accounting, hooks) is bit-identical to the base engine; only the
    in-memory representation of fire-and-forget events differs.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Recycled bucket lists (cleared before reuse).
        self._free_buckets: List[list] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> Event:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        event = Event(when, priority, next(self._counter), callback)
        bucket = self._buckets.get(when)
        if bucket is None:
            free = self._free_buckets
            if free:
                bucket = free.pop()
                bucket.append(event)
            else:
                bucket = [event]
            self._buckets[when] = bucket
            heapq.heappush(self._times, when)
        else:
            tail = bucket[-1]
            if priority >= _entry_priority(tail):
                bucket.append(event)
            else:
                lo = self._head_pos if when == self._head_time else 0
                insort(bucket, event, lo=lo, key=_entry_priority)
        self._pending += 1
        return event

    def schedule_light(
        self, delay: int, callback: Callable[[], None], *, priority: int = 0
    ) -> None:
        """Fire-and-forget schedule with no :class:`Event` record at all:
        a bare callback at priority 0, a ``(priority, callback)`` tuple
        otherwise."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + int(delay)
        entry = callback if priority == 0 else (priority, callback)
        bucket = self._buckets.get(when)
        if bucket is None:
            free = self._free_buckets
            if free:
                bucket = free.pop()
                bucket.append(entry)
            else:
                bucket = [entry]
            self._buckets[when] = bucket
            heapq.heappush(self._times, when)
        else:
            if _entry_priority(bucket[-1]) > priority:
                lo = self._head_pos if when == self._head_time else 0
                insort(bucket, entry, lo=lo, key=_entry_priority)
            else:
                bucket.append(entry)
        self._pending += 1

    def schedule_block(self, items: List, *, priority: int = 0) -> None:
        now = self._now
        times = self._times
        buckets = self._buckets
        free = self._free_buckets
        head_time = self._head_time
        head_pos = self._head_pos
        wrap = priority != 0
        for delay, callback in items:
            when = now + delay
            entry = (priority, callback) if wrap else callback
            bucket = buckets.get(when)
            if bucket is None:
                if free:
                    bucket = free.pop()
                    bucket.append(entry)
                else:
                    bucket = [entry]
                buckets[when] = bucket
                heapq.heappush(times, when)
            else:
                if _entry_priority(bucket[-1]) > priority:
                    lo = head_pos if when == head_time else 0
                    insort(bucket, entry, lo=lo, key=_entry_priority)
                else:
                    bucket.append(entry)
        self._pending += len(items)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _peek(self):
        """Arena analogue of ``_next_event``: returns ``(entry, time)`` of
        the next live entry (bare callback or event), or ``None``."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            pos = start = self._head_pos if t == self._head_time else 0
            size = len(bucket)
            entry = None
            while pos < size:
                e = bucket[pos]
                if e.__class__ is not Event or not e.cancelled:
                    entry = e
                    break
                pos += 1
            if pos != start:
                self._pending -= pos - start
            if entry is not None:
                self._head_time = t
                self._head_pos = pos
                return entry, t
            heapq.heappop(times)
            del buckets[t]
            self._release_bucket(bucket)
            self._head_time = -1
        return None

    def _release_bucket(self, bucket: list) -> None:
        free = self._free_buckets
        if (
            len(free) < _FREE_BUCKET_LIMIT
            and len(bucket) <= _FREE_BUCKET_ENTRY_LIMIT
        ):
            bucket.clear()
            free.append(bucket)

    def step(self) -> bool:
        peek = self._peek()
        while self._instant_dirty and (peek is None or peek[1] > self._now):
            self._run_instant_hooks()
            peek = self._peek()
        if peek is None:
            return False
        entry, when = peek
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue yielded an event in the past")
        self._head_pos += 1
        self._pending -= 1
        self._now = when
        self._processed += 1
        cls = entry.__class__
        if cls is Event:
            entry.callback()
        elif cls is tuple:
            entry[1]()
        else:
            entry()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        # Mirrors Simulator.run with two changes: bucket entries may be
        # bare callbacks (checked with one ``__class__`` test before the
        # cancellation scan), and drained bucket lists are recycled.
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        times = self._times
        buckets = self._buckets
        free = self._free_buckets
        limit = max_events if max_events is not None else float("inf")
        try:
            while not self._stopped and executed < limit:
                entry = None
                when = -1
                while times:
                    t = times[0]
                    bucket = buckets[t]
                    pos = start = self._head_pos if t == self._head_time else 0
                    size = len(bucket)
                    while pos < size:
                        e = bucket[pos]
                        if e.__class__ is not Event or not e.cancelled:
                            entry = e
                            break
                        pos += 1
                    if pos != start:
                        self._pending -= pos - start
                        self._head_time = t
                        self._head_pos = pos
                    if entry is not None:
                        when = t
                        break
                    heapq.heappop(times)
                    del buckets[t]
                    # _release_bucket, inlined: bounded count AND entry cap.
                    if (
                        len(free) < _FREE_BUCKET_LIMIT
                        and len(bucket) <= _FREE_BUCKET_ENTRY_LIMIT
                    ):
                        bucket.clear()
                        free.append(bucket)
                    self._head_time = -1
                if self._instant_dirty and (entry is None or when > self._now):
                    self._run_instant_hooks()
                    continue
                if entry is None:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                if until is not None and when > until:
                    self._now = until
                    break
                self._now = when
                self._head_time = when
                while True:
                    self._head_pos = pos + 1
                    self._pending -= 1
                    self._processed += 1
                    cls = entry.__class__
                    if cls is Event:
                        entry.callback()
                    elif cls is tuple:
                        entry[1]()
                    else:
                        entry()
                    executed += 1
                    if self._stopped or executed >= limit:
                        break
                    pos += 1
                    size = len(bucket)  # callbacks may have appended
                    entry = None
                    while pos < size:
                        e = bucket[pos]
                        if e.__class__ is not Event or not e.cancelled:
                            entry = e
                            break
                        pos += 1
                        self._pending -= 1
                    if entry is None:
                        self._head_pos = pos
                        break
        finally:
            self._running = False
        return executed


__all__ = ["ArenaSimulator"]
