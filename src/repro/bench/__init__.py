"""Reproducible performance benchmarks: ``python -m repro bench``.

The suite establishes the repo's perf trajectory: every PR can run the same
fixed micro/macro cells and compare events/sec, cache hit rates, and the
decided-prefix digest against a checked-in baseline (``BENCH_<date>.json``).
"""

from repro.bench.suite import (
    BENCH_SCHEMA_VERSION,
    check_against_baseline,
    check_backend_equivalence,
    check_gossip_distance,
    default_output_path,
    environment_block,
    run_bench_suite,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "run_bench_suite",
    "check_against_baseline",
    "check_backend_equivalence",
    "check_gossip_distance",
    "default_output_path",
    "environment_block",
]
