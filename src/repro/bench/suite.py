"""The fixed micro/macro benchmark suite behind ``python -m repro bench``.

Micro benches time the hot primitives the perf layer optimised (event loop,
digest cache, size estimation, memo-cache churn, Feldman verification,
message checksums).  Macro cells run whole clusters through the factory —
the good case at the paper's scale and the chaos smoke configuration — and
record events/sec alongside a sha256 digest of every node's decided prefix.
That digest is the bit-determinism oracle: two builds of this repo run the
same cell to the same decided sequence or the comparison fails hard,
independent of how fast the host is.

``check_against_baseline`` compares a fresh report to a checked-in one:
prefix mismatches and invariant violations always fail; throughput only
fails below ``(1 - tolerance)`` of baseline, so slow CI hardware passes
while real regressions do not.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from datetime import date
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

BENCH_SCHEMA_VERSION = 1

#: Relative slowdown vs baseline events/sec that fails the comparison.
DEFAULT_TOLERANCE = 0.30

#: Maximum relative events/sec overhead the observability layer (tracing
#: + metrics on) may show versus the same-report headline cell.
OBSERVABILITY_MAX_OVERHEAD = 0.05

#: Interleaved (observed, plain) repeat pairs for the overhead gate.
#: Shared CI runners drift by tens of percent on second timescales, so
#: the gate estimates overhead twice — median of per-pair events/sec
#: ratios, and ratio of the best events/sec either side reached — and
#: takes the smaller.  Noise inflates the two estimators through
#: different mechanisms (a frequency step mid-pair skews the median;
#: unpaired minima can land in different machine regimes), while a real
#: regression inflates both, so requiring corroboration keeps the gate
#: sensitive without flaking.  A block that still reads over budget is
#: re-measured once: transient runner regimes do not reproduce, genuine
#: regressions do.
OBSERVABILITY_REPEATS = 9

#: Coalescing window used by the ``*_coalesced`` macro cells: long enough
#: to bundle protocol bursts (~2x ratio at n=32) while staying well under
#: the WAN latency grain, so ordering behaviour stays realistic.
COALESCE_BENCH_WINDOW_US = 1000


def default_output_path(directory: str | Path = ".") -> Path:
    """``BENCH_<ISO date>.json`` in ``directory``."""
    return Path(directory) / f"BENCH_{date.today().isoformat()}.json"


# ----------------------------------------------------------------------
# Environment provenance
# ----------------------------------------------------------------------
def _cpu_model() -> Optional[str]:
    """The host CPU model string (Linux), or a platform fallback."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or None


def environment_block() -> Dict[str, Any]:
    """Provenance header for bench reports: two hosts (or two numpy/BLAS
    builds) are not throughput-comparable, so every report records what it
    ran on."""
    env: Dict[str, Any] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu": _cpu_model(),
        "numpy": None,
        "blas": None,
    }
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep in CI
        return env
    env["numpy"] = numpy.__version__
    try:
        cfg = numpy.show_config(mode="dicts")
        blas = (cfg.get("Build Dependencies") or {}).get("blas") or {}
        env["blas"] = blas.get("name") or None
    except (TypeError, AttributeError, ValueError):
        # Older numpy: show_config prints instead of returning dicts.
        pass
    return env


# ----------------------------------------------------------------------
# Micro benches
# ----------------------------------------------------------------------
def _timed(body: Callable[[], int]) -> Dict[str, Any]:
    """Run ``body`` (returns its operation count) under a wall clock."""
    start = time.perf_counter()
    ops = body()
    wall = time.perf_counter() - start
    return {
        "iterations": ops,
        "wall_s": round(wall, 6),
        "ops_per_s": round(ops / wall, 1) if wall > 0 else 0.0,
    }


def _bench_event_loop() -> int:
    """Self-rescheduling timer chains: schedule + heap + bucket dispatch."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    horizon = 1_000_000  # 1 virtual second

    def make_chain(period: int, priority: int):
        def tick() -> None:
            if sim.now + period <= horizon:
                sim.schedule(period, tick, priority=priority)

        return tick

    # Mixed periods/priorities force both the append fast path and the
    # insort slow path, like protocol timers + message deliveries do.
    for i, period in enumerate((7, 11, 13, 17, 19, 23, 29, 31)):
        sim.schedule(period, make_chain(period, priority=i % 3))
    return sim.run(until=horizon)


def _bench_digest_cache() -> int:
    """Repeated hashing of one immutable object: all hits after the first."""
    from repro.core.types import Batch, Transaction
    from repro.crypto.hashing import digest_of

    batch = Batch(
        proposer=1,
        batch_no=7,
        txs=tuple(Transaction(client_id=9, nonce=i) for i in range(10)),
    )
    n = 50_000
    for _ in range(n):
        digest_of(batch)
    return n


def _bench_estimate_size() -> int:
    """Size estimation over a nested protocol-shaped payload."""
    from repro.core.types import Batch, InstanceId, Transaction
    from repro.net.message import estimate_size

    payload = {
        "instance": InstanceId(3, 12),
        "batch": Batch(
            proposer=3,
            batch_no=12,
            txs=tuple(Transaction(client_id=4, nonce=i) for i in range(8)),
        ),
        "shares": [(i, b"\x00" * 17) for i in range(4)],
    }
    n = 20_000
    for _ in range(n):
        estimate_size(payload)
    return n


def _bench_memo_cache_churn() -> int:
    """Insert-heavy workload at the capacity boundary: batch eviction."""
    from repro.crypto.memo import MemoCache

    cache = MemoCache(capacity=1024)
    n = 100_000
    for i in range(n):
        key = i % 4096  # 4x capacity: constant eviction pressure
        if cache.get(key) is None:
            cache.put(key, i)
    return n


def _bench_feldman_verify() -> int:
    """Cached share verification — one cold check then memoized verdicts."""
    import numpy as np

    from repro.crypto.feldman import FeldmanVSS

    vss = FeldmanVSS()
    rng = np.random.default_rng(1)
    shares, commitment = vss.deal(12345, threshold=3, n_shares=4, rng=rng)
    n = 20_000
    for i in range(n):
        vss.verify_share(shares[i % len(shares)], commitment)
    return n


def _bench_message_checksum() -> int:
    """Frame integrity: stamp once, verify many (the broadcast pattern)."""
    from repro.net.message import Message

    msg = Message("bench", payload={"seq": 1, "blob": b"\x00" * 64})
    msg.stamp_checksum()
    n = 100_000
    for _ in range(n):
        msg.verify_checksum()
    return n


def _bench_workload_gen() -> int:
    """Open-loop generation: Poisson arrivals + Zipf bodies, no network."""
    import numpy as np

    from repro.workload.generator import make_body_sampler
    from repro.workload.arrivals import make_arrivals

    n = 20_000
    rng = np.random.default_rng(7)
    arrivals = make_arrivals("poisson", rate_tps=1000.0)
    body = make_body_sampler("kv_zipf", {"keyspace": 100_000, "skew": 1.1}, rng)
    produced = 0
    while produced < n:
        for _ in arrivals.times(rng, 0, 1_000_000):
            body()
            produced += 1
            if produced >= n:
                break
    return produced


_MICRO_BENCHES: Dict[str, Callable[[], int]] = {
    "event_loop": _bench_event_loop,
    "digest_cache_hit": _bench_digest_cache,
    "estimate_size_nested": _bench_estimate_size,
    "memo_cache_churn": _bench_memo_cache_churn,
    "feldman_verify_cached": _bench_feldman_verify,
    "message_checksum_verify": _bench_message_checksum,
    "workload_openloop_gen": _bench_workload_gen,
}


# ----------------------------------------------------------------------
# Macro cells
# ----------------------------------------------------------------------
def prefix_digest(cluster) -> str:
    """sha256 over every node's decided prefix, in pid order.

    This is the suite's bit-determinism oracle: any reordering, loss, or
    extra decision anywhere in the cluster changes the digest.  Delegates
    to :func:`repro.sim.shard.digest_outputs` so single-process and
    sharded runs hash the identical format.
    """
    from repro.sim.shard import digest_outputs

    return digest_outputs(
        {node.pid: node.output_sequence() for node in cluster.nodes}
    )


def _goodcase_config(n: int, duration_ms: int):
    from repro.harness.config import ExperimentConfig
    from repro.sim.engine import MILLISECONDS

    return ExperimentConfig(
        n_nodes=n,
        seed=1,
        batch_size=10,
        clients_per_node=1,
        client_window=5,
        duration_us=duration_ms * MILLISECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )


def _chaos_config():
    """The chaos smoke cell: lossy links plus a crash/recover, over
    reliable channels — the configuration CI's chaos job exercises."""
    from repro.harness.config import ExperimentConfig
    from repro.net.faults import CrashEvent, FaultPlan, LinkFault
    from repro.sim.engine import MILLISECONDS

    plan = FaultPlan(
        links=(LinkFault(drop_rate=0.15, duplicate_rate=0.05, corrupt_rate=0.02),),
        crashes=(
            CrashEvent(
                pid=2,
                crash_at_us=2000 * MILLISECONDS,
                recover_at_us=3000 * MILLISECONDS,
            ),
        ),
    )
    return ExperimentConfig(
        n_nodes=4,
        seed=1,
        batch_size=8,
        clients_per_node=1,
        client_window=4,
        duration_us=5000 * MILLISECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
        fault_plan=plan,
        reliable_channels=True,
    )


def _cache_snapshot(cluster) -> Dict[str, Dict[str, Any]]:
    """Hit/miss counters from every cache layer the run exercised."""
    from repro.crypto import feldman, hashing

    caches: Dict[str, Dict[str, Any]] = {
        "digest": hashing.digest_cache_stats(),
        "feldman_verify": feldman.verify_cache_stats(),
    }
    registry = getattr(cluster, "registry", None)
    if registry is not None and hasattr(registry, "verify_cache_stats"):
        caches["signature_verify"] = registry.verify_cache_stats()
    threshold = getattr(cluster, "threshold", None)
    if threshold is not None and hasattr(threshold, "verify_cache_stats"):
        caches["threshold_verify"] = threshold.verify_cache_stats()
    obf = getattr(cluster, "obf", None)
    if obf is not None and hasattr(obf, "decrypt_cache_stats"):
        caches["vss_decrypt"] = obf.decrypt_cache_stats()
    return caches


def _profile_top(prof, limit: int = 20) -> List[Dict[str, Any]]:
    """The ``limit`` most expensive functions by cumulative time."""
    import pstats

    stats = pstats.Stats(prof)
    rows: List[Dict[str, Any]] = []
    ranked = sorted(stats.stats.items(), key=lambda kv: kv[1][3], reverse=True)
    for (filename, lineno, funcname), (_cc, ncalls, tottime, cumtime, _callers) in ranked[
        :limit
    ]:
        short = filename
        marker = "/repro/"
        if marker in short:
            short = "repro/" + short.split(marker, 1)[1]
        rows.append(
            {
                "function": f"{short}:{lineno}({funcname})",
                "ncalls": ncalls,
                "tottime_s": round(tottime, 4),
                "cumtime_s": round(cumtime, 4),
            }
        )
    return rows


def _run_macro_cell(
    name: str, config, *, protocol: str = "lyra", profile: bool = False
) -> Dict[str, Any]:
    from repro.harness.factory import build_cluster

    cluster = build_cluster(config, protocol=protocol)
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    start = time.perf_counter()
    result = cluster.run()
    wall = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
    events = result.events_processed
    # events/sec is a hot-path throughput measure: divide by the event
    # loop's own wall time, not the full run() (which also consolidates
    # results — one-off reporting such as the metrics snapshot would
    # otherwise pollute the observability overhead gate).
    loop_wall = result.sim_wall_s or wall
    cell = {
        "n": config.n_nodes,
        "seed": config.seed,
        "backend": config.backend,
        "duration_ms": config.duration_us // 1000,
        "events": events,
        "wall_s": round(wall, 3),
        "events_per_s": round(events / loop_wall, 1) if loop_wall > 0 else 0.0,
        "committed": result.committed_count,
        "executed_total": result.executed_total,
        "throughput_tps": round(result.throughput_tps, 1),
        "avg_latency_ms": round(result.avg_latency_ms, 2),
        "p99_latency_ms": round(result.p99_latency_us / 1000.0, 2),
        "messages_delivered": result.messages_delivered,
        "safety_violation": result.safety_violation,
        "invariant_violations": list(result.invariant_violations),
        "prefix_sha256": prefix_digest(cluster),
        "caches": _cache_snapshot(cluster),
    }
    wire = result.wire_stats
    if "frames_sent" in wire:
        cell["coalesced"] = True
        cell["frames_sent"] = wire["frames_sent"]
        cell["wire_messages_sent"] = wire["messages_sent"]
        cell["coalescing_ratio"] = wire["coalescing_ratio"]
    if config.dissemination != "all2all":
        cell["dissemination"] = config.dissemination
        cell["fanout"] = config.fanout
        if "dissemination" in wire:
            cell["dissemination_stats"] = wire["dissemination"]
    if config.distance_mode != "probe":
        cell["distance_mode"] = config.distance_mode
        cell["gossip_fanout"] = config.gossip_fanout
        cell["gossip_rounds"] = config.gossip_rounds
        if "gossip_distance" in wire:
            cell["gossip_distance"] = wire["gossip_distance"]
        if "distance_error" in wire:
            cell["distance_error"] = wire["distance_error"]
    if profiler is not None:
        # Profiled cells carry instrumentation overhead: their events/sec
        # is not baseline-comparable and the checker skips it.
        cell["profiled"] = True
        cell["profile_top"] = _profile_top(profiler)
    return cell


def _run_sharded_cell(name: str, config, n_shards: int) -> Dict[str, Any]:
    """Run one macro cell through the partitioned core (``repro.sim.shard``).

    The cell dict mirrors ``_run_macro_cell`` so ``check_against_baseline``
    compares it like any other cell; ``check_sharding`` additionally gates
    its decided-prefix digest against the single-process base cell in the
    same report (bit-identical or fail).

    ``events_per_s`` is the *critical-path* event rate: total events over
    the slowest worker's event-loop CPU seconds — the rate a host with
    one core per shard sustains.  On such a host it converges with the
    coordinator-wall rate (recorded separately as ``events_per_s_wall``);
    on an oversubscribed host the wall rate collapses to time-slicing
    while the critical-path rate still measures the partitioning itself.
    """
    from repro.sim.shard import run_sharded

    start = time.perf_counter()
    run = run_sharded(config, n_shards)
    wall = time.perf_counter() - start
    result = run.result
    events = result.events_processed
    critical_path = max(run.worker_loop_cpu_s, default=0.0)
    loop_wall = critical_path or result.sim_wall_s or wall
    cell = {
        "n": config.n_nodes,
        "seed": config.seed,
        "backend": config.backend,
        "duration_ms": config.duration_us // 1000,
        "events": events,
        "wall_s": round(wall, 3),
        "events_per_s": round(events / loop_wall, 1) if loop_wall > 0 else 0.0,
        "committed": result.committed_count,
        "executed_total": result.executed_total,
        "throughput_tps": round(result.throughput_tps, 1),
        "avg_latency_ms": round(result.avg_latency_ms, 2),
        "p99_latency_ms": round(result.p99_latency_us / 1000.0, 2),
        "messages_delivered": result.messages_delivered,
        "safety_violation": result.safety_violation,
        "invariant_violations": list(result.invariant_violations),
        "prefix_sha256": run.digest(),
        "caches": {},  # per-worker caches stay in the workers
        "shards": run.plan.n_shards,
        "epoch_us": run.plan.epoch_us,
        "barriers": run.barriers,
        "frames_exchanged": run.frames_exchanged,
        "events_per_s_basis": "critical_path",
        "events_per_s_wall": (
            round(events / (result.sim_wall_s or wall), 1)
            if (result.sim_wall_s or wall) > 0
            else 0.0
        ),
        "worker_loop_cpu_s": list(run.worker_loop_cpu_s),
    }
    wire = result.wire_stats
    if "frames_sent" in wire:
        cell["coalesced"] = True
        cell["frames_sent"] = wire["frames_sent"]
        cell["wire_messages_sent"] = wire["messages_sent"]
        cell["coalescing_ratio"] = wire["coalescing_ratio"]
    if config.dissemination != "all2all":
        cell["dissemination"] = config.dissemination
        cell["fanout"] = config.fanout
        if "dissemination" in wire:
            cell["dissemination_stats"] = wire["dissemination"]
    return cell


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_bench_suite(
    *,
    quick: bool = False,
    macro_n: Optional[int] = None,
    macro_duration_ms: Optional[int] = None,
    coalesce: bool = False,
    observability: bool = False,
    backend: str = "python",
    backend_twins: bool = False,
    shards: int = 1,
    dissemination: Optional[str] = None,
    fanout: int = 8,
    gossip_distance: bool = False,
    gossip_round_budgets: Sequence[int] = (2, 6),
    gossip_fanout: int = 3,
    profile: bool = False,
    progress: Optional[Callable[[str], None]] = print,
) -> Dict[str, Any]:
    """Run the full suite and return the report dict.

    ``quick`` swaps the n=32 headline cell for a small one (CI smoke);
    ``macro_n``/``macro_duration_ms`` override the headline cell's shape
    (the prefix digest is then only comparable to baselines with the same
    shape — ``check_against_baseline`` checks that before comparing).
    ``coalesce`` adds ``*_coalesced`` variants of the macro cells (wire
    coalescing + delta piggybacks on); the classic cells still run, so a
    coalescing report remains digest-comparable on the compat path.
    ``observability`` adds an ``*_observed`` headline variant with span
    tracing and the metrics registry enabled — ``check_observability``
    then gates its cost (<5% events/sec overhead, identical digest).
    ``backend`` runs every macro cell on that simulation backend;
    ``backend_twins`` re-runs each macro cell on the *other* backend as a
    ``<cell>_<backend>`` twin — ``check_backend_equivalence`` then fails
    on any decided-prefix digest divergence between the pair.
    ``shards`` > 1 re-runs the scaling cell (``goodcase_n100`` in full
    mode, the headline cell in quick mode) through the partitioned core
    as a ``<cell>_sharded`` twin with that many worker processes; the
    twin records ``speedup_vs_single`` against the same-report base cell
    and ``check_sharding`` gates digest equality between the pair.
    ``dissemination`` ("tree"/"gossip") adds a ``<cell>_<strategy>`` twin
    of the headline (and n=100, when present) cell with that broadcast
    strategy and the given ``fanout`` — ``check_dissemination`` then
    requires a degenerate tree (fanout >= n-1) to reproduce the all2all
    digest exactly.
    ``gossip_distance`` adds a ``<headline>_gdist<r>`` twin per round
    budget in ``gossip_round_budgets``, running warm-up distance
    estimation through the epidemic gossip estimator
    (``distance_mode="gossip"``) instead of all-to-all probes —
    ``check_gossip_distance`` then gates safety, full convergence at the
    largest budget, and the O(n·fanout) wire bound (no node requests
    more than ``gossip_fanout`` peers in any round).
    ``profile`` wraps each macro cell in cProfile and attaches the top-20
    cumulative functions (``profile_top``); profiled events/sec carries
    instrumentation overhead and is excluded from baseline comparison.
    """
    import dataclasses

    say = progress or (lambda _msg: None)
    suite_start = time.perf_counter()

    micro: Dict[str, Dict[str, Any]] = {}
    for name, body in _MICRO_BENCHES.items():
        say(f"micro: {name} ...")
        micro[name] = _timed(body)

    macro: Dict[str, Dict[str, Any]] = {}
    if quick:
        headline = "goodcase_n4"
        cfg = _goodcase_config(macro_n or 4, macro_duration_ms or 1500)
    else:
        headline = "goodcase_n32"
        cfg = _goodcase_config(macro_n or 32, macro_duration_ms or 3000)
    cfg = dataclasses.replace(cfg, backend=backend)

    cells: List[Tuple[str, Any]] = [(headline, cfg)]
    cells.append(
        ("chaos_smoke", dataclasses.replace(_chaos_config(), backend=backend))
    )
    if not quick:
        # The scaling oracle: ten times the paper's n, long enough for the
        # pipeline to fill.  Its digest is checked in like every other
        # cell's, so both backends (and future builds) must reproduce the
        # n=100 schedule bit-for-bit.
        cells.append(
            (
                "goodcase_n100",
                dataclasses.replace(_goodcase_config(100, 1000), backend=backend),
            )
        )
    if coalesce:
        for name, base_cfg in list(cells):
            if name == "goodcase_n100":
                continue
            cells.append(
                (
                    f"{name}_coalesced",
                    dataclasses.replace(
                        base_cfg,
                        coalesce=True,
                        coalesce_window_us=COALESCE_BENCH_WINDOW_US,
                    ),
                )
            )
    if dissemination and dissemination != "all2all":
        for name, base_cfg in list(cells):
            if name not in (headline, "goodcase_n100"):
                continue
            cells.append(
                (
                    f"{name}_{dissemination}",
                    dataclasses.replace(
                        base_cfg, dissemination=dissemination, fanout=fanout
                    ),
                )
            )
    if gossip_distance:
        # Gossip-distance twins of the headline cell, one per warm-up
        # round budget: the sweep shows how fast the epidemic estimator
        # buys back the probe path's accuracy while never costing more
        # than n·fanout messages per round.
        for rounds in gossip_round_budgets:
            cells.append(
                (
                    f"{headline}_gdist{rounds}",
                    dataclasses.replace(
                        cfg,
                        distance_mode="gossip",
                        gossip_fanout=gossip_fanout,
                        gossip_rounds=rounds,
                    ),
                )
            )
    for name, cell_cfg in cells:
        say(
            f"macro: {name} (n={cell_cfg.n_nodes}, "
            f"{cell_cfg.duration_us // 1000} ms, {cell_cfg.backend}) ..."
        )
        macro[name] = _run_macro_cell(name, cell_cfg, profile=profile)
    if shards > 1:
        # The sharded twin of the scaling cell: same configuration, run
        # through the partitioned core.  Its digest must equal the
        # single-process cell's (check_sharding); its speedup is the
        # headline number the partitioned core exists for.
        target = "goodcase_n100" if "goodcase_n100" in macro else headline
        target_cfg = dict(cells)[target]
        sname = f"{target}_sharded"
        say(f"macro: {sname} ({shards} shard workers) ...")
        scell = _run_sharded_cell(sname, target_cfg, shards)
        base_eps = macro[target].get("events_per_s", 0.0)
        if base_eps:
            scell["speedup_vs_single"] = round(
                scell["events_per_s"] / base_eps, 2
            )
        macro[sname] = scell
    if backend_twins:
        twin = "vector" if backend == "python" else "python"
        for name, cell_cfg in cells:
            tname = f"{name}_{twin}"
            say(f"macro: {tname} (backend twin) ...")
            macro[tname] = _run_macro_cell(
                tname, dataclasses.replace(cell_cfg, backend=twin), profile=profile
            )
    if observability:
        oname = f"{headline}_observed"
        say(f"macro: {oname} (tracing + metrics on) ...")
        ocfg = dataclasses.replace(cfg, tracing=True, metrics=True)
        # Same shape as the headline cell, so the decided-prefix digests
        # are directly comparable — the "observability is read-only" oracle.
        obs_cell = _run_macro_cell(oname, ocfg)
        # Overhead estimate: interleaved (observed, plain) runs in ABBA
        # order.  Two robust estimators of the same quantity — median of
        # per-pair events/sec ratios, and the ratio of the best
        # events/sec either side reached — and the gate records the
        # smaller (see OBSERVABILITY_REPEATS).  Quick cells are
        # stretched to a few seconds of virtual time so one sample is a
        # throughput measure, not scheduler noise.
        pair_cfg = (
            dataclasses.replace(cfg, duration_us=max(cfg.duration_us, 10_000_000))
            if quick
            else cfg
        )
        pair_ocfg = dataclasses.replace(pair_cfg, tracing=True, metrics=True)
        say(
            f"macro: {oname} overhead gate "
            f"({OBSERVABILITY_REPEATS} ABBA pairs, "
            f"{pair_cfg.duration_us // 1000} ms each) ..."
        )

        def _overhead_block() -> Optional[Tuple[float, float]]:
            ratios: List[float] = []
            best_plain = 0.0
            best_obs = 0.0
            for rep in range(OBSERVABILITY_REPEATS):
                if rep % 2 == 0:
                    o = _run_macro_cell(oname, pair_ocfg)
                    p = _run_macro_cell(headline, pair_cfg)
                else:
                    p = _run_macro_cell(headline, pair_cfg)
                    o = _run_macro_cell(oname, pair_ocfg)
                best_plain = max(best_plain, p["events_per_s"])
                best_obs = max(best_obs, o["events_per_s"])
                if p["events_per_s"] > 0:
                    ratios.append(o["events_per_s"] / p["events_per_s"])
            if not ratios or best_plain <= 0:
                return None
            ratios.sort()
            median_est = 1.0 - ratios[len(ratios) // 2]
            best_est = 1.0 - best_obs / best_plain
            return (median_est, best_est)

        block = _overhead_block()
        if block is not None and min(block) > OBSERVABILITY_MAX_OVERHEAD:
            # A shared runner can sit in a slow regime for the whole
            # block; a transient regime does not reproduce, a genuine
            # regression does, so re-measure once and keep the smaller
            # reading.
            say(f"macro: {oname} overhead above budget, re-measuring ...")
            retry = _overhead_block()
            if retry is not None and min(retry) < min(block):
                block = retry
        if block is not None:
            median_est, best_est = block
            obs_cell["overhead_median_pairs"] = round(median_est, 4)
            obs_cell["overhead_best_pairs"] = round(best_est, 4)
            obs_cell["overhead_vs_plain"] = round(min(median_est, best_est), 4)
        macro[oname] = obs_cell

    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "generated": date.today().isoformat(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "environment": environment_block(),
        "quick": quick,
        "backend": backend,
        "headline": headline,
        "suite_wall_s": round(time.perf_counter() - suite_start, 3),
        "micro": micro,
        "macro": macro,
        "caches": macro[headline]["caches"],
    }
    return report


def write_report(report: Dict[str, Any], out_path: str | Path) -> Path:
    path = Path(out_path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
def _cell_shape(cell: Dict[str, Any]) -> tuple:
    return (
        cell.get("n"),
        cell.get("seed"),
        cell.get("duration_ms"),
        bool(cell.get("coalesced")),
    )


def check_backend_equivalence(report: Dict[str, Any]) -> List[str]:
    """Cross-backend determinism gate within one report.

    ``run_bench_suite(backend_twins=True)`` runs every macro cell on both
    backends; the ``<cell>_python``/``<cell>_vector`` twin must reproduce
    the base cell's decided-prefix digest and event count exactly.
    Returns failure strings (empty = both backends ran bit-identically).
    """
    failures: List[str] = []
    macro = report.get("macro", {})
    pairs = 0
    for name, twin_cell in macro.items():
        for suffix in ("_python", "_vector"):
            if not name.endswith(suffix):
                continue
            base = macro.get(name[: -len(suffix)])
            if base is None:
                continue
            pairs += 1
            if twin_cell.get("prefix_sha256") != base.get("prefix_sha256"):
                failures.append(
                    f"{name}: decided-prefix digest "
                    f"{twin_cell.get('prefix_sha256')} != "
                    f"{base.get('backend', 'base')} cell "
                    f"{base.get('prefix_sha256')} (backend divergence)"
                )
            if twin_cell.get("events") != base.get("events"):
                failures.append(
                    f"{name}: {twin_cell.get('events')} events != "
                    f"{base.get('events')} on the "
                    f"{base.get('backend', 'base')} backend"
                )
    if pairs == 0:
        failures.append(
            "report has no backend twin cells "
            "(run the suite with backend_twins=True)"
        )
    return failures


def check_sharding(report: Dict[str, Any]) -> List[str]:
    """Partitioned-core determinism gate within one report.

    ``run_bench_suite(shards=N)`` re-runs the scaling cell through
    ``repro.sim.shard`` as a ``<cell>_sharded`` twin; the decided-prefix
    digest and event count must match the single-process base cell
    exactly — the sharded core is an execution strategy, never a
    semantics change.  Returns failure strings (empty = bit-identical).
    """
    failures: List[str] = []
    macro = report.get("macro", {})
    pairs = 0
    for name, twin in macro.items():
        if not name.endswith("_sharded"):
            continue
        base = macro.get(name[: -len("_sharded")])
        if base is None:
            continue
        pairs += 1
        if twin.get("prefix_sha256") != base.get("prefix_sha256"):
            failures.append(
                f"{name}: decided-prefix digest {twin.get('prefix_sha256')} "
                f"!= single-process cell {base.get('prefix_sha256')} "
                f"({twin.get('shards')}-shard divergence)"
            )
        # events_processed IS compared: remote clients are neutered with
        # their timer chains cancelled, and the coordinator subtracts the
        # duplicate per-worker watchdog tick chains at merge time, so the
        # sharded count must equal the single-process one exactly.
        for key in ("events", "committed", "executed_total"):
            if twin.get(key) != base.get(key):
                failures.append(
                    f"{name}: {key} {twin.get(key)} != "
                    f"single-process {base.get(key)}"
                )
    if pairs == 0:
        failures.append(
            "report has no sharded twin cells (run the suite with shards=N)"
        )
    return failures


def check_dissemination(report: Dict[str, Any]) -> List[str]:
    """Dissemination-strategy gates within one report.

    Every ``<cell>_<strategy>`` twin must stay safe (no invariant or
    safety violations — gossip reroutes traffic but may never reorder a
    decided prefix into unsafety).  A *degenerate tree* twin — fanout
    >= n-1, so every relay is a direct send — must additionally
    reproduce the base cell's all2all digest bit-for-bit; that is the
    oracle CI pins at n=4.
    """
    failures: List[str] = []
    macro = report.get("macro", {})
    pairs = 0
    for name, twin in macro.items():
        strategy = twin.get("dissemination")
        if not strategy:
            continue
        base = macro.get(name[: -(len(strategy) + 1)])
        if base is None or not name.endswith(f"_{strategy}"):
            continue
        pairs += 1
        if twin.get("safety_violation") or twin.get("invariant_violations"):
            failures.append(
                f"{name}: {strategy} dissemination broke safety: "
                f"{twin.get('safety_violation') or twin.get('invariant_violations')}"
            )
        degenerate = (
            strategy == "tree"
            and twin.get("fanout", 0) >= twin.get("n", 0) - 1
        )
        if degenerate and twin.get("prefix_sha256") != base.get("prefix_sha256"):
            failures.append(
                f"{name}: degenerate tree (fanout {twin.get('fanout')} >= "
                f"n-1) digest {twin.get('prefix_sha256')} != all2all cell "
                f"{base.get('prefix_sha256')}"
            )
    if pairs == 0:
        failures.append(
            "report has no dissemination twin cells "
            "(run the suite with dissemination='tree'/'gossip')"
        )
    return failures


def check_gossip_distance(report: Dict[str, Any]) -> List[str]:
    """Gossip distance-estimation gates within one report.

    Every ``*_gdist<r>`` twin must stay safe and must respect the
    O(n·fanout) wire bound: the per-node wire accounting's
    ``max_requests_per_round`` can never exceed ``gossip_fanout`` (a
    node that probed more peers than its fan-out in any round would be
    doing hidden all-to-all work).  The twin with the *largest* round
    budget must additionally reach full convergence — every node's
    estimator covering all n-1 peers — because that is the budget the
    default configuration ships with.
    """
    failures: List[str] = []
    twins = [
        (name, cell)
        for name, cell in report.get("macro", {}).items()
        if cell.get("distance_mode") == "gossip"
    ]
    if not twins:
        return [
            "report has no gossip-distance twin cells "
            "(run the suite with gossip_distance=True)"
        ]
    for name, cell in twins:
        if cell.get("safety_violation") or cell.get("invariant_violations"):
            failures.append(
                f"{name}: gossip distance estimation broke safety: "
                f"{cell.get('safety_violation') or cell.get('invariant_violations')}"
            )
        stats = cell.get("gossip_distance")
        if not stats:
            failures.append(f"{name}: cell carries no gossip wire stats")
            continue
        fanout = cell.get("gossip_fanout", 0)
        if stats.get("max_requests_per_round", 0) > fanout:
            failures.append(
                f"{name}: a node sent {stats['max_requests_per_round']} "
                f"gossip requests in one round, above fanout {fanout} "
                f"(O(n*fanout) bound violated)"
            )
    best_name, best = max(twins, key=lambda nc: nc[1].get("gossip_rounds", 0))
    stats = best.get("gossip_distance") or {}
    n = best.get("n", 0)
    if stats and stats.get("converged_nodes", 0) < n:
        failures.append(
            f"{best_name}: only {stats.get('converged_nodes', 0)}/{n} nodes "
            f"converged within {best.get('gossip_rounds')} gossip rounds"
        )
    return failures


def check_against_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Return a list of failure strings (empty means the report passes).

    Hard failures (hardware-independent): a macro cell's decided-prefix
    digest differs from baseline for the same cell shape, any invariant or
    safety violation.  Soft failure: macro events/sec below
    ``baseline * (1 - tolerance)``.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")
    failures: List[str] = []
    base_macro = baseline.get("macro", {})
    for name, cell in current.get("macro", {}).items():
        if cell.get("safety_violation"):
            failures.append(f"{name}: safety violation: {cell['safety_violation']}")
        if cell.get("invariant_violations"):
            failures.append(
                f"{name}: {len(cell['invariant_violations'])} invariant "
                f"violation(s): {cell['invariant_violations'][0]}"
            )
        base = base_macro.get(name)
        if base is None:
            continue
        if _cell_shape(base) != _cell_shape(cell):
            failures.append(
                f"{name}: cell shape {_cell_shape(cell)} does not match "
                f"baseline shape {_cell_shape(base)}; not comparable"
            )
            continue
        if base.get("prefix_sha256") and cell.get("prefix_sha256") != base["prefix_sha256"]:
            failures.append(
                f"{name}: decided-prefix digest {cell.get('prefix_sha256')} "
                f"!= baseline {base['prefix_sha256']} (determinism regression)"
            )
        base_eps = base.get("events_per_s", 0.0)
        if base_eps and not cell.get("profiled"):
            floor = base_eps * (1.0 - tolerance)
            if cell.get("events_per_s", 0.0) < floor:
                failures.append(
                    f"{name}: {cell.get('events_per_s')} events/s is below "
                    f"{floor:.1f} ({(1 - tolerance) * 100:.0f}% of baseline "
                    f"{base_eps})"
                )
    return failures


def check_observability(
    report: Dict[str, Any],
    *,
    max_overhead: float = OBSERVABILITY_MAX_OVERHEAD,
) -> List[str]:
    """Gate the observability layer's cost within one report.

    The ``<headline>_observed`` cell ran the same configuration as the
    headline cell with tracing + metrics on, back to back in the same
    process — so the comparison is hardware-independent.  Failures:
    decided-prefix digest drift (observability perturbed the run) or
    events/sec more than ``max_overhead`` below the headline cell.
    """
    failures: List[str] = []
    headline = report.get("headline")
    macro = report.get("macro", {})
    base = macro.get(headline)
    obs = macro.get(f"{headline}_observed")
    if base is None or obs is None:
        return [f"report has no {headline} + {headline}_observed cell pair"]
    if obs.get("prefix_sha256") != base.get("prefix_sha256"):
        failures.append(
            f"{headline}_observed: decided-prefix digest "
            f"{obs.get('prefix_sha256')} != plain cell "
            f"{base.get('prefix_sha256')} (observability perturbed the run)"
        )
    # Prefer the paired estimate (smaller of the pair-median and
    # best-throughput estimators over interleaved repeat pairs, recorded
    # by run_bench_suite) — it cancels CPU frequency drift that a
    # single-sample comparison of tens-of-milliseconds cells cannot.
    overhead = obs.get("overhead_vs_plain")
    if overhead is not None:
        if overhead > max_overhead:
            failures.append(
                f"{headline}_observed: {overhead * 100:.1f}% paired "
                f"overhead exceeds the {max_overhead * 100:.0f}% budget"
            )
        return failures
    base_eps = base.get("events_per_s", 0.0)
    if base_eps:
        floor = base_eps * (1.0 - max_overhead)
        obs_eps = obs.get("events_per_s", 0.0)
        if obs_eps < floor:
            failures.append(
                f"{headline}_observed: {obs_eps} events/s is below {floor:.1f} "
                f"(> {max_overhead * 100:.0f}% observability overhead vs "
                f"{base_eps})"
            )
    return failures


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "OBSERVABILITY_MAX_OVERHEAD",
    "OBSERVABILITY_REPEATS",
    "check_observability",
    "check_backend_equivalence",
    "check_sharding",
    "check_dissemination",
    "COALESCE_BENCH_WINDOW_US",
    "environment_block",
    "run_bench_suite",
    "write_report",
    "check_against_baseline",
    "default_output_path",
    "prefix_digest",
]
