"""Vanilla DBFT binary Byzantine agreement (Crain, Gramoli, Larrea &
Raynal [8], building on Mostéfaoui, Moumen & Raynal [25]).

This is the *unmodified* primitive that Lyra's Algorithm 3 derives from:
every process holds its own binary input and they agree on one of them.
Unlike Lyra's variant there is no broadcaster, no associated message, and
no validation function — round 1 uses plain Binary Value Broadcast like
every other round.

Kept in the repository for three reasons: it documents exactly what
Lyra's VVB substitution changes; it provides an independently tested
binary-agreement building block; and its agreement/validity/termination
tests double as a regression harness for the shared round machinery.

Properties (for f < n/3 after GST):

- **BBC-Validity**: the decided value was the input of some correct
  process (plain BV-broadcast justification).
- **BBC-Agreement**: no two correct processes decide differently.
- **BBC-Termination**: every correct process decides.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional, Set

from repro.core.bv_broadcast import BinaryValueBroadcast
from repro.core.services import ProtocolServices

BA_BV_KIND = "dbft.bv"
BA_COORD_KIND = "dbft.coord"
BA_AUX_KIND = "dbft.aux"

DEFAULT_MAX_ROUNDS = 64


class BinaryAgreement:
    """One binary-agreement instance at one process.

    ``propose(b)`` starts the protocol with input ``b``; ``on_decide(v)``
    fires exactly once.  Message payloads carry ``iid`` so several
    instances can multiplex one node.
    """

    def __init__(
        self,
        services: ProtocolServices,
        iid: Any,
        *,
        on_decide: Callable[[int], None],
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        self.services = services
        self.iid = iid
        self._on_decide = on_decide
        self.max_rounds = max_rounds

        self.round = 0
        self.est: Optional[int] = None
        self.decided: Optional[int] = None
        self.decided_round: Optional[int] = None
        self.closed = False

        self._bv: Dict[int, BinaryValueBroadcast] = {}
        self._vvals: Dict[int, Set[int]] = {}
        self._aux: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self._coord: Dict[int, int] = {}
        self._coord_sent: Set[int] = set()
        self._timer_expired: Set[int] = set()
        self._aux_sent: Set[int] = set()
        self._advanced: Set[int] = set()

    # ------------------------------------------------------------------
    def propose(self, b: int) -> None:
        if b not in (0, 1):
            raise ValueError("binary agreement takes inputs 0 or 1")
        if self.est is not None:
            return
        self.est = b
        self._start_round(1)

    # ------------------------------------------------------------------
    def _bv_for(self, r: int) -> BinaryValueBroadcast:
        bv = self._bv.get(r)
        if bv is None:
            bv = BinaryValueBroadcast(
                _KindAdapter(self.services), self.iid, r,
                lambda b, r=r: self._deliver(r, b),
            )
            self._bv[r] = bv
        return bv

    def _start_round(self, r: int) -> None:
        self.round = r
        if self.est in (0, 1):
            self._bv_for(r).broadcast_estimate(self.est)
        assert self.services.timers is not None
        self.services.timers.set(
            f"dbftba-{self.iid}-r{r}",
            self.services.delta_us,
            lambda: self._timer(r),
        )
        self._maybe_aux(r)
        self._try_complete(r)

    def _timer(self, r: int) -> None:
        self._timer_expired.add(r)
        self._maybe_aux(r)

    def _deliver(self, r: int, b: int) -> None:
        if self.closed:
            return
        vvals = self._vvals.setdefault(r, set())
        if b in vvals:
            return
        vvals.add(b)
        if (
            self.services.pid == r % self.services.n
            and r not in self._coord_sent
        ):
            self._coord_sent.add(r)
            self.services.broadcast(
                BA_COORD_KIND, {"iid": self.iid, "round": r, "w": b}, 10
            )
        self._maybe_aux(r)
        self._try_complete(r)

    def _maybe_aux(self, r: int) -> None:
        if self.closed or r != self.round or r in self._aux_sent:
            return
        vvals = self._vvals.get(r, set())
        if not vvals or r not in self._timer_expired:
            return
        c = self._coord.get(r)
        e = frozenset({c}) if c is not None and c in vvals else frozenset(vvals)
        self._aux_sent.add(r)
        self.services.broadcast(
            BA_AUX_KIND,
            {"iid": self.iid, "round": r, "e": tuple(sorted(e))},
            10 + 2 * len(e),
        )
        self._try_complete(r)

    def _try_complete(self, r: int) -> None:
        if self.closed or r != self.round or r in self._advanced:
            return
        if r not in self._aux_sent:
            return
        vvals = self._vvals.get(r, set())
        bucket = self._aux.get(r, {})
        eligible = {s: e for s, e in bucket.items() if e <= vvals}
        if len(eligible) < self.services.quorum:
            return
        s: Optional[FrozenSet[int]] = None
        for v in (1, 0):
            if (
                sum(1 for e in eligible.values() if e == frozenset({v}))
                >= self.services.quorum
            ):
                s = frozenset({v})
                break
        if s is None:
            union: Set[int] = set()
            for e in eligible.values():
                union |= e
            s = frozenset(union)
        if len(s) == 1:
            (v,) = s
            self.est = v
            if v == r % 2 and self.decided is None:
                self.decided = v
                self.decided_round = r
                self._on_decide(v)
        else:
            self.est = r % 2
        self._advanced.add(r)
        if self.decided_round is not None and r >= self.decided_round + 2:
            self.close()
            return
        if r + 1 > self.max_rounds:
            self.close()
            return
        self._start_round(r + 1)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_bv(self, payload: dict, sender: int) -> None:
        r = payload.get("round", 0)
        if isinstance(r, int) and 1 <= r <= self.max_rounds:
            self._bv_for(r).on_vote(payload.get("b"), sender)

    def on_coord(self, payload: dict, sender: int) -> None:
        r = payload.get("round", 0)
        w = payload.get("w")
        if not isinstance(r, int) or w not in (0, 1):
            return
        if sender != r % self.services.n or r in self._coord:
            return
        self._coord[r] = w
        self._maybe_aux(r)

    def on_aux(self, payload: dict, sender: int) -> None:
        r = payload.get("round", 0)
        e = payload.get("e")
        if not isinstance(r, int) or not isinstance(e, (tuple, list)):
            return
        eset = frozenset(v for v in e if v in (0, 1))
        if not eset:
            return
        bucket = self._aux.setdefault(r, {})
        if sender not in bucket:
            bucket[sender] = eset
            self._try_complete(r)

    def handle(self, kind: str, payload: dict, sender: int) -> bool:
        if kind == BA_BV_KIND:
            self.on_bv(payload, sender)
        elif kind == BA_COORD_KIND:
            self.on_coord(payload, sender)
        elif kind == BA_AUX_KIND:
            self.on_aux(payload, sender)
        else:
            return False
        return True

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        assert self.services.timers is not None
        for r in range(1, self.round + 1):
            self.services.timers.cancel(f"dbftba-{self.iid}-r{r}")


class _KindAdapter:
    """Re-tags BinaryValueBroadcast's ``lyra.bv`` messages as ``dbft.bv``
    so vanilla agreement traffic does not collide with Lyra instances on
    the same node."""

    def __init__(self, services: ProtocolServices) -> None:
        self._services = services
        self.pid = services.pid
        self.n = services.n
        self.f = services.f
        self.quorum = services.quorum
        self.small_quorum = services.small_quorum

    def broadcast(self, kind: str, payload, size: int = 0) -> None:
        self._services.broadcast(BA_BV_KIND, payload, size)


__all__ = [
    "BinaryAgreement",
    "BA_BV_KIND",
    "BA_COORD_KIND",
    "BA_AUX_KIND",
]
