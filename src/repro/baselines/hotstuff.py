"""HotStuff [30]: leader-based three-phase BFT consensus.

This is the consensus substrate under Pompē.  One leader per view drives
three phases per height — PREPARE, PRECOMMIT, COMMIT — each closed by a
quorum certificate (QC) of 2f+1 threshold-signature shares, followed by a
DECIDE broadcast.  Heights are pipelined (the leader keeps up to
``max_inflight`` heights running), which is what gives HotStuff its
throughput on real deployments.

View changes: replicas arm a view timer; if a view makes no progress, they
broadcast VIEWCHANGE votes, and 2f+1 of them move everyone to the next
view whose leader is ``view mod n``.  Payloads from abandoned heights are
re-submitted by their originators (duplicate execution is prevented by
payload-id dedup at the execution layer) — a simplification of HotStuff's
lockedQC machinery that preserves the behaviours our experiments exercise:
leader bottleneck, leader crash recovery, and leader censorship.

The participant is payload-agnostic: Pompē feeds it ordering certificates,
and tests feed it opaque blobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.services import ProtocolServices
from repro.crypto.hashing import digest_of
from repro.crypto.threshold import SignatureShare, ThresholdError, ThresholdSignature

PROPOSE_KIND = "hs.propose"
VOTE_KIND = "hs.vote"  # payload carries the phase
PHASE_KIND = "hs.phase"  # PRECOMMIT / COMMIT / DECIDE broadcasts with a QC
VIEWCHANGE_KIND = "hs.viewchange"

PHASES = ("prepare", "precommit", "commit")


@dataclass(frozen=True)
class Block:
    """One pipelined proposal."""

    view: int
    height: int
    payloads: Tuple[Any, ...]
    watermark: int  # execution stability watermark (set by the leader)
    digest: bytes

    @classmethod
    def build(
        cls, view: int, height: int, payloads: Sequence[Any], watermark: int
    ) -> "Block":
        payload_ids = tuple(
            getattr(p, "payload_id", None) or digest_of(repr(p)) for p in payloads
        )
        digest = digest_of((view, height, payload_ids, watermark))
        return cls(view, height, tuple(payloads), watermark, digest)

    def wire_size(self) -> int:
        return 32 + 16 + sum(
            int(p.wire_size() if hasattr(p, "wire_size") else 64)
            for p in self.payloads
        )

    def canonical(self) -> tuple:
        return (self.view, self.height, self.digest)


@dataclass(frozen=True)
class QuorumCert:
    """A phase QC: 2f+1 combined shares over (block digest, phase)."""

    block_digest: bytes
    phase: str
    signature: ThresholdSignature

    def wire_size(self) -> int:
        return 32 + 8 + self.signature.wire_size()


def _vote_digest(block_digest: bytes, phase: str) -> bytes:
    return digest_of((block_digest, phase))


class HotStuffParticipant:
    """One replica's HotStuff endpoint (leader duties included).

    Callbacks:
    - ``on_decide(block)`` — the block is final; execute its payloads.
    - ``report_clock()`` — returns this replica's clock, piggybacked on
      votes so the leader can compute execution watermarks (Pompē).
    """

    def __init__(
        self,
        services: ProtocolServices,
        *,
        on_decide: Callable[[Block], None],
        report_clock: Optional[Callable[[], int]] = None,
        max_inflight: int = 8,
        view_timeout_us: Optional[int] = None,
        batch_certs: int = 4,
        on_stale: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.services = services
        self.on_decide = on_decide
        self.on_stale = on_stale
        self.report_clock = report_clock or (lambda: 0)
        self.max_inflight = max_inflight
        self.view_timeout_us = view_timeout_us or 8 * services.delta_us
        self.batch_certs = batch_certs

        self.view = 0
        self.next_height = 0
        self.decided_heights: Set[int] = set()
        self.blocks: Dict[int, Block] = {}  # height -> block we voted on
        self._voted: Dict[Tuple[int, str], bool] = {}
        self._queue: List[Any] = []  # leader: pending payloads
        self._leader_shares: Dict[Tuple[int, str], Dict[int, SignatureShare]] = {}
        self._leader_blocks: Dict[int, Block] = {}
        self._inflight: Set[int] = set()
        self._clock_reports: Dict[int, int] = {}
        self._viewchange_votes: Dict[int, Set[int]] = {}
        self._sent_viewchange: Set[int] = set()
        self._progress_marker = 0  # protocol activity; used by the view timer
        # Highest execution watermark ever published/observed.  Invariant
        # maintained by correct leaders: no block proposed after a
        # watermark ``w`` was published carries a payload with
        # ``assigned_ts <= w`` (stale payloads are bounced to ``on_stale``
        # for re-ordering), which is what makes timestamp-ordered
        # execution behind the watermark safe.
        self._wm_floor = 0
        self._decided_payloads: Set[bytes] = set()
        self._inflight_payloads: Set[bytes] = set()
        # Outstanding requests every replica tracks (requests are
        # broadcast): keeps view timers hot when the leader stalls, and
        # lets a new leader re-propose orphaned payloads after a view
        # change.
        self._tracked_requests: Dict[bytes, Any] = {}
        self.decided_blocks: List[Block] = []
        self._started = False

    # ------------------------------------------------------------------
    @property
    def leader(self) -> int:
        return self.view % self.services.n

    @property
    def is_leader(self) -> bool:
        return self.services.pid == self.leader

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._arm_view_timer()

    # ------------------------------------------------------------------
    # Client/orderer entry point
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> None:
        """Hand a payload to the current leader (or queue it if we lead)."""
        if self.is_leader:
            self._queue.append(payload)
            self._maybe_propose()
        else:
            pid_ = getattr(payload, "payload_id", None)
            if pid_ is not None:
                if pid_ in self._decided_payloads:
                    return
                self._tracked_requests[pid_] = payload
            size = int(payload.wire_size() if hasattr(payload, "wire_size") else 64)
            # Broadcast so every replica tracks the request (PBFT-style):
            # a stalling leader is then detected by a quorum, not just by
            # the originator.
            self.services.broadcast("hs.request", {"payload": payload}, size)

    def on_request(self, payload: dict, sender: int) -> None:
        item = payload.get("payload")
        pid_ = getattr(item, "payload_id", None)
        if pid_ is not None and pid_ in self._decided_payloads:
            return
        if self.is_leader:
            self._queue.append(item)
            self._maybe_propose()
        elif pid_ is not None:
            self._tracked_requests[pid_] = item

    def heartbeat(self) -> None:
        """Leader-only: propose an empty block so execution watermarks keep
        advancing when no payloads are queued (Pompē needs a later block's
        watermark to release the last committed certificates)."""
        if not self.is_leader or self._queue or self._inflight:
            return
        block = Block.build(self.view, self.next_height, (), self._wm_floor)
        self.next_height += 1
        self._inflight.add(block.height)
        self._leader_blocks[block.height] = block
        self.services.broadcast(
            PROPOSE_KIND, {"block": block}, block.wire_size() + 96
        )

    # ------------------------------------------------------------------
    # Leader: proposing and QC assembly
    # ------------------------------------------------------------------
    def _watermark(self) -> int:
        """The execution stability watermark: a timestamp such that at
        least 2f+1 replicas' clocks have passed it (so no new ordering
        certificate can be assigned a median below it), minus a Δ slack
        for in-flight ordering phases."""
        clocks = sorted(self._clock_reports.values(), reverse=True)
        k = 2 * self.services.f + 1
        if len(clocks) < k:
            return 0
        return clocks[k - 1] - self.services.delta_us

    def _filter_stale(self, payloads):
        """Bounce payloads whose timestamp is at or below the published
        watermark floor — they must be re-ordered with fresh timestamps."""
        fresh = []
        for p in payloads:
            ts = getattr(p, "assigned_ts", None)
            if ts is not None and ts <= self._wm_floor:
                pid_ = getattr(p, "payload_id", None)
                if pid_ is not None:
                    self._inflight_payloads.discard(pid_)
                if self.on_stale is not None:
                    self.on_stale(p)
                continue
            fresh.append(p)
        return fresh

    def _pending_min_ts(self, exclude_height: Optional[int] = None) -> Optional[int]:
        """Lowest assigned timestamp among payloads the leader still owes
        (queued or in flight), excluding the block currently being decided
        — its own payloads are released by the watermark it carries."""
        lows = []
        for p in self._queue:
            ts = getattr(p, "assigned_ts", None)
            if ts is not None:
                lows.append(ts)
        for h in self._inflight:
            if h == exclude_height:
                continue
            block = self._leader_blocks.get(h)
            if block is None:
                continue
            for p in block.payloads:
                ts = getattr(p, "assigned_ts", None)
                if ts is not None:
                    lows.append(ts)
        return min(lows) if lows else None

    def _maybe_propose(self) -> None:
        if not self.is_leader:
            return
        while self._queue and len(self._inflight) < self.max_inflight:
            take = min(self.batch_certs, len(self._queue))
            payloads, self._queue = self._queue[:take], self._queue[take:]
            payloads = [
                p
                for p in payloads
                if getattr(p, "payload_id", None) not in self._decided_payloads
                and getattr(p, "payload_id", None) not in self._inflight_payloads
            ]
            payloads = self._filter_stale(payloads)
            if not payloads:
                continue
            for p in payloads:
                pid_ = getattr(p, "payload_id", None)
                if pid_ is not None:
                    self._inflight_payloads.add(pid_)
            block = Block.build(
                self.view, self.next_height, payloads, self._wm_floor
            )
            self.next_height += 1
            self._inflight.add(block.height)
            self._leader_blocks[block.height] = block
            self.services.broadcast(
                PROPOSE_KIND,
                {"block": block},
                block.wire_size() + 96,
            )

    def on_propose(self, payload: dict, sender: int) -> None:
        self._progress_marker += 1
        block = payload.get("block")
        if not isinstance(block, Block):
            return
        if sender != block.view % self.services.n or block.view != self.view:
            return  # not from the current leader
        if block.height in self.decided_heights:
            return
        self.blocks[block.height] = block
        self._vote(block, "prepare")

    def _vote(self, block: Block, phase: str) -> None:
        key = (block.height, phase)
        if self._voted.get(key):
            return
        self._voted[key] = True
        share = self.services.threshold_signer.share_sign(
            _vote_digest(block.digest, phase)
        )
        self.services.send(
            self.leader,
            VOTE_KIND,
            {
                "height": block.height,
                "digest": block.digest,
                "phase": phase,
                "share": share,
                "clock": self.report_clock(),
            },
            share.wire_size() + 56,
        )

    def on_vote(self, payload: dict, sender: int) -> None:
        self._progress_marker += 1
        if not self.is_leader:
            return
        height = payload.get("height")
        phase = payload.get("phase")
        share = payload.get("share")
        digest = payload.get("digest")
        clock = payload.get("clock")
        if phase not in PHASES or not isinstance(share, SignatureShare):
            return
        if isinstance(clock, int):
            prev = self._clock_reports.get(sender, 0)
            self._clock_reports[sender] = max(prev, clock)
        block = self._leader_blocks.get(height)
        if block is None or block.digest != digest:
            return
        if not self.services.threshold.share_verify(
            _vote_digest(digest, phase), share, sender
        ):
            return
        bucket = self._leader_shares.setdefault((height, phase), {})
        if sender in bucket:
            return
        bucket[sender] = share
        if len(bucket) >= 2 * self.services.f + 1:
            self._advance_phase(block, phase, bucket)

    def _advance_phase(
        self, block: Block, phase: str, shares: Dict[int, SignatureShare]
    ) -> None:
        key = (block.height, phase + "/qc")
        if self._voted.get(key):
            return
        self._voted[key] = True
        try:
            full = self.services.threshold.combine(
                _vote_digest(block.digest, phase), shares.values()
            )
        except ThresholdError:  # pragma: no cover - shares pre-verified
            return
        qc = QuorumCert(block.digest, phase, full)
        next_step = {
            "prepare": "precommit",
            "precommit": "commit",
            "commit": "decide",
        }[phase]
        msg = {"height": block.height, "step": next_step, "qc": qc}
        if next_step == "decide":
            # Fresher watermark than the one frozen into the block at
            # propose time — but never at/above the timestamp of a payload
            # the leader still owes, and never regressing (floor).
            candidate = self._watermark()
            pending = self._pending_min_ts(exclude_height=block.height)
            if pending is not None:
                candidate = min(candidate, pending - 1)
            wm = max(self._wm_floor, candidate)
            self._wm_floor = wm
            msg["wm"] = wm
        self.services.broadcast(PHASE_KIND, msg, qc.wire_size() + 16)

    def on_phase(self, payload: dict, sender: int) -> None:
        self._progress_marker += 1
        height = payload.get("height")
        step = payload.get("step")
        qc = payload.get("qc")
        if sender != self.leader or not isinstance(qc, QuorumCert):
            return
        block = self.blocks.get(height) or self._leader_blocks.get(height)
        if block is None or qc.block_digest != block.digest:
            return
        prior_phase = {"precommit": "prepare", "commit": "precommit", "decide": "commit"}.get(step)
        if prior_phase is None:
            return
        if not self.services.threshold.verify_full(
            qc.signature, _vote_digest(block.digest, prior_phase)
        ):
            return
        if step in ("precommit", "commit"):
            self._vote(block, step)
        elif step == "decide":
            wm = payload.get("wm")
            if isinstance(wm, int):
                self._wm_floor = max(self._wm_floor, wm)
                if wm > block.watermark:
                    import dataclasses

                    block = dataclasses.replace(block, watermark=wm)
            self._decide(block)

    def _decide(self, block: Block) -> None:
        if block.height in self.decided_heights:
            return
        self.decided_heights.add(block.height)
        self._inflight.discard(block.height)
        self._progress_marker += 1
        for p in block.payloads:
            pid_ = getattr(p, "payload_id", None)
            if pid_ is not None:
                self._decided_payloads.add(pid_)
                self._inflight_payloads.discard(pid_)
                self._tracked_requests.pop(pid_, None)
        self.decided_blocks.append(block)
        self.on_decide(block)
        if self.is_leader:
            self._maybe_propose()

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def _arm_view_timer(self) -> None:
        assert self.services.timers is not None
        marker = self._progress_marker
        self.services.timers.set(
            "hs-view",
            self.view_timeout_us,
            lambda: self._view_timer_fired(marker),
        )

    def _view_timer_fired(self, marker: int) -> None:
        idle = (
            not self._inflight
            and not self._queue
            and not self.blocks_pending()
            and not self._tracked_requests
        )
        if self._progress_marker == marker and not idle:
            self._send_viewchange(self.view + 1)
        self._arm_view_timer()

    def blocks_pending(self) -> bool:
        return any(
            h not in self.decided_heights for h in self.blocks
        )

    def _send_viewchange(self, new_view: int) -> None:
        if new_view in self._sent_viewchange or new_view <= self.view:
            return
        self._sent_viewchange.add(new_view)
        self.services.broadcast(VIEWCHANGE_KIND, {"new_view": new_view}, 12)

    def on_viewchange(self, payload: dict, sender: int) -> None:
        new_view = payload.get("new_view")
        if not isinstance(new_view, int) or new_view <= self.view:
            return
        votes = self._viewchange_votes.setdefault(new_view, set())
        votes.add(sender)
        if len(votes) >= self.services.small_quorum:
            self._send_viewchange(new_view)  # amplify
        if len(votes) >= 2 * self.services.f + 1:
            self._enter_view(new_view)

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        # Abandon undecided heights; payload originators re-submit.
        self._inflight.clear()
        self._inflight_payloads.clear()
        self.blocks = {
            h: b for h, b in self.blocks.items() if h in self.decided_heights
        }
        self._leader_blocks = {
            h: b for h, b in self._leader_blocks.items() if h in self.decided_heights
        }
        if self.is_leader:
            self.next_height = max(
                [self.next_height] + [h + 1 for h in self.decided_heights]
            )
            # Re-propose orphaned requests tracked from broadcasts.
            for pid_, item in list(self._tracked_requests.items()):
                if pid_ not in self._decided_payloads:
                    self._queue.append(item)
            self._maybe_propose()
        self._arm_view_timer()

    # ------------------------------------------------------------------
    # Dispatch helper for host nodes
    # ------------------------------------------------------------------
    def handle(self, kind: str, payload: dict, sender: int) -> bool:
        if kind == PROPOSE_KIND:
            self.on_propose(payload, sender)
        elif kind == VOTE_KIND:
            self.on_vote(payload, sender)
        elif kind == PHASE_KIND:
            self.on_phase(payload, sender)
        elif kind == VIEWCHANGE_KIND:
            self.on_viewchange(payload, sender)
        elif kind == "hs.request":
            self.on_request(payload, sender)
        else:
            return False
        return True


__all__ = [
    "Block",
    "QuorumCert",
    "HotStuffParticipant",
    "PROPOSE_KIND",
    "VOTE_KIND",
    "PHASE_KIND",
    "VIEWCHANGE_KIND",
    "PHASES",
]
