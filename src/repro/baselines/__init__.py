"""Baselines reimplemented from scratch (§VI compares against Pompē [32]).

- :mod:`repro.baselines.hotstuff` — HotStuff [30]: leader-based 3-phase
  BFT consensus with threshold-signature quorum certificates, pipelined
  heights and view changes.  Pompē's consensus substrate.
- :mod:`repro.baselines.pompe` — Pompē's Byzantine ordered consensus:
  an ordering phase (2f+1 signed timestamps, median assignment) feeding
  ordering certificates into HotStuff, with timestamp-ordered execution
  behind a stability watermark.
- :mod:`repro.baselines.dbft_binary` — vanilla DBFT binary agreement [8],
  the primitive Lyra's Algorithm 3 modifies.
- :mod:`repro.baselines.fino` — Fino-style commit-reveal SMR [23]
  ("blind order-fairness"): payload obfuscation without leaderlessness.
"""

from repro.baselines.hotstuff import Block, HotStuffParticipant, QuorumCert
from repro.baselines.pompe import OrderingCert, PompeConfig, PompeNode
from repro.baselines.dbft_binary import BinaryAgreement
from repro.baselines.fino import BlindCensoringLeaderFino, FinoConfig, FinoNode

__all__ = [
    "Block",
    "QuorumCert",
    "HotStuffParticipant",
    "OrderingCert",
    "PompeConfig",
    "PompeNode",
    "BinaryAgreement",
    "FinoNode",
    "FinoConfig",
    "BlindCensoringLeaderFino",
]
