"""Pompē [32]: Byzantine ordered consensus via ordering linearizability.

Pompē separates *ordering* from *consensus*:

1. **Ordering phase** — a node broadcasts its (clear-text!) batch; every
   replica replies with a signed timestamp from its local clock; the node
   collects 2f+1 replies and assigns the **median**, producing an ordering
   certificate.  The median of 2f+1 signed values necessarily lies within
   the range of correct replicas' clocks — that is ordering linearizability.
2. **Consensus phase** — certificates go to the HotStuff leader, which
   commits them in blocks.  Every replica verifies all 2f+1 timestamp
   signatures in every certificate (the O(n²) verification cost §VI-C
   identifies as Pompē's scalability limit).
3. **Execution** — committed certificates execute in assigned-timestamp
   order once they fall behind a stability watermark (no certificate with
   a smaller median can still appear).

The crucial weakness Lyra addresses: batches travel in clear text during
the ordering phase, so an observer can front-run by racing its own batch
through faster network paths (Fig. 1), and the HotStuff leader can censor
or delay certificates.  Attack experiments hook ``observe_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.baselines.hotstuff import (
    Block,
    HotStuffParticipant,
    PHASE_KIND,
    PROPOSE_KIND,
    VIEWCHANGE_KIND,
    VOTE_KIND,
)
from repro.core.clocks import OrderingClock
from repro.core.batching import Mempool
from repro.core.node import CLIENT_REPLY_KIND, CLIENT_TX_KIND
from repro.core.services import ProtocolServices
from repro.core.types import Batch, Transaction
from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS
from repro.crypto.hashing import digest_of
from repro.crypto.signatures import KeyRegistry, Signature
from repro.crypto.threshold import ThresholdScheme
from repro.net.message import Message
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry

ORDER_REQ_KIND = "pp.order_req"
ORDER_TS_KIND = "pp.order_ts"
STALE_KIND = "pp.stale"  # leader -> proposer: re-order this certificate


@dataclass(frozen=True)
class OrderingCert:
    """A batch with its assigned (median) timestamp and the 2f+1 signed
    timestamps that justify it."""

    batch: Batch
    batch_digest: bytes
    assigned_ts: int
    endorsements: Tuple[Tuple[int, int, Signature], ...]  # (pid, ts, sig)

    @property
    def payload_id(self) -> bytes:
        return self.batch_digest

    def wire_size(self) -> int:
        return self.batch.wire_size() + 8 + len(self.endorsements) * (8 + 8 + 64)

    def canonical(self) -> tuple:
        return (self.batch_digest, self.assigned_ts)


@dataclass
class PompeConfig:
    """Per-node Pompē configuration."""

    batch_size: int = 800
    batch_timeout_us: int = 50 * MILLISECONDS
    #: Certificates per HotStuff block.
    batch_certs: int = 4
    max_inflight: int = 8
    view_timeout_us: Optional[int] = None
    costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)
    clock_skew_us: int = 0
    clock_drift: float = 1.0


@dataclass
class PompeStats:
    batches_ordered: int = 0
    batches_executed_own: int = 0
    txs_executed: int = 0
    own_batch_latencies_us: List[int] = field(default_factory=list)


class PompeNode(SimProcess):
    """One Pompē replica (orderer + HotStuff participant + executor)."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        *,
        n: int,
        f: int,
        registry: KeyRegistry,
        threshold: ThresholdScheme,
        config: Optional[PompeConfig] = None,
        rng: Optional[RngRegistry] = None,
        cpu_speed: float = 1.0,
    ) -> None:
        super().__init__(pid, sim, cpu_speed=cpu_speed)
        self.n = n
        self.f = f
        self.registry = registry
        self.threshold_scheme = threshold
        self.config = config or PompeConfig()
        self.costs = self.config.costs
        self.rng = (rng or RngRegistry(0)).get("pompe", str(pid))
        self.clock = OrderingClock(
            sim, skew_us=self.config.clock_skew_us, drift=self.config.clock_drift
        )
        self.mempool = Mempool(self.config.batch_size)
        self.stats = PompeStats()

        self.services: Optional[ProtocolServices] = None
        self.hotstuff: Optional[HotStuffParticipant] = None

        self._batch_counter = 0
        self._pending_order: Dict[bytes, dict] = {}  # digest -> collection state
        self._proposed_at: Dict[bytes, int] = {}
        self._tx_origin: Dict[Tuple[int, int], int] = {}
        # Certificates submitted to consensus but not yet decided: these
        # are re-submitted periodically so view changes cannot lose them.
        self._unacked: Dict[bytes, OrderingCert] = {}
        # Execution state: decided, not-yet-executed certs ordered by ts.
        self._decided: Dict[bytes, OrderingCert] = {}
        self._executed: Set[bytes] = set()
        self._watermark = 0
        self.executed_log: List[Tuple[int, bytes]] = []  # (assigned_ts, digest)
        self._started = False
        self.on_executed: Optional[Callable[[OrderingCert], None]] = None
        #: Attack hook: called with every clear-text batch this replica
        #: observes during the ordering phase.
        self.observe_batch: Optional[Callable[[Batch, int], None]] = None

    # ------------------------------------------------------------------
    def attach(self, network) -> None:
        super().attach(network)
        self.services = ProtocolServices(
            pid=self.pid,
            n=self.n,
            f=self.f,
            sim=self.sim,
            delta_us=network.delta_us,
            signer=self.registry.signer(self.pid),
            registry=self.registry,
            threshold=self.threshold_scheme,
            costs=self.costs,
            send_fn=lambda dst, msg: self.send(dst, msg),
            broadcast_fn=lambda msg: self.broadcast(msg),
            timers=self.timers,
        )
        self.hotstuff = HotStuffParticipant(
            self.services,
            on_decide=self._on_decide,
            report_clock=self.clock.read,
            max_inflight=self.config.max_inflight,
            view_timeout_us=self.config.view_timeout_us,
            batch_certs=self.config.batch_certs,
            on_stale=self._on_stale_cert,
        )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.hotstuff.start()
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._batch_flush_tick
        )
        self.timers.set("wm-tick", 2 * self.services.delta_us, self._watermark_tick)
        self.timers.set("resubmit", 6 * self.services.delta_us, self._resubmit_tick)

    def _on_stale_cert(self, cert) -> None:
        """A certificate's timestamp fell behind the published execution
        watermark.  If it is ours, re-run the ordering phase for fresh
        signed timestamps; as the leader, bounce it back to its proposer
        (we cannot forge new timestamps on its behalf)."""
        if not isinstance(cert, OrderingCert):
            return
        if cert.batch_digest in self._executed:
            return
        if cert.batch.proposer != self.pid:
            self.services.send(
                cert.batch.proposer,
                STALE_KIND,
                {"digest": cert.batch_digest},
                40,
            )
            return
        self._reorder_stale(cert.batch_digest)

    def _reorder_stale(self, digest: bytes) -> None:
        cert = self._unacked.pop(digest, None)
        if cert is None or digest in self._executed:
            return
        self._start_ordering(list(cert.batch.txs))

    def _resubmit_tick(self) -> None:
        # Re-submit certificates abandoned by a view change to the current
        # leader (the leader dedups by payload id).
        for cert in list(self._unacked.values()):
            self.hotstuff.submit(cert)
        self.timers.set("resubmit", 6 * self.services.delta_us, self._resubmit_tick)

    def _watermark_tick(self) -> None:
        # Keep clock reports and execution watermarks fresh: the leader
        # proposes an empty block whenever its pipeline is idle (real
        # HotStuff deployments emit empty blocks for the same reason).
        self.hotstuff.heartbeat()
        self.timers.set("wm-tick", 2 * self.services.delta_us, self._watermark_tick)

    # ------------------------------------------------------------------
    # CPU-cost model for received messages
    # ------------------------------------------------------------------
    def _receive_cost(self, message: Message) -> int:
        kind = message.kind
        payload = message.payload if isinstance(message.payload, dict) else {}
        if kind == ORDER_REQ_KIND:
            return self.costs.hash_us(message.size) + self.costs.sign_us
        if kind == ORDER_TS_KIND:
            return self.costs.verify_us
        if kind == PROPOSE_KIND:
            block = payload.get("block")
            certs = len(block.payloads) if isinstance(block, Block) else 1
            # The quadratic term: every replica verifies every certificate's
            # 2f+1 timestamp signatures.
            return certs * (2 * self.f + 1) * self.costs.verify_us
        if kind == VOTE_KIND:
            return self.costs.share_verify_us
        if kind == PHASE_KIND:
            return self.costs.threshold_verify_us
        if kind == "hs.request":
            return self.costs.hash_us(message.size)
        return 2

    def deliver(self, message: Message, sender: int) -> None:
        if self.crashed:
            return
        self.messages_received += 1
        done_at = self.cpu.acquire(self._receive_cost(message))
        if done_at <= self.sim.now:
            self._process(message, sender)
        else:
            self.sim.schedule_at(done_at, lambda: self._process(message, sender))

    def _process(self, message: Message, sender: int) -> None:
        if self.crashed:
            return
        payload = message.payload if isinstance(message.payload, dict) else {}
        kind = message.kind
        if kind == CLIENT_TX_KIND:
            tx = payload.get("tx")
            if isinstance(tx, Transaction):
                self.submit(tx, client_pid=sender)
        elif kind == ORDER_REQ_KIND:
            self._on_order_req(payload, sender)
        elif kind == ORDER_TS_KIND:
            self._on_order_ts(payload, sender)
        elif kind == STALE_KIND:
            digest = payload.get("digest")
            if isinstance(digest, bytes):
                self._reorder_stale(digest)
        elif self.hotstuff is not None:
            self.hotstuff.handle(kind, payload, sender)

    # ------------------------------------------------------------------
    # Client path and batching
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction, client_pid: Optional[int] = None) -> None:
        if client_pid is not None:
            self._tx_origin[tx.key()] = client_pid
        if self.mempool.add(tx):
            while self.mempool.full:
                self._start_ordering(self.mempool.take_batch())

    def _batch_flush_tick(self) -> None:
        if len(self.mempool) > 0:
            self._start_ordering(self.mempool.take_batch())
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._batch_flush_tick
        )

    # ------------------------------------------------------------------
    # Ordering phase
    # ------------------------------------------------------------------
    def _start_ordering(self, txs: List[Transaction]) -> None:
        if not txs:
            return
        batch = Batch(self.pid, self._batch_counter, tuple(txs))
        self._batch_counter += 1
        digest = digest_of(batch.canonical())
        self._pending_order[digest] = {"batch": batch, "replies": {}}
        self._proposed_at[digest] = self.sim.now
        self.charge(self.costs.hash_us(batch.wire_size()))
        self.services.broadcast(
            ORDER_REQ_KIND,
            {"batch": batch, "digest": digest},
            batch.wire_size() + 32,
        )

    def _on_order_req(self, payload: dict, sender: int) -> None:
        batch = payload.get("batch")
        digest = payload.get("digest")
        if not isinstance(batch, Batch) or not isinstance(digest, bytes):
            return
        # Clear-text exposure: the batch is readable here, before any
        # ordering decision — the attack surface Lyra closes.
        if self.observe_batch is not None:
            self.observe_batch(batch, sender)
        ts = self.clock.now()
        sig = self.services.signer.sign((digest, ts))
        self.services.send(
            sender, ORDER_TS_KIND, {"digest": digest, "ts": ts, "sig": sig}, 80
        )

    def _on_order_ts(self, payload: dict, sender: int) -> None:
        digest = payload.get("digest")
        ts = payload.get("ts")
        sig = payload.get("sig")
        state = self._pending_order.get(digest)
        if state is None or not isinstance(ts, int) or not isinstance(sig, Signature):
            return
        if sender in state["replies"]:
            return
        if not self.registry.verify((digest, ts), sig, sender):
            return
        state["replies"][sender] = (ts, sig)
        quorum = 2 * self.f + 1
        if len(state["replies"]) == quorum:
            endorsements = tuple(
                (pid, t, s) for pid, (t, s) in sorted(state["replies"].items())
            )
            times = sorted(t for _, t, _ in endorsements)
            median = times[self.f]  # median of 2f+1 values
            cert = OrderingCert(state["batch"], digest, median, endorsements)
            del self._pending_order[digest]
            self.stats.batches_ordered += 1
            self._unacked[digest] = cert
            self.hotstuff.submit(cert)

    # ------------------------------------------------------------------
    # Consensus decisions and timestamp-ordered execution
    # ------------------------------------------------------------------
    def _on_decide(self, block: Block) -> None:
        if block.watermark > self._watermark:
            self._watermark = block.watermark
        for cert in block.payloads:
            if not isinstance(cert, OrderingCert):
                continue
            self._unacked.pop(cert.batch_digest, None)
            if cert.batch_digest in self._executed:
                continue
            self._decided.setdefault(cert.batch_digest, cert)
        self._drain_executions()

    def _drain_executions(self) -> None:
        ready = sorted(
            (c for c in self._decided.values() if c.assigned_ts <= self._watermark),
            key=lambda c: (c.assigned_ts, c.batch_digest),
        )
        for cert in ready:
            del self._decided[cert.batch_digest]
            self._executed.add(cert.batch_digest)
            self.executed_log.append((cert.assigned_ts, cert.batch_digest))
            self._execute(cert)

    def _execute(self, cert: OrderingCert) -> None:
        self.stats.txs_executed += len(cert.batch)
        if cert.batch.proposer == self.pid:
            self.stats.batches_executed_own += 1
            proposed = self._proposed_at.pop(cert.batch_digest, None)
            if proposed is not None:
                self.stats.own_batch_latencies_us.append(self.sim.now - proposed)
        for tx in cert.batch.txs:
            client = self._tx_origin.pop(tx.key(), None)
            if client is not None:
                self.send(
                    client,
                    Message(
                        CLIENT_REPLY_KIND,
                        {"key": tx.key(), "seq": cert.assigned_ts},
                        24,
                    ),
                )
        self.mempool.drop_committed(cert.batch.txs)
        if self.on_executed is not None:
            self.on_executed(cert)

    # ------------------------------------------------------------------
    def output_sequence(self) -> List[Tuple[int, bytes]]:
        return list(self.executed_log)


__all__ = [
    "PompeNode",
    "PompeConfig",
    "PompeStats",
    "OrderingCert",
    "ORDER_REQ_KIND",
    "ORDER_TS_KIND",
    "STALE_KIND",
]
