"""Fino-style commit-reveal SMR (Malkhi & Szalachowski [23]) — simplified.

The paper's introduction contrasts Lyra with Fino: a leader-based protocol
that, like Lyra, obfuscates payloads with commit-reveal ("blind
order-fairness"), but where ordering is chosen by a leader.  The critique
(§I): obfuscation alone does not give order fairness — *"it does not
prevent a malicious leader from omitting transactions from up to f
processes.  Although the underlying DAG may resubmit a transaction t
later, t has effectively been reordered."*

This module reproduces exactly that trade-off with a minimal faithful
construction (we use our HotStuff substrate where Fino uses a DAG; the
leader's power over ordering — the property under study — is the same):

1. a replica batches client transactions, encrypts the batch with the
   hash-commit scheme, and submits the *cipher* to the current leader;
2. the leader sequences ciphers into blocks (it cannot read them, but it
   can see who proposed them);
3. once a block is decided, each proposer reveals its own ciphers'
   openings; replicas execute in block order upon reveal.

So: content-based front-running is impossible (like Lyra), but a
Byzantine leader can still discriminate by *proposer* — see
:class:`BlindCensoringLeaderFino` and the censorship experiment rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.baselines.hotstuff import Block, HotStuffParticipant, PHASE_KIND, PROPOSE_KIND, VOTE_KIND
from repro.core.batching import Mempool
from repro.core.node import CLIENT_REPLY_KIND, CLIENT_TX_KIND
from repro.core.obfuscation import HashCommitObfuscation
from repro.core.services import ProtocolServices
from repro.core.types import Batch, Transaction
from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.crypto.vss_encryption import VssError
from repro.net.message import Message
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry

REVEAL_KIND = "fino.reveal"


@dataclass(frozen=True)
class CipherRef:
    """What the leader sequences: an opaque cipher plus its proposer."""

    cipher: Any  # HashCommitCipher
    proposer: int
    batch_no: int

    @property
    def payload_id(self) -> bytes:
        return self.cipher.cipher_id

    def wire_size(self) -> int:
        return self.cipher.wire_size() + 8

    def canonical(self) -> tuple:
        return (self.cipher.cipher_id, self.proposer, self.batch_no)


@dataclass
class FinoConfig:
    batch_size: int = 800
    batch_timeout_us: int = 50 * MILLISECONDS
    batch_certs: int = 4
    view_timeout_us: Optional[int] = None
    costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)


@dataclass
class FinoStats:
    batches_proposed: int = 0
    txs_executed: int = 0


class FinoNode(SimProcess):
    """One Fino-style replica: commit-reveal proposals, leader-sequenced."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        *,
        n: int,
        f: int,
        registry: KeyRegistry,
        threshold: ThresholdScheme,
        obfuscation: HashCommitObfuscation,
        config: Optional[FinoConfig] = None,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        super().__init__(pid, sim)
        self.n, self.f = n, f
        self.registry = registry
        self.threshold_scheme = threshold
        self.obf = obfuscation
        self.config = config or FinoConfig()
        self.costs = self.config.costs
        self.rng = (rng or RngRegistry(0)).get("fino", str(pid))
        self.mempool = Mempool(self.config.batch_size)
        self.stats = FinoStats()

        self.services: Optional[ProtocolServices] = None
        self.hotstuff: Optional[HotStuffParticipant] = None
        self._batch_counter = 0
        self._tx_origin: Dict[Tuple[int, int], int] = {}
        # Decided-but-unrevealed ciphers, in decided order.
        self._pending_reveal: List[CipherRef] = []
        self._revealed: Dict[bytes, bytes] = {}  # cipher_id -> plaintext
        self._executed: Set[bytes] = set()
        self.executed_log: List[Tuple[int, bytes]] = []  # (height, cipher_id)
        self.on_executed: Optional[Callable[[Batch], None]] = None
        self._started = False

    # ------------------------------------------------------------------
    def attach(self, network) -> None:
        super().attach(network)
        self.services = ProtocolServices(
            pid=self.pid,
            n=self.n,
            f=self.f,
            sim=self.sim,
            delta_us=network.delta_us,
            signer=self.registry.signer(self.pid),
            registry=self.registry,
            threshold=self.threshold_scheme,
            costs=self.costs,
            send_fn=lambda dst, msg: self.send(dst, msg),
            broadcast_fn=lambda msg: self.broadcast(msg),
            timers=self.timers,
        )
        self.hotstuff = HotStuffParticipant(
            self.services,
            on_decide=self._on_decide,
            batch_certs=self.config.batch_certs,
            view_timeout_us=self.config.view_timeout_us,
        )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.hotstuff.start()
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._flush_tick
        )

    # ------------------------------------------------------------------
    def _receive_cost(self, message: Message) -> int:
        kind = message.kind
        if kind == PROPOSE_KIND:
            return self.costs.hash_us(message.size)
        if kind == VOTE_KIND:
            return self.costs.share_verify_us
        if kind == PHASE_KIND:
            return self.costs.threshold_verify_us
        if kind == REVEAL_KIND:
            return self.costs.open_commit_us
        return 2

    def deliver(self, message: Message, sender: int) -> None:
        if self.crashed:
            return
        self.messages_received += 1
        done_at = self.cpu.acquire(self._receive_cost(message))
        if done_at <= self.sim.now:
            self._process(message, sender)
        else:
            self.sim.schedule_at(done_at, lambda: self._process(message, sender))

    def _process(self, message: Message, sender: int) -> None:
        if self.crashed:
            return
        payload = message.payload if isinstance(message.payload, dict) else {}
        kind = message.kind
        if kind == CLIENT_TX_KIND:
            tx = payload.get("tx")
            if isinstance(tx, Transaction):
                self.submit(tx, client_pid=sender)
        elif kind == REVEAL_KIND:
            self._on_reveal(payload, sender)
        elif self.hotstuff is not None:
            self.hotstuff.handle(kind, payload, sender)

    # ------------------------------------------------------------------
    # Propose path: encrypt, hand the cipher to the leader
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction, client_pid: Optional[int] = None) -> None:
        if client_pid is not None:
            self._tx_origin[tx.key()] = client_pid
        if self.mempool.add(tx):
            while self.mempool.full:
                self._propose(self.mempool.take_batch())

    def _flush_tick(self) -> None:
        if len(self.mempool) > 0:
            self._propose(self.mempool.take_batch())
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._flush_tick
        )

    def _propose(self, txs: List[Transaction]) -> None:
        if not txs:
            return
        batch = Batch(self.pid, self._batch_counter, tuple(txs))
        self._batch_counter += 1
        self.charge(self.costs.commit_us + self.costs.hash_us(batch.wire_size()))
        cipher = self.obf.encrypt(batch.serialize(), self.rng, self.pid)
        self.stats.batches_proposed += 1
        self.hotstuff.submit(CipherRef(cipher, self.pid, batch.batch_no))

    # ------------------------------------------------------------------
    # Decide → reveal → execute
    # ------------------------------------------------------------------
    def _on_decide(self, block: Block) -> None:
        for ref in block.payloads:
            if not isinstance(ref, CipherRef):
                continue
            if ref.cipher.cipher_id in self._executed:
                continue
            self._pending_reveal.append(ref)
            if ref.proposer == self.pid:
                # Our cipher committed: broadcast the opening.
                try:
                    share = self.obf.partial_decrypt(ref.cipher, self.pid)
                except VssError:
                    continue
                self.services.broadcast(
                    REVEAL_KIND,
                    {"cid": ref.cipher.cipher_id, "share": share},
                    share.wire_size(),
                )
        self._drain()

    def _on_reveal(self, payload: dict, sender: int) -> None:
        cid = payload.get("cid")
        share = payload.get("share")
        if not isinstance(cid, bytes) or share is None:
            return
        for ref in self._pending_reveal:
            if ref.cipher.cipher_id == cid:
                if self.obf.verify_decryption_share(ref.cipher, share):
                    try:
                        self._revealed[cid] = self.obf.decrypt(ref.cipher, [share])
                    except VssError:
                        return
                break
        self._drain()

    def _drain(self) -> None:
        """Execute decided ciphers in order as their reveals arrive."""
        while self._pending_reveal:
            ref = self._pending_reveal[0]
            plaintext = self._revealed.pop(ref.cipher.cipher_id, None)
            if plaintext is None:
                return  # head-of-line blocked on its proposer's reveal
            self._pending_reveal.pop(0)
            self._executed.add(ref.cipher.cipher_id)
            self.executed_log.append((len(self.executed_log), ref.cipher.cipher_id))
            try:
                batch = Batch.deserialize(ref.proposer, ref.batch_no, plaintext)
            except ValueError:
                continue
            self.stats.txs_executed += len(batch)
            for tx in batch.txs:
                client = self._tx_origin.pop(tx.key(), None)
                if client is not None:
                    self.send(
                        client,
                        Message(CLIENT_REPLY_KIND, {"key": tx.key(), "seq": 0}, 24),
                    )
            self.mempool.drop_committed(batch.txs)
            if self.on_executed is not None:
                self.on_executed(batch)

    def output_sequence(self) -> List[Tuple[int, bytes]]:
        return list(self.executed_log)


class BlindCensoringLeaderFino(FinoNode):
    """A Byzantine Fino leader: it cannot *read* any cipher, yet it can
    still discriminate by proposer and silently drop a victim's ciphers —
    the reordering power commit-reveal alone does not remove (§I)."""

    def __init__(self, *args, censored=(), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.censored: Set[int] = set(censored)
        self.censored_count = 0

    def _process(self, message: Message, sender: int) -> None:
        if message.kind == "hs.request":
            payload = message.payload if isinstance(message.payload, dict) else {}
            ref = payload.get("payload")
            if isinstance(ref, CipherRef) and ref.proposer in self.censored:
                self.censored_count += 1
                return
        super()._process(message, sender)


__all__ = [
    "FinoNode",
    "FinoConfig",
    "FinoStats",
    "CipherRef",
    "BlindCensoringLeaderFino",
    "REVEAL_KIND",
]
