"""The simulated network: authenticated channels, lossy on demand.

Delivery time of a message =
    egress serialisation (NIC queue at the sender)
  + propagation latency (region matrix + jitter)
  + adversarial delay (zero after GST)
  + ingress serialisation (NIC queue at the receiver)

By default channels deliver every message (the §II-A reliable-channel
abstraction taken as given).  With a :class:`~repro.net.faults.FaultInjector`
attached, links drop/duplicate/reorder/corrupt per their
:class:`~repro.net.faults.FaultPlan`; layering a
:class:`~repro.net.reliable.ReliableLayer` on top (``enable_reliable``)
then *implements* §II-A over the lossy wire with acks and retransmission.
Authentication is by construction: the receiver learns the true sender pid
(processes cannot impersonate each other), the cryptographic layer on top
adds transferable signatures.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.net.adversary import NetworkAdversary, NullAdversary
from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultInjector
from repro.net.latency import LatencyModel, UniformLatencyModel
from repro.net.message import Message
from repro.net.reliable import ACK_KIND, FRAME_KIND, ReliableConfig, ReliableLayer
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.process import SimProcess

#: Hook signature: (time_us, src, dst, message) -> None
TraceHook = Callable[[int, int, int, Message], None]


@dataclass
class NetworkConfig:
    """Tunables for one simulated network."""

    #: Post-GST bound on correct-to-correct message delay (µs).  Protocols
    #: read this as their Δ.  Must dominate the worst physical path.
    delta_us: int = 150 * MILLISECONDS
    #: Enable NIC bandwidth queueing (disable to isolate protocol logic).
    bandwidth_enabled: bool = True
    #: NIC line rate in bits/s (uniform across nodes unless a dict).
    rate_bps: float | Dict[int, float] = BandwidthModel.DEFAULT_RATE
    #: Enforce the Δ bound after GST by clamping residual adversarial delay.
    clamp_after_gst: bool = True


class Network:
    """Connects :class:`SimProcess` instances over simulated channels."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        adversary: Optional[NetworkAdversary] = None,
        config: Optional[NetworkConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency or UniformLatencyModel()
        self.adversary = adversary or NullAdversary()
        self.config = config or NetworkConfig()
        self.bandwidth = BandwidthModel(
            sim, rate_bps=self.config.rate_bps, enabled=self.config.bandwidth_enabled
        )
        self.faults = faults
        self.reliable: Optional[ReliableLayer] = None
        self._processes: Dict[int, SimProcess] = {}
        self._replicas: List[int] = []
        self._trace_hooks: List[TraceHook] = []
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self.unroutable_dropped = 0
        self.corrupt_dropped = 0

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> ReliableLayer:
        """Layer ack/retransmit channels over this network's links."""
        self.reliable = ReliableLayer(self, config)
        return self.reliable

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: SimProcess, *, replica: bool = True) -> None:
        """Add a process; ``replica=True`` adds it to the broadcast group."""
        if process.pid in self._processes:
            raise ValueError(f"pid {process.pid} already registered")
        self._processes[process.pid] = process
        if replica:
            # Keep the broadcast group sorted with one O(n) insertion
            # instead of a full re-sort per registration.
            insort(self._replicas, process.pid)
        process.attach(self)

    def pids(self) -> List[int]:
        """Broadcast group: the replica pids, sorted."""
        return list(self._replicas)

    def process(self, pid: int) -> SimProcess:
        return self._processes[pid]

    def processes(self) -> List[SimProcess]:
        return [self._processes[pid] for pid in sorted(self._processes)]

    @property
    def delta_us(self) -> int:
        return self.config.delta_us

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def add_trace_hook(self, hook: TraceHook) -> None:
        """Observe every delivery (metrics, attack oracles, tests)."""
        self._trace_hooks.append(hook)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Queue ``message`` from ``src`` to ``dst``.

        An unregistered destination is counted as a dropped send rather
        than raising, so traffic to deregistered targets degrades
        gracefully instead of killing the whole simulation.
        """
        if dst not in self._processes:
            self.unroutable_dropped += 1
            return
        if self.reliable is not None:
            self.reliable.send(src, dst, message)
        else:
            self._transmit(src, dst, message)

    def broadcast(
        self, src: int, message: Message, *, include_self: bool = True
    ) -> int:
        """Fan one logical message out to the replica group, zero-copy.

        The same :class:`Message` instance is shared by every recipient —
        ``estimate_size`` ran once at construction and the checksum is
        stamped once here instead of once per destination.  Copy-on-write
        semantics are preserved: a corrupting link damages a *copy* of the
        frame (``FaultInjector.corrupted_copy``) and duplicates travel as
        clones, so per-link faults never leak into other recipients.
        Fault decisions are drawn per destination in sorted-pid order,
        exactly as the per-``send`` path would, keeping RNG streams — and
        therefore whole runs — bit-identical.

        Returns the number of send attempts (including unroutable ones),
        which callers use for traffic accounting.
        """
        processes = self._processes
        reliable = self.reliable
        faults = self.faults
        attempts = 0
        if reliable is not None:
            # Reliable channels frame per destination (each link has its
            # own sequence space); the inner message object stays shared.
            for dst in self._replicas:
                if dst == src and not include_self:
                    continue
                attempts += 1
                if dst not in processes:
                    self.unroutable_dropped += 1
                    continue
                reliable.send(src, dst, message)
            return attempts
        stamped = False
        schedule = self._schedule_delivery
        for dst in self._replicas:
            if dst == src and not include_self:
                continue
            attempts += 1
            if dst not in processes:
                self.unroutable_dropped += 1
                continue
            if not stamped:
                message.stamp_checksum()
                stamped = True
            if faults is not None:
                decision = faults.decide(src, dst, message, self.sim.now)
                if decision.drop:
                    continue
                wire = message
                if decision.corrupt:
                    wire = FaultInjector.corrupted_copy(message)
                schedule(src, dst, wire, decision.extra_delay_us)
                if decision.duplicate:
                    schedule(src, dst, message.clone(), 0)
            else:
                schedule(src, dst, message, 0)
        return attempts

    def _transmit(self, src: int, dst: int, message: Message) -> None:
        """Put one frame on the wire: stamp its checksum, apply link
        faults, and schedule each surviving copy's delivery."""
        if dst not in self._processes:
            self.unroutable_dropped += 1
            return
        message.stamp_checksum()
        if self.faults is not None:
            decision = self.faults.decide(src, dst, message, self.sim.now)
            if decision.drop:
                return
            wire = message
            if decision.corrupt:
                wire = FaultInjector.corrupted_copy(message)
            self._schedule_delivery(src, dst, wire, decision.extra_delay_us)
            if decision.duplicate:
                # The duplicate takes its own (jittered) path through the
                # network, so it may arrive before or after the original.
                self._schedule_delivery(src, dst, message.clone(), 0)
        else:
            self._schedule_delivery(src, dst, message, 0)

    def _schedule_delivery(
        self, src: int, dst: int, message: Message, extra_delay_us: int
    ) -> None:
        sim = self.sim
        size = message.size
        departure = self.bandwidth.departure_time(src, size)
        propagation = self.latency.one_way_us(src, dst)
        extra = self.adversary.extra_delay_us(src, dst, size, sim.now)
        if extra:
            # With zero adversarial delay the clamp is a no-op, so the GST
            # lookup only runs when there is something to clamp.
            if self.config.clamp_after_gst and sim.now >= self.adversary.gst():
                # After GST the adversary cannot stretch delays past Δ.
                extra = min(extra, max(0, self.config.delta_us - propagation))
        ingress = self.bandwidth.ingress_delay_us(dst, size)
        arrival = departure + propagation + extra + ingress + extra_delay_us
        # ``arrival >= now`` by construction (departure is never in the
        # past and the remaining terms are non-negative), so this can skip
        # schedule_at's bounds check and call schedule directly.
        sim.schedule(arrival - sim.now, partial(self._deliver, src, dst, message))

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        process = self._processes.get(dst)
        if process is None:
            return
        if not message.verify_checksum():
            # Damaged in flight: indistinguishable from loss at this layer.
            self.corrupt_dropped += 1
            if self.faults is not None:
                self.faults.stats.corrupt_detected += 1
            return
        if self.reliable is not None and message.kind in (FRAME_KIND, ACK_KIND):
            self.reliable.on_receive(src, dst, message, process)
            return
        if process.crashed:
            return
        self.deliver_local(src, dst, message, process)

    def deliver_local(
        self, src: int, dst: int, message: Message, process: SimProcess
    ) -> None:
        """Hand an application-level message to its destination process,
        updating delivery counters and firing trace hooks."""
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        for hook in self._trace_hooks:
            hook(self.sim.now, src, dst, message)
        process.deliver(message, src)


__all__ = ["Network", "NetworkConfig", "TraceHook"]
