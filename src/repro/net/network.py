"""The simulated network: authenticated channels, lossy on demand.

Delivery time of a message =
    egress serialisation (NIC queue at the sender)
  + propagation latency (region matrix + jitter)
  + adversarial delay (zero after GST)
  + ingress serialisation (NIC queue at the receiver)

By default channels deliver every message (the §II-A reliable-channel
abstraction taken as given).  With a :class:`~repro.net.faults.FaultInjector`
attached, links drop/duplicate/reorder/corrupt per their
:class:`~repro.net.faults.FaultPlan`; layering a
:class:`~repro.net.reliable.ReliableLayer` on top (``enable_reliable``)
then *implements* §II-A over the lossy wire with acks and retransmission.
Authentication is by construction: the receiver learns the true sender pid
(processes cannot impersonate each other), the cryptographic layer on top
adds transferable signatures.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.adversary import NetworkAdversary, NullAdversary
from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultInjector
from repro.net.latency import LatencyModel, UniformLatencyModel
from repro.net.message import BUNDLE_HEADER_BYTES, BUNDLE_KIND, Message
from repro.net.reliable import ACK_KIND, FRAME_KIND, ReliableConfig, ReliableLayer
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.process import SimProcess

#: Hook signature: (time_us, src, dst, message) -> None
TraceHook = Callable[[int, int, int, Message], None]


@dataclass
class WireStats:
    """Coalescing-layer counters: logical messages vs physical frames."""

    #: Logical messages that entered the coalescing layer.
    messages_sent: int = 0
    #: Physical frames actually put on the wire by flushes.
    frames_sent: int = 0
    #: Frames that carried more than one message.
    bundles_sent: int = 0
    #: Messages that travelled inside a multi-message frame.
    messages_coalesced: int = 0
    #: Flush passes that sent at least one frame.
    flushes: int = 0

    def coalescing_ratio(self) -> float:
        """Average messages per physical frame (1.0 = no coalescing win)."""
        if self.frames_sent == 0:
            return 1.0
        return self.messages_sent / self.frames_sent

    def to_dict(self) -> Dict[str, float]:
        return {
            "messages_sent": self.messages_sent,
            "frames_sent": self.frames_sent,
            "bundles_sent": self.bundles_sent,
            "messages_coalesced": self.messages_coalesced,
            "flushes": self.flushes,
            "coalescing_ratio": round(self.coalescing_ratio(), 4),
        }


@dataclass
class NetworkConfig:
    """Tunables for one simulated network."""

    #: Post-GST bound on correct-to-correct message delay (µs).  Protocols
    #: read this as their Δ.  Must dominate the worst physical path.
    delta_us: int = 150 * MILLISECONDS
    #: Enable NIC bandwidth queueing (disable to isolate protocol logic).
    bandwidth_enabled: bool = True
    #: NIC line rate in bits/s (uniform across nodes unless a dict).
    rate_bps: float | Dict[int, float] = BandwidthModel.DEFAULT_RATE
    #: Enforce the Δ bound after GST by clamping residual adversarial delay.
    clamp_after_gst: bool = True


class Network:
    """Connects :class:`SimProcess` instances over simulated channels."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        adversary: Optional[NetworkAdversary] = None,
        config: Optional[NetworkConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency or UniformLatencyModel()
        self.adversary = adversary or NullAdversary()
        self.config = config or NetworkConfig()
        self.bandwidth = BandwidthModel(
            sim, rate_bps=self.config.rate_bps, enabled=self.config.bandwidth_enabled
        )
        self.faults = faults
        self.reliable: Optional[ReliableLayer] = None
        #: Broadcast dissemination strategy (``None`` = native all2all).
        self.dissemination = None
        self._processes: Dict[int, SimProcess] = {}
        self._replicas: List[int] = []
        self._trace_hooks: List[TraceHook] = []
        # Shard mode (see ``enable_sharding``): deliveries to pids outside
        # ``_local_pids`` are captured as cross-shard frames instead of
        # being scheduled locally.  ``None`` = everything is local.
        self._local_pids: Optional[frozenset] = None
        self._capture: Optional[Callable[[int, int, int, Message], None]] = None
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self.unroutable_dropped = 0
        self.corrupt_dropped = 0
        # Wire-frame coalescing (off by default; see ``enable_coalescing``).
        self.wire_stats = WireStats()
        self._coalesce = False
        self._coalesce_window_us = 0
        self._outboxes: Dict[Tuple[int, int], List[Message]] = {}
        #: Senders with an armed window-flush timer (window > 0 only).
        self._flush_timers: set = set()
        # Per-link delivery counters keyed by the packed pid pair
        # ``(src << 20) | dst`` — an int key skips the per-message tuple
        # allocation and tuple hash a ``(src, dst)`` key would cost.
        # None until ``enable_link_stats`` so the delivery hot path pays
        # only a None check when disabled.
        self._link_stats: Optional[Dict[int, List[int]]] = None

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> ReliableLayer:
        """Layer ack/retransmit channels over this network's links."""
        self.reliable = ReliableLayer(self, config)
        return self.reliable

    def set_dissemination(self, strategy) -> None:
        """Install a broadcast dissemination strategy (see
        :mod:`repro.net.dissemination`); ``None`` restores native all2all."""
        self.dissemination = strategy

    def enable_sharding(
        self,
        local_pids,
        capture: Callable[[int, int, int, Message], None],
    ) -> None:
        """Partition this network for a shard worker.

        Delivery times are computed entirely sender-side (egress queueing,
        the sender's jitter stream, per-link fault draws), so a delivery
        whose destination lives on another shard is complete the moment
        its arrival time is known: ``capture(src, dst, arrival_abs_us,
        message)`` records it as a cross-shard frame for the epoch barrier
        instead of scheduling a local event.  The destination's worker
        re-injects it via :meth:`inject_remote`.
        """
        self._local_pids = frozenset(local_pids)
        self._capture = capture

    def inject_remote(
        self, src: int, dst: int, arrival_abs_us: int, message: Message
    ) -> None:
        """Schedule a cross-shard frame received at an epoch barrier.

        The epoch bound guarantees ``arrival_abs_us > now`` (every frame
        captured during epoch k arrives strictly after barrier k), so this
        lands in a future bucket.  Delivery priority is ``src + 1``,
        identical to a locally scheduled delivery — combined with the
        per-sender frame order the coordinator preserves, the destination
        bucket's total order is bit-identical to the single-process run.
        """
        sim = self.sim
        sim.schedule_light(
            arrival_abs_us - sim.now,
            partial(self._deliver, src, dst, message),
            priority=src + 1,
        )

    def enable_coalescing(self, window_us: int = 0) -> None:
        """Turn on link-level frame coalescing.

        All messages emitted on one (src, dst) link during the same
        simulated instant (``window_us == 0``) — or within ``window_us``
        of the sender's first enqueue (``window_us > 0``) — leave as one
        physical frame: one delivery event, one latency/bandwidth draw, one
        checksum, and one fault draw.  Fault semantics are per frame (a
        dropped/corrupted frame takes every bundled message with it), and
        flushes walk links in sorted-pid order so RNG draws stay
        deterministic.  Reliable-layer frames and acks ride the same
        bundles.
        """
        if self._coalesce:
            return
        self._coalesce = True
        self._coalesce_window_us = int(window_us)
        if self._coalesce_window_us == 0:
            self.sim.add_end_of_instant_hook(self._flush_outboxes)

    @property
    def coalescing_enabled(self) -> bool:
        return self._coalesce

    def pending_coalesced(self) -> int:
        """Messages parked in open coalescing windows, awaiting a flush."""
        return sum(len(box) for box in self._outboxes.values())

    def drain_pending(self) -> int:
        """Force-flush every open coalescing window right now.

        With ``coalesce_window_us > 0`` the shared flush timer can land
        past the simulator's run horizon, leaving messages parked in
        outboxes when the run stops — they must be flushed (and the
        resulting deliveries given time to land), not silently dropped.
        :meth:`LyraCluster.run` calls this in its end-of-run drain loop.
        Returns the number of messages flushed.
        """
        pending = self.pending_coalesced()
        if pending:
            self._flush_outboxes()
        return pending

    def enable_link_stats(self) -> None:
        """Track per-(src, dst) delivered message/byte counts.

        Off by default: the delivery hot path then pays only a ``None``
        check.  Snapshot with :meth:`link_stats`.
        """
        if self._link_stats is None:
            self._link_stats = {}

    def link_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-link delivery counters as ``{"src->dst": {messages, bytes}}``."""
        if not self._link_stats:
            return {}
        return {
            f"{key >> 20}->{key & 0xFFFFF}": {
                "messages": counts[0],
                "bytes": counts[1],
            }
            for key, counts in sorted(self._link_stats.items())
        }

    def _count_link(self, src: int, dst: int, size: int) -> None:
        # Slow-path helper; the delivery hot paths inline this body.
        try:
            counts = self._link_stats[(src << 20) | dst]
        except KeyError:
            counts = self._link_stats[(src << 20) | dst] = [0, 0]
        counts[0] += 1
        counts[1] += size

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: SimProcess, *, replica: bool = True) -> None:
        """Add a process; ``replica=True`` adds it to the broadcast group."""
        if process.pid in self._processes:
            raise ValueError(f"pid {process.pid} already registered")
        self._processes[process.pid] = process
        if replica:
            # Keep the broadcast group sorted with one O(n) insertion
            # instead of a full re-sort per registration.
            insort(self._replicas, process.pid)
        process.attach(self)

    def pids(self) -> List[int]:
        """Broadcast group: the replica pids, sorted."""
        return list(self._replicas)

    def process(self, pid: int) -> SimProcess:
        return self._processes[pid]

    def processes(self) -> List[SimProcess]:
        return [self._processes[pid] for pid in sorted(self._processes)]

    @property
    def delta_us(self) -> int:
        return self.config.delta_us

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def add_trace_hook(self, hook: TraceHook) -> None:
        """Observe every delivery (metrics, attack oracles, tests)."""
        self._trace_hooks.append(hook)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Queue ``message`` from ``src`` to ``dst``.

        An unregistered destination is counted as a dropped send rather
        than raising, so traffic to deregistered targets degrades
        gracefully instead of killing the whole simulation.
        """
        if dst not in self._processes:
            self.unroutable_dropped += 1
            return
        if self.reliable is not None:
            self.reliable.send(src, dst, message)
        else:
            self._transmit(src, dst, message)

    def broadcast(
        self, src: int, message: Message, *, include_self: bool = True
    ) -> int:
        """Fan one logical message out to the replica group.

        With a dissemination strategy installed the strategy decides the
        fan-out shape (relay tree, gossip pushes); otherwise this is the
        native all2all path.
        """
        dissemination = self.dissemination
        if dissemination is not None:
            return dissemination.broadcast(self, src, message, include_self)
        return self.broadcast_all2all(src, message, include_self=include_self)

    def broadcast_all2all(
        self, src: int, message: Message, *, include_self: bool = True
    ) -> int:
        """Fan one logical message out to every replica directly, zero-copy.

        The same :class:`Message` instance is shared by every recipient —
        ``estimate_size`` ran once at construction and the checksum is
        stamped once here instead of once per destination.  Copy-on-write
        semantics are preserved: a corrupting link damages a *copy* of the
        frame (``FaultInjector.corrupted_copy``) and duplicates travel as
        clones, so per-link faults never leak into other recipients.
        Fault decisions are drawn per destination in sorted-pid order,
        exactly as the per-``send`` path would, keeping RNG streams — and
        therefore whole runs — bit-identical.

        Returns the number of send attempts (including unroutable ones),
        which callers use for traffic accounting.
        """
        processes = self._processes
        reliable = self.reliable
        faults = self.faults
        attempts = 0
        if reliable is not None:
            # Reliable channels frame per destination (each link has its
            # own sequence space); the inner message object stays shared.
            for dst in self._replicas:
                if dst == src and not include_self:
                    continue
                attempts += 1
                if dst not in processes:
                    self.unroutable_dropped += 1
                    continue
                reliable.send(src, dst, message)
            return attempts
        if self._coalesce:
            enqueue = self._enqueue_coalesced
            for dst in self._replicas:
                if dst == src and not include_self:
                    continue
                attempts += 1
                if dst not in processes:
                    self.unroutable_dropped += 1
                    continue
                enqueue(src, dst, message)
            return attempts
        if faults is None and type(self.adversary) is NullAdversary:
            fast = self._broadcast_fast(src, message, include_self)
            if fast >= 0:
                return fast
        stamped = False
        schedule = self._schedule_delivery
        for dst in self._replicas:
            if dst == src and not include_self:
                continue
            attempts += 1
            if dst not in processes:
                self.unroutable_dropped += 1
                continue
            if not stamped:
                message.stamp_checksum()
                stamped = True
            if faults is not None:
                decision = faults.decide(src, dst, message, self.sim.now)
                if decision.drop:
                    continue
                wire = message
                if decision.corrupt:
                    wire = FaultInjector.corrupted_copy(message)
                schedule(src, dst, wire, decision.extra_delay_us)
                if decision.duplicate:
                    schedule(src, dst, message.clone(), 0)
            else:
                schedule(src, dst, message, 0)
        return attempts

    def _broadcast_fast(self, src: int, message: Message, include_self: bool) -> int:
        """Fan-out without per-destination model calls.

        Applies when nothing perturbs the pipeline per destination — no
        faults, a null adversary, and uniform NIC rates: the k-th egress
        departure is then exactly ``first_departure + k * serialisation``
        and the ingress delay is one shared value, so the per-destination
        work collapses to one jitter draw (batched via ``one_way_block``,
        preserving stream order) and one ``schedule``.  Returns -1 when the
        preconditions do not hold and the general loop must run instead.
        """
        bandwidth = self.bandwidth
        if bandwidth.enabled and isinstance(bandwidth._rates, dict):
            return -1
        if include_self or src not in self._replicas:
            dsts = self._replicas
        else:
            dsts = [dst for dst in self._replicas if dst != src]
        count = len(dsts)
        if not count:
            return 0
        message.stamp_checksum()
        sim = self.sim
        now = sim._now
        size = message.size
        if bandwidth.enabled:
            queue = bandwidth.egress(src)
            ser = queue.serialisation_us(size)
            free = queue._free_at
            start = now if now > free else free
            queue._free_at = start + count * ser
            queue.bytes_total += count * size
            ingress = bandwidth.ingress(src).serialisation_us(size)
            delay = start - now + ser + ingress
        else:
            ser = 0
            delay = 0
        props = self.latency.one_way_block(src, dsts)
        deliver = self._deliver_clean
        local = self._local_pids
        capture = self._capture
        items = []
        for dst, prop in zip(dsts, props):
            if local is not None and dst not in local:
                capture(src, dst, now + delay + prop, message)
            else:
                items.append((delay + prop, partial(deliver, src, dst, message)))
            delay += ser
        # Deliveries run at priority src+1: at any shared instant the
        # destination processes timers/CPU completions (priority 0) first,
        # then deliveries ordered by sender pid — a canonical order that no
        # cross-shard insertion race can perturb.
        sim.schedule_block(items, priority=src + 1)
        return count

    # ------------------------------------------------------------------
    # Wire-frame coalescing
    # ------------------------------------------------------------------
    def _enqueue_coalesced(self, src: int, dst: int, message: Message) -> None:
        """Park ``message`` in the (src, dst) outbox until the flush."""
        key = (src, dst)
        box = self._outboxes.get(key)
        if box is None:
            box = self._outboxes[key] = []
        box.append(message)
        self.wire_stats.messages_sent += 1
        if self._coalesce_window_us == 0:
            self.sim.mark_instant_dirty()
        elif src not in self._flush_timers:
            # One flush timer per *sender* per burst: the sender's own
            # first enqueue arms it, so a node's flush times are a pure
            # function of its own timeline.  (A cluster-global timer
            # would couple every sender's flush to whoever enqueued
            # first — physically odd for per-NIC batching, and it would
            # break the sender-side-only property shard workers rely on.)
            self._flush_timers.add(src)
            self.sim.schedule(
                self._coalesce_window_us, partial(self._window_flush, src)
            )

    def _window_flush(self, src: int) -> None:
        self._flush_timers.discard(src)
        keys = [key for key in self._outboxes if key[0] == src]
        if not keys:
            # drain_pending beat the timer to these outboxes; nothing to do.
            return
        self.wire_stats.flushes += 1
        flush_link = self._flush_link
        for key in sorted(keys):
            flush_link(key[0], key[1], self._outboxes.pop(key))

    def _flush_outboxes(self) -> None:
        """Send every dirty link's outbox as one physical frame per link.

        Links flush in sorted (src, dst) order so the fault/latency RNG
        stream — and therefore the whole run — is deterministic.
        """
        boxes = self._outboxes
        if not boxes:
            return
        self._outboxes = {}
        self.wire_stats.flushes += 1
        flush_link = self._flush_link
        for key in sorted(boxes):
            flush_link(key[0], key[1], boxes[key])

    def _flush_link(self, src: int, dst: int, msgs: List[Message]) -> None:
        stats = self.wire_stats
        if len(msgs) == 1:
            # A lone message needs no bundle wrapper: it IS the frame.
            frame = msgs[0]
        else:
            frame = Message(
                BUNDLE_KIND,
                tuple(msgs),
                BUNDLE_HEADER_BYTES + sum(m.size for m in msgs),
            )
            stats.bundles_sent += 1
            stats.messages_coalesced += len(msgs)
        stats.frames_sent += 1
        frame.stamp_checksum()
        if self.faults is not None:
            # One fault draw per physical frame: dropping or corrupting the
            # frame takes every bundled message with it.
            decision = self.faults.decide(src, dst, frame, self.sim.now)
            if decision.drop:
                return
            wire = frame
            if decision.corrupt:
                wire = FaultInjector.corrupted_copy(frame)
            self._schedule_delivery(src, dst, wire, decision.extra_delay_us)
            if decision.duplicate:
                self._schedule_delivery(src, dst, frame.clone(), 0)
        else:
            self._schedule_delivery(src, dst, frame, 0)

    def _transmit(self, src: int, dst: int, message: Message) -> None:
        """Put one frame on the wire: stamp its checksum, apply link
        faults, and schedule each surviving copy's delivery."""
        if dst not in self._processes:
            self.unroutable_dropped += 1
            return
        if self._coalesce:
            self._enqueue_coalesced(src, dst, message)
            return
        message.stamp_checksum()
        if self.faults is not None:
            decision = self.faults.decide(src, dst, message, self.sim.now)
            if decision.drop:
                return
            wire = message
            if decision.corrupt:
                wire = FaultInjector.corrupted_copy(message)
            self._schedule_delivery(src, dst, wire, decision.extra_delay_us)
            if decision.duplicate:
                # The duplicate takes its own (jittered) path through the
                # network, so it may arrive before or after the original.
                self._schedule_delivery(src, dst, message.clone(), 0)
        else:
            self._schedule_delivery(src, dst, message, 0)

    def _schedule_delivery(
        self, src: int, dst: int, message: Message, extra_delay_us: int
    ) -> None:
        sim = self.sim
        size = message.size
        departure = self.bandwidth.departure_time(src, size)
        propagation = self.latency.one_way_us(src, dst)
        extra = self.adversary.extra_delay_us(src, dst, size, sim.now)
        if extra:
            # With zero adversarial delay the clamp is a no-op, so the GST
            # lookup only runs when there is something to clamp.
            if self.config.clamp_after_gst and sim.now >= self.adversary.gst():
                # After GST the adversary cannot stretch delays past Δ.
                extra = min(extra, max(0, self.config.delta_us - propagation))
        ingress = self.bandwidth.ingress_delay_us(dst, size)
        arrival = departure + propagation + extra + ingress + extra_delay_us
        local = self._local_pids
        if local is not None and dst not in local:
            # Shard worker: the destination lives elsewhere.  The arrival
            # time above consumed exactly the sender-side state a
            # single-process run would have (egress queue, jitter stream,
            # fault draw happened in the caller), so handing the frame to
            # the barrier keeps both sides bit-identical.
            self._capture(src, dst, arrival, message)
            return
        # ``arrival >= now`` by construction (departure is never in the
        # past and the remaining terms are non-negative), so this can skip
        # schedule_at's bounds check.  Priority src+1 gives same-instant
        # deliveries a canonical sender-pid order (see _broadcast_fast).
        sim.schedule_light(
            arrival - sim.now,
            partial(self._deliver, src, dst, message),
            priority=src + 1,
        )

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        process = self._processes.get(dst)
        if process is None:
            return
        checksum = message.checksum
        if checksum and checksum != message.expected_checksum():
            # Damaged in flight: indistinguishable from loss at this layer.
            # A damaged bundle loses every message it carried.
            self.corrupt_dropped += 1
            if self.faults is not None:
                self.faults.stats.corrupt_detected += 1
            return
        if message.kind == BUNDLE_KIND:
            self._deliver_bundle(src, dst, message, process)
            return
        if self.reliable is not None and message.kind in (FRAME_KIND, ACK_KIND):
            self.reliable.on_receive(src, dst, message, process)
            return
        dissemination = self.dissemination
        if dissemination is not None and message.kind in dissemination.kinds:
            # Relay envelope: the strategy forwards down the tree / pushes
            # to gossip peers, then delivers the inner message itself (it
            # also handles crashed relays, counting the starved subtree).
            dissemination.on_envelope(self, src, dst, message)
            return
        if process.crashed:
            return
        # ``deliver_local`` inlined — this is the per-message hot path.
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        stats = self._link_stats
        if stats is not None:
            # ``_count_link`` inlined: a per-message call is measurable
            # against the observability overhead budget.
            try:
                counts = stats[(src << 20) | dst]
            except KeyError:
                counts = stats[(src << 20) | dst] = [0, 0]
            counts[0] += 1
            counts[1] += message.size
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(self.sim.now, src, dst, message)
        process.deliver(message, src)

    def _deliver_bundle(
        self, src: int, dst: int, bundle: Message, process: SimProcess
    ) -> None:
        """Unpack one coalesced frame at its destination.

        Reliable-layer frames/acks are routed to the reliable layer (whose
        acks go back through ``_transmit`` and therefore coalesce on the
        return path); application messages are handed to the process in
        one batch so the CPU model charges a single queueing decision for
        the frame.
        """
        reliable = self.reliable
        now = self.sim.now
        trace_hooks = self._trace_hooks
        stats = self._link_stats
        dissemination = self.dissemination
        batch: List[Message] = []
        for inner in bundle.payload:
            if reliable is not None and inner.kind in (FRAME_KIND, ACK_KIND):
                reliable.on_receive(src, dst, inner, process)
            elif dissemination is not None and inner.kind in dissemination.kinds:
                dissemination.on_envelope(self, src, dst, inner)
            elif not process.crashed:
                self.messages_delivered += 1
                self.bytes_delivered += inner.size
                if stats is not None:
                    try:
                        counts = stats[(src << 20) | dst]
                    except KeyError:
                        counts = stats[(src << 20) | dst] = [0, 0]
                    counts[0] += 1
                    counts[1] += inner.size
                if trace_hooks:
                    for hook in trace_hooks:
                        hook(now, src, dst, inner)
                batch.append(inner)
        if batch and not process.crashed:
            process.deliver_batch(batch, src)

    def _deliver_clean(self, src: int, dst: int, message: Message) -> None:
        """Delivery for fast-path broadcasts: the checksum was stamped by
        the sender an instant ago and no fault injector exists on this
        path, so re-verifying it (and sniffing for reliable-layer frames,
        which imply a fault injector) would be pure overhead."""
        process = self._processes.get(dst)
        if process is None or process.crashed:
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        stats = self._link_stats
        if stats is not None:
            try:
                counts = stats[(src << 20) | dst]
            except KeyError:
                counts = stats[(src << 20) | dst] = [0, 0]
            counts[0] += 1
            counts[1] += message.size
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(self.sim.now, src, dst, message)
        process.deliver(message, src)

    def deliver_local(
        self, src: int, dst: int, message: Message, process: SimProcess
    ) -> None:
        """Hand an application-level message to its destination process,
        updating delivery counters and firing trace hooks."""
        dissemination = self.dissemination
        if dissemination is not None and message.kind in dissemination.kinds:
            # Reliable-layer frames reach here bypassing ``_deliver``; an
            # envelope payload must still be routed through the strategy.
            dissemination.on_envelope(self, src, dst, message)
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        if self._link_stats is not None:
            self._count_link(src, dst, message.size)
        for hook in self._trace_hooks:
            hook(self.sim.now, src, dst, message)
        process.deliver(message, src)


__all__ = ["Network", "NetworkConfig", "TraceHook"]
