"""Deterministic fault injection: lossy links and crash–recovery schedules.

The paper *assumes* reliable authenticated channels and crash-free correct
processes (§II-A).  A production SMR system has to implement both, so the
chaos engine lets experiments drop that assumption and check the protocol's
invariants survive:

- a :class:`FaultPlan` is pure data — per-link loss/duplication/reordering/
  corruption rates with time windows (:class:`LinkFault`) plus scheduled
  crash/recover events (:class:`CrashEvent`) — so it can live inside an
  :class:`~repro.harness.config.ExperimentConfig` and be swept over like
  any other parameter;
- a :class:`FaultInjector` executes the link faults inside the
  :class:`~repro.net.network.Network`, drawing every coin flip from a
  per-link seeded stream so the same seed replays the same fault sequence
  bit-for-bit.

Crash events are *interpreted by the cluster builder* (which owns the
processes), not by the injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.message import Message
from repro.sim.engine import MILLISECONDS
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class LinkFault:
    """One fault rule, applied to every transmission it matches.

    ``src``/``dst`` restrict the rule to particular endpoints (``None``
    matches every pid); ``start_us``/``end_us`` bound the active window
    (``end_us=None`` means until the end of the run).  Rates are
    independent per-message probabilities in ``[0, 1]``.
    """

    #: Probability the message is silently lost.
    drop_rate: float = 0.0
    #: Probability a second copy is delivered (with its own latency draw).
    duplicate_rate: float = 0.0
    #: Probability the message is held back by an extra random delay,
    #: letting later traffic overtake it.
    reorder_rate: float = 0.0
    #: Maximum extra delay applied to reordered messages.
    reorder_delay_us: int = 50 * MILLISECONDS
    #: Probability the payload is corrupted in flight (detected by the
    #: frame checksum and treated as loss by the reliable layer).
    corrupt_rate: float = 0.0
    src: Optional[Tuple[int, ...]] = None
    dst: Optional[Tuple[int, ...]] = None
    start_us: int = 0
    end_us: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        # Normalise endpoint selectors to sorted tuples so to_dict() output
        # (and the sweep cache content hash) is canonical.
        for name in ("src", "dst"):
            sel = getattr(self, name)
            if sel is not None:
                object.__setattr__(self, name, tuple(sorted(int(p) for p in sel)))

    def matches(self, src: int, dst: int, now: int) -> bool:
        if now < self.start_us:
            return False
        if self.end_us is not None and now >= self.end_us:
            return False
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        return True


@dataclass(frozen=True)
class CrashEvent:
    """Crash pid at ``crash_at_us``; recover it at ``recover_at_us``
    (``None`` = crash-stop for the rest of the run)."""

    pid: int
    crash_at_us: int
    recover_at_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.crash_at_us < 0:
            raise ValueError("crash_at_us must be non-negative")
        if self.recover_at_us is not None and self.recover_at_us <= self.crash_at_us:
            raise ValueError("recover_at_us must be after crash_at_us")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serialisable fault schedule for one run."""

    links: Tuple[LinkFault, ...] = ()
    crashes: Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(
            self,
            "crashes",
            tuple(sorted(self.crashes, key=lambda e: (e.crash_at_us, e.pid))),
        )

    @property
    def empty(self) -> bool:
        return not self.links and not self.crashes

    def validate_for(
        self, n_nodes: int, f: int, byzantine: Sequence[int] = ()
    ) -> None:
        """Reject schedules the model cannot honour: unknown pids, or a
        joint adversary over the resilience bound ``f``.

        Crashed and Byzantine/attack replicas share one budget: at every
        moment, ``|byzantine ∪ currently-down| <= f`` must hold (a crashed
        Byzantine replica counts once, not twice).  ``byzantine`` defaults
        to empty, which reduces to the historical crashes-only bound.
        """
        byz = {int(pid) for pid in byzantine}
        for pid in byz:
            if not 0 <= pid < n_nodes:
                raise ValueError(f"byzantine set contains unknown pid {pid}")
        if len(byz) > f:
            raise ValueError(
                f"{len(byz)} Byzantine/attack replicas exceed f={f}"
            )
        for ev in self.crashes:
            if not 0 <= ev.pid < n_nodes:
                raise ValueError(f"crash event targets unknown pid {ev.pid}")
        # Worst-case joint adversary at each crash/recover moment.
        moments = sorted(
            {ev.crash_at_us for ev in self.crashes}
            | {ev.recover_at_us for ev in self.crashes if ev.recover_at_us}
        )
        for t in moments:
            down = {
                ev.pid
                for ev in self.crashes
                if ev.crash_at_us <= t
                and (ev.recover_at_us is None or t < ev.recover_at_us)
            }
            if len(down) > f:
                raise ValueError(
                    f"{len(down)} replicas down simultaneously at t={t}us "
                    f"exceeds f={f}"
                )
            joint = len(down | byz)
            if joint > f:
                raise ValueError(
                    f"{len(down - byz)} crashed plus {len(byz)} "
                    f"Byzantine/attack replicas at t={t}us jointly exceed "
                    f"f={f}"
                )

    # ------------------------------------------------------------------
    # Serialization — plans ride inside ExperimentConfig across process
    # boundaries and into the sweep cache's content hash.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        def link_dict(lf: LinkFault) -> Dict[str, Any]:
            return {
                "drop_rate": lf.drop_rate,
                "duplicate_rate": lf.duplicate_rate,
                "reorder_rate": lf.reorder_rate,
                "reorder_delay_us": lf.reorder_delay_us,
                "corrupt_rate": lf.corrupt_rate,
                "src": list(lf.src) if lf.src is not None else None,
                "dst": list(lf.dst) if lf.dst is not None else None,
                "start_us": lf.start_us,
                "end_us": lf.end_us,
            }

        return {
            "links": [link_dict(lf) for lf in self.links],
            "crashes": [
                {
                    "pid": ev.pid,
                    "crash_at_us": ev.crash_at_us,
                    "recover_at_us": ev.recover_at_us,
                }
                for ev in self.crashes
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        def build(kind, raw):
            known = {f.name for f in fields(kind)}
            unknown = set(raw) - known
            if unknown:
                raise ValueError(f"unknown {kind.__name__} fields: {sorted(unknown)}")
            fixed = dict(raw)
            for key in ("src", "dst"):
                if fixed.get(key) is not None and key in known:
                    fixed[key] = tuple(fixed[key])
            return kind(**fixed)

        return cls(
            links=tuple(build(LinkFault, raw) for raw in data.get("links", ())),
            crashes=tuple(build(CrashEvent, raw) for raw in data.get("crashes", ())),
        )


@dataclass
class FaultDecision:
    """What the injector decided for one physical transmission."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    extra_delay_us: int = 0


@dataclass
class FaultStats:
    """Counters the chaos report surfaces after a run.

    ``duplicated``/``corrupted`` count *logical messages* hit at least
    once: the reliable layer retransmits the same frame object until it is
    acked, so without uid-level dedup a message corrupted on two physical
    transmissions (or duplicated on a retransmit after its first copy was
    already suppressed) would inflate the counts.  The raw per-transmission
    event totals stay available as ``*_wire_events``.
    """

    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0
    corrupt_detected: int = 0
    duplicate_wire_events: int = 0
    corrupt_wire_events: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "corrupted": self.corrupted,
            "corrupt_detected": self.corrupt_detected,
            "duplicate_wire_events": self.duplicate_wire_events,
            "corrupt_wire_events": self.corrupt_wire_events,
        }


class FaultInjector:
    """Executes a :class:`FaultPlan`'s link faults deterministically.

    Each (src, dst) link draws from its own named stream of the run's
    :class:`~repro.sim.rng.RngRegistry`, so adding traffic on one link
    never perturbs the fault sequence of another.
    """

    def __init__(self, plan: FaultPlan, rng: RngRegistry) -> None:
        self.plan = plan
        self._rng = rng
        self.stats = FaultStats()
        # uids of messages already counted in the per-message counters
        # (retransmissions re-send the same Message object).
        self._duplicated_uids: set = set()
        self._corrupted_uids: set = set()

    def _stream(self, src: int, dst: int):
        return self._rng.get("faults", f"{src}->{dst}")

    def decide(self, src: int, dst: int, message: Message, now: int) -> FaultDecision:
        decision = FaultDecision()
        active = [lf for lf in self.plan.links if lf.matches(src, dst, now)]
        if not active:
            return decision
        stream = self._stream(src, dst)
        for lf in active:
            if lf.drop_rate > 0.0 and stream.random() < lf.drop_rate:
                decision.drop = True
            if lf.duplicate_rate > 0.0 and stream.random() < lf.duplicate_rate:
                decision.duplicate = True
            if lf.corrupt_rate > 0.0 and stream.random() < lf.corrupt_rate:
                decision.corrupt = True
            if lf.reorder_rate > 0.0 and stream.random() < lf.reorder_rate:
                decision.extra_delay_us += int(
                    stream.integers(1, max(2, lf.reorder_delay_us + 1))
                )
        if decision.drop:
            self.stats.dropped += 1
            # A dropped message neither duplicates nor reorders.
            decision.duplicate = decision.corrupt = False
            decision.extra_delay_us = 0
            return decision
        if decision.duplicate:
            self.stats.duplicate_wire_events += 1
            if message.uid not in self._duplicated_uids:
                self._duplicated_uids.add(message.uid)
                self.stats.duplicated += 1
        if decision.corrupt:
            self.stats.corrupt_wire_events += 1
            if message.uid not in self._corrupted_uids:
                self._corrupted_uids.add(message.uid)
                self.stats.corrupted += 1
        if decision.extra_delay_us:
            self.stats.reordered += 1
        return decision

    @staticmethod
    def corrupted_copy(message: Message) -> Message:
        """A bit-flipped copy: the checksum no longer matches, so the
        receiving end detects the damage and treats the frame as lost."""
        bad = message.clone()
        bad.checksum ^= 0x1
        return bad


class _BufferedUniform:
    """Blocked view of one per-link uniform stream.

    ``Generator.random(n)`` yields exactly the same variates as ``n``
    scalar ``random()`` calls, so refilling a small buffer keeps the
    per-link fault sequence bit-identical while amortising the numpy
    dispatch overhead over 128 draws.  Only safe while the stream is
    consumed through ``random()`` alone: an interleaved ``integers()``
    call would see a bitstream the scalar path had not yet consumed.
    """

    __slots__ = ("_gen", "_buf", "_pos")

    def __init__(self, gen) -> None:
        self._gen = gen
        self._buf: List[float] = []
        self._pos = 0

    def random(self) -> float:
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self._gen.random(128).tolist()
            pos = 0
        self._pos = pos + 1
        return buf[pos]


class VectorFaultInjector(FaultInjector):
    """Batched-draw :class:`FaultInjector` for the vector backend.

    Two accelerations, both transparent to the draw sequence:

    - per-link rule lists are pre-filtered by endpoint selectors once,
      so ``decide`` only re-checks the (cheap) time windows per message;
    - when no rule in the plan can ever draw a reorder delay, each link's
      uniform stream is consumed through a :class:`_BufferedUniform`
      block.  Plans with ``reorder_rate > 0`` interleave ``integers()``
      draws into the same bitstream, where block-buffering would change
      consumption order — those fall back to scalar draws, keeping
      determinism by construction.
    """

    def __init__(self, plan: FaultPlan, rng: RngRegistry) -> None:
        super().__init__(plan, rng)
        self._buffer_ok = all(lf.reorder_rate == 0.0 for lf in plan.links)
        self._streams: Dict[Tuple[int, int], Any] = {}
        self._link_rules: Dict[Tuple[int, int], Tuple[LinkFault, ...]] = {}

    def _stream(self, src: int, dst: int):
        key = (src, dst)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._rng.get("faults", f"{src}->{dst}")
            if self._buffer_ok:
                stream = _BufferedUniform(stream)
            self._streams[key] = stream
        return stream

    def _rules(self, src: int, dst: int) -> Tuple[LinkFault, ...]:
        key = (src, dst)
        rules = self._link_rules.get(key)
        if rules is None:
            rules = tuple(
                lf
                for lf in self.plan.links
                if (lf.src is None or src in lf.src)
                and (lf.dst is None or dst in lf.dst)
            )
            self._link_rules[key] = rules
        return rules

    def decide(self, src: int, dst: int, message: Message, now: int) -> FaultDecision:
        # Mirrors FaultInjector.decide with the endpoint matching hoisted
        # into the per-link rule cache; draw order is unchanged.
        decision = FaultDecision()
        active = [
            lf
            for lf in self._rules(src, dst)
            if lf.start_us <= now and (lf.end_us is None or now < lf.end_us)
        ]
        if not active:
            return decision
        stream = self._stream(src, dst)
        for lf in active:
            if lf.drop_rate > 0.0 and stream.random() < lf.drop_rate:
                decision.drop = True
            if lf.duplicate_rate > 0.0 and stream.random() < lf.duplicate_rate:
                decision.duplicate = True
            if lf.corrupt_rate > 0.0 and stream.random() < lf.corrupt_rate:
                decision.corrupt = True
            if lf.reorder_rate > 0.0 and stream.random() < lf.reorder_rate:
                decision.extra_delay_us += int(
                    stream.integers(1, max(2, lf.reorder_delay_us + 1))
                )
        if decision.drop:
            self.stats.dropped += 1
            decision.duplicate = decision.corrupt = False
            decision.extra_delay_us = 0
            return decision
        if decision.duplicate:
            self.stats.duplicate_wire_events += 1
            if message.uid not in self._duplicated_uids:
                self._duplicated_uids.add(message.uid)
                self.stats.duplicated += 1
        if decision.corrupt:
            self.stats.corrupt_wire_events += 1
            if message.uid not in self._corrupted_uids:
                self._corrupted_uids.add(message.uid)
                self.stats.corrupted += 1
        if decision.extra_delay_us:
            self.stats.reordered += 1
        return decision


__all__ = [
    "LinkFault",
    "CrashEvent",
    "FaultPlan",
    "FaultDecision",
    "FaultStats",
    "FaultInjector",
    "VectorFaultInjector",
]
