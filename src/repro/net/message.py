"""Wire messages and size accounting.

Messages carry a ``kind`` tag used for handler dispatch, an arbitrary
``payload``, and a wire ``size`` in bytes.  Sizes drive the bandwidth model;
:func:`estimate_size` approximates a compact binary encoding (protobuf-like)
so callers rarely need to specify sizes by hand.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Dict, Tuple

# Fixed per-message framing overhead: kind tag, instance ids, sender id,
# authentication MAC — roughly what the Rust prototype's header costs.
HEADER_BYTES = 40

#: Kind tag of a coalesced wire frame: several same-instant messages for one
#: (src, dst) link travelling as a single physical frame (one event, one
#: latency/bandwidth draw, one checksum, one fault draw).  The payload is a
#: tuple of the inner :class:`Message` objects.
BUNDLE_KIND = "net.bundle"
#: Frame overhead of a bundle: length prefix + frame checksum + flags.
BUNDLE_HEADER_BYTES = 24

_msg_counter = itertools.count()


def estimate_size(payload: Any) -> int:
    """Approximate the serialised size of a payload in bytes.

    The estimate models a compact binary codec: 8 bytes per int/float,
    raw length for bytes/str, recursive sum plus 2 bytes of framing per
    container element.  Objects exposing ``wire_size`` report themselves.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode())
    wire = getattr(payload, "wire_size", None)
    if wire is not None:
        return int(wire() if callable(wire) else wire)
    if isinstance(payload, dict):
        return sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(v) + 2 for v in payload)
    # Fallback for dataclass-like objects.
    attrs = getattr(payload, "__dict__", None)
    if attrs is not None:
        return sum(estimate_size(v) + 2 for v in attrs.values())
    # ``__slots__``-only objects have no ``__dict__``; walk their declared
    # slots (including inherited ones) so they don't silently cost a flat
    # 16 bytes regardless of content.
    slot_names = _slot_names(type(payload))
    if slot_names:
        total = 0
        for name in slot_names:
            try:
                total += estimate_size(getattr(payload, name)) + 2
            except AttributeError:
                total += 2  # declared but unset slot: framing only
        return total
    return 16


_slot_cache: Dict[type, Tuple[str, ...]] = {}


def _slot_names(cls: type) -> Tuple[str, ...]:
    """All ``__slots__`` attribute names declared along ``cls``'s MRO."""
    cached = _slot_cache.get(cls)
    if cached is None:
        names = []
        for base in cls.__mro__:
            slots = base.__dict__.get("__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for name in slots:
                if name not in ("__weakref__", "__dict__"):
                    names.append(name)
        cached = _slot_cache[cls] = tuple(names)
    return cached


# CRC memo: checksums depend only on (kind, size) and the same handful of
# kinds at the same handful of sizes recur millions of times per run.
_crc_cache: Dict[Tuple[str, int], int] = {}


class Message:
    """A network message.

    ``size`` defaults to ``HEADER_BYTES + estimate_size(payload)``, computed
    once per logical message at construction — clones and shared broadcast
    frames reuse it.  The ``uid`` is a globally unique id used by delivery
    tracing and tests.  A plain ``__slots__`` class: messages are allocated
    on every hop and dataclass machinery showed up in profiles.
    """

    __slots__ = ("kind", "payload", "size", "uid", "checksum")

    def __init__(
        self,
        kind: str,
        payload: Any = None,
        size: int = 0,
        uid: int | None = None,
        checksum: int = 0,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.size = size if size > 0 else HEADER_BYTES + estimate_size(payload)
        self.uid = next(_msg_counter) if uid is None else uid
        #: Frame checksum, stamped by the network at transmit time (protocol
        #: code mutates ``size`` after construction for piggybacks, so the
        #: checksum has to be taken when the message actually hits the wire).
        #: 0 means "never transmitted"; a corrupting link flips bits here so
        #: the receiver can detect the damage.
        self.checksum = checksum

    def expected_checksum(self) -> int:
        """CRC over the frame header fields the simulation models."""
        key = (self.kind, self.size)
        crc = _crc_cache.get(key)
        if crc is None:
            if len(_crc_cache) >= 1 << 16:
                _crc_cache.clear()
            crc = _crc_cache[key] = (
                zlib.crc32(f"{self.kind}|{self.size}".encode()) or 1
            )
        return crc

    def stamp_checksum(self) -> None:
        self.checksum = self.expected_checksum()

    def verify_checksum(self) -> bool:
        """True when the frame arrived undamaged (or was never stamped)."""
        return self.checksum == 0 or self.checksum == self.expected_checksum()

    def clone(self) -> "Message":
        """A distinct message instance with the same kind/payload/size."""
        copy = Message(self.kind, self.payload, self.size)
        copy.checksum = self.checksum
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.kind!r}, size={self.size})"


__all__ = [
    "Message",
    "estimate_size",
    "HEADER_BYTES",
    "BUNDLE_KIND",
    "BUNDLE_HEADER_BYTES",
]
