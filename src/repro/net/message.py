"""Wire messages and size accounting.

Messages carry a ``kind`` tag used for handler dispatch, an arbitrary
``payload``, and a wire ``size`` in bytes.  Sizes drive the bandwidth model;
:func:`estimate_size` approximates a compact binary encoding (protobuf-like)
so callers rarely need to specify sizes by hand.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

# Fixed per-message framing overhead: kind tag, instance ids, sender id,
# authentication MAC — roughly what the Rust prototype's header costs.
HEADER_BYTES = 40

_msg_counter = itertools.count()


def estimate_size(payload: Any) -> int:
    """Approximate the serialised size of a payload in bytes.

    The estimate models a compact binary codec: 8 bytes per int/float,
    raw length for bytes/str, recursive sum plus 2 bytes of framing per
    container element.  Objects exposing ``wire_size`` report themselves.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode())
    wire = getattr(payload, "wire_size", None)
    if wire is not None:
        return int(wire() if callable(wire) else wire)
    if isinstance(payload, dict):
        return sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(v) + 2 for v in payload)
    # Fallback for dataclass-like objects.
    attrs = getattr(payload, "__dict__", None)
    if attrs is not None:
        return sum(estimate_size(v) + 2 for v in attrs.values())
    return 16


@dataclass
class Message:
    """A network message.

    ``size`` defaults to ``HEADER_BYTES + estimate_size(payload)``.  The
    ``uid`` is a globally unique id used by delivery tracing and tests.
    """

    kind: str
    payload: Any = None
    size: int = 0
    uid: int = field(default_factory=lambda: next(_msg_counter))
    #: Frame checksum, stamped by the network at transmit time (protocol
    #: code mutates ``size`` after construction for piggybacks, so the
    #: checksum has to be taken when the message actually hits the wire).
    #: 0 means "never transmitted"; a corrupting link flips bits here so
    #: the receiver can detect the damage.
    checksum: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = HEADER_BYTES + estimate_size(self.payload)

    def expected_checksum(self) -> int:
        """CRC over the frame header fields the simulation models."""
        return zlib.crc32(f"{self.kind}|{self.size}".encode()) or 1

    def stamp_checksum(self) -> None:
        self.checksum = self.expected_checksum()

    def verify_checksum(self) -> bool:
        """True when the frame arrived undamaged (or was never stamped)."""
        return self.checksum == 0 or self.checksum == self.expected_checksum()

    def clone(self) -> "Message":
        """A distinct message instance with the same kind/payload/size."""
        copy = Message(self.kind, self.payload, self.size)
        copy.checksum = self.checksum
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.kind!r}, size={self.size})"


__all__ = ["Message", "estimate_size", "HEADER_BYTES"]
