"""Cluster topologies: pid -> region placement.

§VI of the paper distributes servers equally between three data centres
(Oregon, Ireland, Sydney).  :class:`Topology` produces that placement for
replicas, and places auxiliary processes (clients, attackers) in arbitrary
regions — needed for the Fig. 1 scenario where the attacker's location is
what makes the attack possible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: The evaluation platform of §VI.
EVAL_REGIONS: List[str] = ["oregon", "ireland", "sydney"]

#: The motivation scenario of Fig. 1 (Alice/Tokyo, Mallory/Singapore,
#: Carole/São Paulo — a triple with a triangle-inequality violation).
FIG1_REGIONS: List[str] = ["tokyo", "singapore", "saopaulo"]


class Topology:
    """Assigns process ids to regions.

    Replica pids are ``0..n_replicas-1`` and are spread round-robin over
    ``regions`` (equal distribution as in the paper).  Additional processes
    are added with :meth:`place`.
    """

    def __init__(self, n_replicas: int, regions: Sequence[str] | None = None) -> None:
        if n_replicas <= 0:
            raise ValueError("need at least one replica")
        self.regions = list(regions or EVAL_REGIONS)
        self.n_replicas = n_replicas
        self.placement: Dict[int, str] = {
            pid: self.regions[pid % len(self.regions)] for pid in range(n_replicas)
        }
        self._next_pid = n_replicas

    def place(self, region: str) -> int:
        """Allocate a new pid in ``region`` (clients, attackers, ...)."""
        pid = self._next_pid
        self._next_pid += 1
        self.placement[pid] = region
        return pid

    def replicas(self) -> List[int]:
        return list(range(self.n_replicas))

    def in_region(self, region: str) -> List[int]:
        return [pid for pid, r in self.placement.items() if r == region]

    def region_of(self, pid: int) -> str:
        return self.placement[pid]

    def __len__(self) -> int:
        return len(self.placement)


__all__ = ["Topology", "EVAL_REGIONS", "FIG1_REGIONS"]
