"""Ack/retransmit channels: *implementing* §II-A instead of assuming it.

The paper's model gives every pair of correct processes a reliable
authenticated channel.  Over a lossy transport that abstraction has to be
built, and its cost (acks, retransmissions, duplicate suppression) is part
of any honest end-to-end latency account.  :class:`ReliableLayer` sits
between :meth:`SimProcess.send` and the lossy :class:`Network`:

- every application message is wrapped in a ``net.frame`` carrying a
  per-(src, dst) sequence number; the receiver acks each frame and
  suppresses duplicates, so the application sees exactly-once delivery;
- unacked frames are retransmitted with exponential backoff from a
  *bounded* resend window; excess sends queue in a (bounded) backlog and
  a frame that exhausts ``max_retries`` is abandoned (the peer is down —
  crash recovery, not the transport, is responsible for catching it up);
- corrupted frames fail the :class:`~repro.net.message.Message` checksum
  at delivery and are treated as loss: no ack, so the sender retransmits.

All timers run on the simulator, all state is keyed by (src, dst), and no
randomness is used, so runs stay bit-deterministic.

Interaction with link-level coalescing: every physical transmission this
layer makes — first sends, retransmissions, and acks — goes through
:meth:`Network._transmit`, which is the same gate application traffic
uses.  When the network has coalescing enabled, those frames and acks
land in the per-(src, dst) outbox and ride the same wire bundles as
everything else destined for that link in the same window: an ack
travelling back to a sender piggybacks on whatever data frames the
receiver owes that peer.  Fault decisions then apply per *bundle*, so a
corrupted bundle fails every inner frame's checksum at once and each is
retransmitted individually after its own timeout.  This layer needs no
special casing for any of that; the regression tests in
``tests/test_reliable.py`` (``TestCoalescedFrames``) pin the behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional, Set, Tuple

from repro.net.message import Message
from repro.sim.engine import Event, MILLISECONDS, SECONDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.sim.process import SimProcess

FRAME_KIND = "net.frame"
ACK_KIND = "net.ack"

#: Frame overhead on the wire: sequence number + checksum echo.
FRAME_HEADER_BYTES = 12
ACK_BYTES = 48


@dataclass
class ReliableConfig:
    """Retransmission tunables (defaults sized for WAN delta ~150 ms)."""

    #: Initial retransmission timeout.  Should dominate one RTT.
    rto_us: int = 60 * MILLISECONDS
    #: Multiplicative backoff applied after every timeout.
    backoff: float = 2.0
    #: Ceiling on the per-frame timeout.
    max_rto_us: int = 1 * SECONDS
    #: Retransmissions before a frame is abandoned (peer presumed down).
    max_retries: int = 8
    #: Bounded resend window: unacked frames in flight per link.
    window: int = 256
    #: Bounded backlog of sends waiting for window space; overflow drops.
    max_backlog: int = 4096


@dataclass
class ReliableStats:
    """Transport overhead counters (the measured cost of §II-A)."""

    data_sends: int = 0
    frames_sent: int = 0  # physical transmissions, including retransmits
    retransmits: int = 0
    acks_sent: int = 0
    delivered: int = 0
    dup_frames: int = 0
    gave_up: int = 0
    backlog_dropped: int = 0
    sender_died: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "data_sends": self.data_sends,
            "frames_sent": self.frames_sent,
            "retransmits": self.retransmits,
            "acks_sent": self.acks_sent,
            "delivered": self.delivered,
            "dup_frames": self.dup_frames,
            "gave_up": self.gave_up,
            "backlog_dropped": self.backlog_dropped,
            "sender_died": self.sender_died,
        }


@dataclass
class _Pending:
    seq: int
    frame: Message
    retries: int = 0
    rto_us: int = 0
    event: Optional[Event] = None


class _SenderLink:
    """Per-(src, dst) sender state: window, backlog, next sequence."""

    __slots__ = ("next_seq", "unacked", "backlog")

    def __init__(self) -> None:
        self.next_seq = 0
        self.unacked: Dict[int, _Pending] = {}
        self.backlog: Deque[Message] = deque()


class _ReceiverLink:
    """Per-(src, dst) receiver state: duplicate suppression."""

    __slots__ = ("cum", "seen")

    def __init__(self) -> None:
        self.cum = 0  # every seq < cum has been delivered
        self.seen: Set[int] = set()

    def accept(self, seq: int) -> bool:
        """Record delivery of ``seq``; False when it is a duplicate."""
        if seq < self.cum or seq in self.seen:
            return False
        self.seen.add(seq)
        while self.cum in self.seen:
            self.seen.discard(self.cum)
            self.cum += 1
        return True


class ReliableLayer:
    """The ack/sequence-number retransmission channel over one network."""

    def __init__(self, network: "Network", config: Optional[ReliableConfig] = None) -> None:
        self.network = network
        self.config = config or ReliableConfig()
        self.stats = ReliableStats()
        self._senders: Dict[Tuple[int, int], _SenderLink] = {}
        self._receivers: Dict[Tuple[int, int], _ReceiverLink] = {}

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        self.stats.data_sends += 1
        link = self._senders.setdefault((src, dst), _SenderLink())
        if len(link.unacked) >= self.config.window:
            if len(link.backlog) >= self.config.max_backlog:
                self.stats.backlog_dropped += 1
                return
            link.backlog.append(message)
            return
        self._send_frame(src, dst, link, message)

    def _send_frame(self, src: int, dst: int, link: _SenderLink, message: Message) -> None:
        seq = link.next_seq
        link.next_seq += 1
        frame = Message(
            FRAME_KIND,
            {"seq": seq, "inner": message},
            message.size + FRAME_HEADER_BYTES,
        )
        pending = _Pending(seq, frame, rto_us=self.config.rto_us)
        link.unacked[seq] = pending
        self._transmit(src, dst, link, pending)

    def _transmit(self, src: int, dst: int, link: _SenderLink, pending: _Pending) -> None:
        # Retransmissions re-send the *same* frame object: its uid is
        # stable across attempts, which is what lets FaultInjector count
        # a corrupted-then-retransmitted message once, and what lets a
        # coalescing outbox treat the retry like any other queued frame.
        self.stats.frames_sent += 1
        self.network._transmit(src, dst, pending.frame)
        pending.event = self.network.sim.schedule(
            pending.rto_us, lambda: self._on_timeout(src, dst, link, pending)
        )

    def _on_timeout(self, src: int, dst: int, link: _SenderLink, pending: _Pending) -> None:
        if link.unacked.get(pending.seq) is not pending:
            return  # acked in the meantime
        sender = self.network._processes.get(src)
        if sender is None or sender.crashed:
            # The sending process died: its transport state dies with it.
            link.unacked.pop(pending.seq, None)
            self.stats.sender_died += 1
            return
        if pending.retries >= self.config.max_retries:
            link.unacked.pop(pending.seq, None)
            self.stats.gave_up += 1
            self._pump_backlog(src, dst, link)
            return
        pending.retries += 1
        pending.rto_us = min(
            self.config.max_rto_us, int(pending.rto_us * self.config.backoff)
        )
        self.stats.retransmits += 1
        self._transmit(src, dst, link, pending)

    def _pump_backlog(self, src: int, dst: int, link: _SenderLink) -> None:
        while link.backlog and len(link.unacked) < self.config.window:
            self._send_frame(src, dst, link, link.backlog.popleft())

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_receive(
        self, src: int, dst: int, message: Message, process: "SimProcess"
    ) -> None:
        """Entry point from the network for ``net.frame``/``net.ack``."""
        if message.kind == ACK_KIND:
            self._on_ack(sender_pid=dst, acker_pid=src, payload=message.payload)
            return
        if process.crashed:
            return  # a crashed receiver neither acks nor delivers
        payload = message.payload if isinstance(message.payload, dict) else {}
        seq = payload.get("seq")
        inner = payload.get("inner")
        if not isinstance(seq, int) or inner is None:
            return
        # Ack every receipt — the original ack may have been lost, and the
        # sender will retransmit until one gets through.  Under coalescing
        # this ack joins the (dst, src) outbox and shares a wire bundle
        # with any reverse-direction data frames queued this instant.
        self.stats.acks_sent += 1
        self.network._transmit(dst, src, Message(ACK_KIND, {"seq": seq}, ACK_BYTES))
        receiver = self._receivers.setdefault((src, dst), _ReceiverLink())
        if not receiver.accept(seq):
            self.stats.dup_frames += 1
            return
        self.stats.delivered += 1
        self.network.deliver_local(src, dst, inner, process)

    def _on_ack(self, sender_pid: int, acker_pid: int, payload) -> None:
        if not isinstance(payload, dict):
            return
        seq = payload.get("seq")
        link = self._senders.get((sender_pid, acker_pid))
        if link is None or not isinstance(seq, int):
            return
        pending = link.unacked.pop(seq, None)
        if pending is None:
            return  # duplicate ack
        if pending.event is not None:
            pending.event.cancel()
        self._pump_backlog(sender_pid, acker_pid, link)

    # ------------------------------------------------------------------
    def in_flight(self, src: int, dst: int) -> int:
        link = self._senders.get((src, dst))
        return len(link.unacked) if link else 0


__all__ = [
    "ReliableLayer",
    "ReliableConfig",
    "ReliableStats",
    "FRAME_KIND",
    "ACK_KIND",
]
