"""Pluggable broadcast dissemination strategies.

Lyra's BOC and commit phases are broadcast-heavy: with the default
``all2all`` strategy every replica pushes every broadcast to all n-1 peers,
so wire complexity per instance is O(n²) — fine at n=32, dominant at the
paper's n=100.  This module adds two sub-quadratic alternatives behind
``ExperimentConfig.dissemination``:

``all2all``
    Today's behaviour, and the default.  ``Network.broadcast`` runs its
    zero-copy fan-out directly; no envelope, no relay, no extra state.

``tree``
    A deterministic k-ary relay tree *per sender*: the sender transmits to
    its ``fanout`` children, each relay forwards down its subtree, so a
    broadcast costs every node at most ``fanout`` egress transmissions and
    the wire carries exactly n-1 copies (plus envelope headers).  The tree
    is the heap layout over ``[sender] + sorted other replicas``, a pure
    function of (sender, replica set) — no randomness, so runs are
    bit-deterministic and shard-invariant.  When ``fanout >= n-1`` every
    other replica is a direct child and the strategy *degenerates to the
    exact all2all path* (same inner message, same fast-path schedule, same
    digests) — the property the CI twin cell pins at n=4.

``gossip``
    Seeded push gossip: the origin pushes an envelope to ``fanout`` peers;
    each first-time receiver re-pushes to ``fanout`` peers of its own with
    a TTL bound, and duplicate receipts are suppressed by (origin, seq).
    Peer choice is a pure hash of ``(seed, origin, seq, relay)`` — seeded,
    deterministic, and independent of global event interleaving, so gossip
    runs stay bit-deterministic and shard-invariant too.  Losses (an
    unreached node) are repaired by the protocol layer itself: Lyra's
    periodic status exchange pulls missing instances exactly like its
    piggyback/pull recovery path, so gossip trades bounded wire cost for
    occasionally falling back on pull repair.

Relays forward at the *network* layer on delivery (before handing the
inner message to the local process), so relay egress consumes the relay's
bandwidth queue and per-source jitter stream — the cost model sees relayed
traffic exactly like first-class sends.  The inner message is always
delivered with the *origin* as its sender: protocols key state by sender
pid and signatures are the origin's.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

#: Envelope kinds (namespaced like ``net.bundle``/``net.frame``).
TREE_KIND = "net.tree"
GOSSIP_KIND = "net.gossip"

#: Envelope framing overhead on top of the inner message: root/origin id,
#: sequence, TTL, flags.
TREE_HEADER_BYTES = 16
GOSSIP_HEADER_BYTES = 24

#: Valid values of ``ExperimentConfig.dissemination``.
DISSEMINATION_STRATEGIES = ("all2all", "tree", "gossip")


def seeded_sample(token: bytes, pool: List[int], k: int) -> List[int]:
    """``k`` distinct elements of ``pool``, a pure function of ``token``.

    sha256 of the token seeds a 64-bit LCG walk over the shrinking pool:
    deterministic, cheap, and unbiased enough for peer sampling.  Because
    the draw consumes no shared RNG stream, every worker — and every shard
    layout — computes the same sample, which is what keeps gossip runs
    bit-deterministic and shard-invariant.  ``pool`` is consumed in place.
    """
    if len(pool) <= k:
        return pool
    x = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
    chosen: List[int] = []
    for _ in range(k):
        x = (x * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        chosen.append(pool.pop(x % len(pool)))
    return chosen


def make_dissemination(
    name: str, *, fanout: int, seed: int = 0
) -> Optional["Dissemination"]:
    """Build the strategy object for ``name`` (``None`` for all2all: the
    network's native fan-out needs no strategy layer at all)."""
    name = (name or "all2all").lower()
    if name == "all2all":
        return None
    if name == "tree":
        return TreeDissemination(fanout)
    if name == "gossip":
        return GossipDissemination(fanout, seed=seed)
    raise ValueError(
        f"unknown dissemination {name!r}; "
        f"expected one of {DISSEMINATION_STRATEGIES}"
    )


class Dissemination:
    """Interface: fan a broadcast out and relay envelopes at delivery."""

    name = "?"
    #: Envelope kinds the network must route back to :meth:`on_envelope`.
    kinds: Tuple[str, ...] = ()

    def broadcast(
        self, net: "Network", src: int, message: Message, include_self: bool
    ) -> int:
        raise NotImplementedError

    def on_envelope(
        self, net: "Network", src: int, dst: int, envelope: Message
    ) -> None:
        raise NotImplementedError

    def stats_dict(self) -> Dict[str, float]:
        raise NotImplementedError


class TreeDissemination(Dissemination):
    """Deterministic k-ary relay tree per sender (heap layout)."""

    name = "tree"
    kinds = (TREE_KIND,)

    def __init__(self, fanout: int) -> None:
        if fanout < 1:
            raise ValueError("tree fanout must be >= 1")
        self.fanout = fanout
        #: Broadcasts that degenerated to the direct all2all path.
        self.direct_broadcasts = 0
        #: Broadcasts that went out as relay trees.
        self.tree_broadcasts = 0
        #: Envelope forwards performed by relays.
        self.relays = 0
        #: Envelopes that died at a crashed relay (subtree starved until
        #: the protocol's pull recovery catches it up).
        self.dead_relays = 0
        # (root, replicas tuple) -> {pid: heap position}.
        self._pos_cache: Dict[tuple, Dict[int, int]] = {}
        self._order_cache: Dict[tuple, List[int]] = {}

    # -- tree geometry -------------------------------------------------
    def _order(self, root: int, replicas: Tuple[int, ...]) -> List[int]:
        key = (root, replicas)
        order = self._order_cache.get(key)
        if order is None:
            order = [root] + [p for p in replicas if p != root]
            self._order_cache[key] = order
            self._pos_cache[key] = {p: i for i, p in enumerate(order)}
        return order

    def _children(
        self, root: int, replicas: Tuple[int, ...], pid: int
    ) -> List[int]:
        order = self._order(root, replicas)
        pos = self._pos_cache[(root, replicas)].get(pid)
        if pos is None:
            return []
        k = self.fanout
        lo = k * pos + 1
        return order[lo : lo + k]

    # -- strategy interface --------------------------------------------
    def broadcast(
        self, net: "Network", src: int, message: Message, include_self: bool
    ) -> int:
        replicas = tuple(net._replicas)
        others = len(replicas) - (1 if src in replicas else 0)
        if self.fanout >= others:
            # Every other replica is a direct child: the tree IS the
            # all2all fan-out.  Delegate to the native path so delivery
            # order, wire sizes and digests are bit-identical to all2all.
            self.direct_broadcasts += 1
            return net.broadcast_all2all(
                src, message, include_self=include_self
            )
        self.tree_broadcasts += 1
        attempts = 0
        if include_self and src in replicas:
            net.send(src, src, message)
            attempts += 1
        envelope = Message(
            TREE_KIND,
            (src, message),
            message.size + TREE_HEADER_BYTES,
        )
        for child in self._children(src, replicas, src):
            net.send(src, child, envelope)
            attempts += 1
        return attempts

    def on_envelope(
        self, net: "Network", src: int, dst: int, envelope: Message
    ) -> None:
        root, inner = envelope.payload
        process = net._processes.get(dst)
        if process is None or process.crashed:
            # A dead relay starves its subtree; protocol pull recovery is
            # the repair path, exactly as for a lost frame.
            self.dead_relays += 1
            return
        # Forward first, then deliver: the relay's egress work is queued
        # before any protocol reaction to the payload, a fixed order that
        # keeps bandwidth/jitter draws deterministic.
        replicas = tuple(net._replicas)
        for child in self._children(root, replicas, dst):
            net.send(dst, child, envelope)
            self.relays += 1
        net.deliver_local(root, dst, inner, process)

    def stats_dict(self) -> Dict[str, float]:
        return {
            "strategy": self.name,
            "fanout": self.fanout,
            "direct_broadcasts": self.direct_broadcasts,
            "tree_broadcasts": self.tree_broadcasts,
            "relays": self.relays,
            "dead_relays": self.dead_relays,
        }


class GossipDissemination(Dissemination):
    """Seeded push gossip with duplicate suppression and TTL."""

    name = "gossip"
    kinds = (GOSSIP_KIND,)

    def __init__(self, fanout: int, *, seed: int = 0) -> None:
        if fanout < 1:
            raise ValueError("gossip fanout must be >= 1")
        self.fanout = fanout
        self.seed = seed
        self.pushes = 0
        self.duplicates_suppressed = 0
        self.deliveries = 0
        #: Per-origin envelope sequence; only the origin's shard ever
        #: increments an origin's counter, so it is shard-local state.
        self._next_seq: Dict[int, int] = {}
        #: (dst, origin, seq) receipts already delivered.  ``Message.uid``
        #: is process-local and NOT stable across shard workers; the
        #: explicit (origin, seq) pair is.
        self._seen: Set[Tuple[int, int, int]] = set()

    def _ttl(self, n: int) -> int:
        # Enough hops for fanout^ttl to cover n with slack.
        ttl = 1
        reach = self.fanout
        while reach < n and ttl < 16:
            reach *= self.fanout
            ttl += 1
        return ttl + 1

    def _peers(
        self,
        replicas: Tuple[int, ...],
        origin: int,
        seq: int,
        relay: int,
    ) -> List[int]:
        """``fanout`` distinct peers for ``relay`` to push to.

        A pure function of (seed, origin, seq, relay): every worker —
        and every shard layout — computes the same peer sets without
        consuming any shared RNG stream.
        """
        pool = [p for p in replicas if p != relay and p != origin]
        token = f"{self.seed}|{origin}|{seq}|{relay}".encode()
        return seeded_sample(token, pool, self.fanout)

    def broadcast(
        self, net: "Network", src: int, message: Message, include_self: bool
    ) -> int:
        replicas = tuple(net._replicas)
        seq = self._next_seq.get(src, 0)
        self._next_seq[src] = seq + 1
        attempts = 0
        if include_self and src in replicas:
            net.send(src, src, message)
            attempts += 1
        ttl = self._ttl(len(replicas))
        envelope = Message(
            GOSSIP_KIND,
            (src, seq, ttl, message),
            message.size + GOSSIP_HEADER_BYTES,
        )
        # The origin never re-receives its own envelope (peers exclude the
        # origin), so mark it seen only for bookkeeping symmetry.
        self._seen.add((src, src, seq))
        for peer in self._peers(replicas, src, seq, src):
            net.send(src, peer, envelope)
            self.pushes += 1
            attempts += 1
        return attempts

    def on_envelope(
        self, net: "Network", src: int, dst: int, envelope: Message
    ) -> None:
        origin, seq, ttl, inner = envelope.payload
        process = net._processes.get(dst)
        if process is None or process.crashed:
            return
        key = (dst, origin, seq)
        if key in self._seen:
            self.duplicates_suppressed += 1
            return
        self._seen.add(key)
        # Push first, then deliver (same fixed order as the tree relay).
        if ttl > 1:
            replicas = tuple(net._replicas)
            forward = Message(
                GOSSIP_KIND,
                (origin, seq, ttl - 1, inner),
                envelope.size,
            )
            for peer in self._peers(replicas, origin, seq, dst):
                net.send(dst, peer, forward)
                self.pushes += 1
        self.deliveries += 1
        net.deliver_local(origin, dst, inner, process)

    def stats_dict(self) -> Dict[str, float]:
        return {
            "strategy": self.name,
            "fanout": self.fanout,
            "pushes": self.pushes,
            "deliveries": self.deliveries,
            "duplicates_suppressed": self.duplicates_suppressed,
        }


__all__ = [
    "DISSEMINATION_STRATEGIES",
    "Dissemination",
    "TreeDissemination",
    "GossipDissemination",
    "make_dissemination",
    "seeded_sample",
    "TREE_KIND",
    "GOSSIP_KIND",
]
