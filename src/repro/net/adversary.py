"""Partial-synchrony message-delay adversaries.

The model (§II-A) lets an adversary delay any message arbitrarily before an
unknown Global Stabilisation Time (GST); after GST every correct-to-correct
message arrives within Δ.  Channels stay reliable: the adversary can delay,
never drop.

Adversaries here return an *extra* delay (µs) added on top of the physical
propagation delay; the network clamps post-GST deliveries so that the Δ
bound holds.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.rng import RngRegistry


class NetworkAdversary:
    """Interface: decide the extra delay for one message."""

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        raise NotImplementedError

    def gst(self) -> int:
        """The adversary's GST; 0 means the network is always synchronous."""
        return 0


class NullAdversary(NetworkAdversary):
    """No interference: the network is synchronous from the start."""

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        return 0


class PartialSynchronyAdversary(NetworkAdversary):
    """Random adversarial delays until GST, silence after.

    Before GST each message is delayed by Uniform(0, ``max_delay_us``);
    messages already in flight when GST hits were scheduled with their delay,
    so convergence is gradual — exactly the behaviour DBFT-style protocols
    must survive.
    """

    def __init__(
        self,
        gst_us: int,
        *,
        max_delay_us: int = 500 * MILLISECONDS,
        rng: RngRegistry | None = None,
    ) -> None:
        self._gst = int(gst_us)
        self.max_delay_us = int(max_delay_us)
        self._rng = (rng or RngRegistry(0)).get("adversary", "delays")

    def gst(self) -> int:
        return self._gst

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        if now >= self._gst:
            return 0
        return int(self._rng.integers(0, self.max_delay_us + 1))


class TargetedDelayAdversary(NetworkAdversary):
    """Delays only messages touching a target set of processes.

    Used by reordering-attack experiments: the adversary slows a victim's
    proposals (or the paths toward specific validators) to try to displace
    its transaction in the decided order.
    """

    def __init__(
        self,
        targets: Iterable[int],
        delay_us: int,
        *,
        gst_us: int = 0,
        direction: str = "both",
    ) -> None:
        if direction not in ("src", "dst", "both"):
            raise ValueError("direction must be 'src', 'dst', or 'both'")
        self.targets: Set[int] = set(targets)
        self.delay_us = int(delay_us)
        self._gst = int(gst_us)
        self.direction = direction

    def gst(self) -> int:
        return self._gst

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        if self._gst and now >= self._gst:
            return 0
        hit = (
            (self.direction in ("src", "both") and src in self.targets)
            or (self.direction in ("dst", "both") and dst in self.targets)
        )
        return self.delay_us if hit else 0


class PartitionAdversary(NetworkAdversary):
    """Splits the network into two groups until GST.

    Cross-partition messages are delayed until (just after) the healing
    time — the strongest schedule partial synchrony allows short of
    dropping messages (channels stay reliable: everything is delivered
    once the partition heals).
    """

    def __init__(self, group_a: Iterable[int], heal_at_us: int) -> None:
        self.group_a: Set[int] = set(group_a)
        self._heal_at = int(heal_at_us)

    def gst(self) -> int:
        return self._heal_at

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        if now >= self._heal_at:
            return 0
        if (src in self.group_a) == (dst in self.group_a):
            return 0  # same side of the partition
        return max(0, self._heal_at - now)


__all__ = [
    "NetworkAdversary",
    "NullAdversary",
    "PartialSynchronyAdversary",
    "TargetedDelayAdversary",
    "PartitionAdversary",
]
