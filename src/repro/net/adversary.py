"""Partial-synchrony message-delay adversaries.

The model (§II-A) lets an adversary delay any message arbitrarily before an
unknown Global Stabilisation Time (GST); after GST every correct-to-correct
message arrives within Δ.  Channels stay reliable: the adversary can delay,
never drop.

Adversaries here return an *extra* delay (µs) added on top of the physical
propagation delay; the network clamps post-GST deliveries so that the Δ
bound holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.rng import RngRegistry


class NetworkAdversary:
    """Interface: decide the extra delay for one message."""

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        raise NotImplementedError

    def gst(self) -> int:
        """The adversary's GST; 0 means the network is always synchronous."""
        return 0


class NullAdversary(NetworkAdversary):
    """No interference: the network is synchronous from the start."""

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        return 0


class PartialSynchronyAdversary(NetworkAdversary):
    """Random adversarial delays until GST, silence after.

    Before GST each message is delayed by Uniform(0, ``max_delay_us``);
    messages already in flight when GST hits were scheduled with their delay,
    so convergence is gradual — exactly the behaviour DBFT-style protocols
    must survive.
    """

    def __init__(
        self,
        gst_us: int,
        *,
        max_delay_us: int = 500 * MILLISECONDS,
        rng: RngRegistry | None = None,
    ) -> None:
        self._gst = int(gst_us)
        self.max_delay_us = int(max_delay_us)
        self._rng = (rng or RngRegistry(0)).get("adversary", "delays")

    def gst(self) -> int:
        return self._gst

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        if now >= self._gst:
            return 0
        return int(self._rng.integers(0, self.max_delay_us + 1))


class TargetedDelayAdversary(NetworkAdversary):
    """Delays only messages touching a target set of processes.

    Used by reordering-attack experiments: the adversary slows a victim's
    proposals (or the paths toward specific validators) to try to displace
    its transaction in the decided order.
    """

    def __init__(
        self,
        targets: Iterable[int],
        delay_us: int,
        *,
        gst_us: int = 0,
        direction: str = "both",
    ) -> None:
        if direction not in ("src", "dst", "both"):
            raise ValueError("direction must be 'src', 'dst', or 'both'")
        self.targets: Set[int] = set(targets)
        self.delay_us = int(delay_us)
        self._gst = int(gst_us)
        self.direction = direction

    def gst(self) -> int:
        return self._gst

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        if self._gst and now >= self._gst:
            return 0
        hit = (
            (self.direction in ("src", "both") and src in self.targets)
            or (self.direction in ("dst", "both") and dst in self.targets)
        )
        return self.delay_us if hit else 0


@dataclass(frozen=True)
class PartitionEvent:
    """One partition episode: ``groups`` are mutually isolated from
    ``start_us`` until ``heal_at_us``.  Pids not listed in any group form
    an implicit remainder group (isolated from all listed groups but able
    to talk among themselves)."""

    groups: Tuple[FrozenSet[int], ...]
    heal_at_us: int
    start_us: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "groups", tuple(frozenset(g) for g in self.groups)
        )
        if len(self.groups) < 1:
            raise ValueError("a partition event needs at least one group")
        if self.heal_at_us <= self.start_us:
            raise ValueError("heal_at_us must be after start_us")
        seen: Set[int] = set()
        for group in self.groups:
            overlap = seen & group
            if overlap:
                raise ValueError(f"pids {sorted(overlap)} appear in two groups")
            seen |= group

    def side(self, pid: int) -> int:
        """Index of pid's group; -1 for the implicit remainder group."""
        for idx, group in enumerate(self.groups):
            if pid in group:
                return idx
        return -1

    def active(self, now: int) -> bool:
        return self.start_us <= now < self.heal_at_us


class PartitionAdversary(NetworkAdversary):
    """Splits the network into isolated groups until each episode heals.

    Cross-partition messages are delayed until (just after) the episode's
    healing time — the strongest schedule partial synchrony allows short
    of dropping messages (channels stay reliable: everything is delivered
    once the partition heals).

    The legacy single-split form ``PartitionAdversary(group_a, heal_at_us)``
    still works; the general form takes ``schedule=[PartitionEvent, ...]``
    with any number of groups per event and per-event heal times.
    """

    def __init__(
        self,
        group_a: Optional[Iterable[int]] = None,
        heal_at_us: Optional[int] = None,
        *,
        schedule: Optional[Sequence[PartitionEvent]] = None,
    ) -> None:
        if schedule is not None:
            if group_a is not None or heal_at_us is not None:
                raise ValueError("pass either (group_a, heal_at_us) or schedule")
            self.schedule: Tuple[PartitionEvent, ...] = tuple(schedule)
        else:
            if group_a is None or heal_at_us is None:
                raise ValueError("group_a and heal_at_us are both required")
            self.schedule = (
                PartitionEvent(
                    groups=(frozenset(group_a),), heal_at_us=int(heal_at_us)
                ),
            )
        # Legacy attribute, kept for callers that introspect the split.
        self.group_a: Set[int] = set(self.schedule[0].groups[0])

    def gst(self) -> int:
        return max(ev.heal_at_us for ev in self.schedule)

    def extra_delay_us(self, src: int, dst: int, size: int, now: int) -> int:
        delay = 0
        for ev in self.schedule:
            if not ev.active(now):
                continue
            if ev.side(src) != ev.side(dst):
                delay = max(delay, ev.heal_at_us - now)
        return delay


__all__ = [
    "NetworkAdversary",
    "NullAdversary",
    "PartialSynchronyAdversary",
    "TargetedDelayAdversary",
    "PartitionAdversary",
    "PartitionEvent",
]
