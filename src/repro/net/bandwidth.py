"""Per-node NIC bandwidth model.

Each node has an egress and an ingress queue that serialise messages at the
NIC line rate.  Serialisation delay is what turns "the HotStuff leader sends
n batches per decision" into a throughput ceiling: at 1 Gbps a 26 KB batch
takes ~208 µs on the wire, so a leader broadcasting to 99 peers spends
~20.6 ms of NIC time per decision, capping it near 48 decisions/s regardless
of CPU.

The model is first-come-first-served and work-conserving; propagation
latency (see :mod:`repro.net.latency`) is added after serialisation.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.engine import SECONDS, Simulator


class NicQueue:
    """A single serialising link (one direction of one node's NIC)."""

    def __init__(self, sim: Simulator, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self._sim = sim
        self.rate_bps = float(rate_bps)
        self._free_at: int = 0
        self.bytes_total: int = 0
        # The same handful of protocol message sizes recur millions of
        # times; memoize their serialisation delay per queue.
        self._ser_cache: Dict[int, int] = {}

    def serialisation_us(self, size_bytes: int) -> int:
        cached = self._ser_cache.get(size_bytes)
        if cached is None:
            if len(self._ser_cache) >= 4096:
                self._ser_cache.clear()
            cached = self._ser_cache[size_bytes] = int(
                round(size_bytes * 8 * SECONDS / self.rate_bps)
            )
        return cached

    def enqueue(self, size_bytes: int) -> int:
        """Reserve the link for a message; return its departure time."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        start = max(self._sim.now, self._free_at)
        self._free_at = start + self.serialisation_us(size_bytes)
        self.bytes_total += size_bytes
        return self._free_at

    @property
    def free_at(self) -> int:
        return self._free_at

    def backlog_us(self) -> int:
        """How far behind real time the link currently is."""
        return max(0, self._free_at - self._sim.now)


class BandwidthModel:
    """Egress + ingress NIC queues for every process.

    ``rate_bps`` may be a single number (uniform NICs) or a per-pid mapping.
    ``enabled=False`` turns the model into a zero-cost pass-through, which
    unit tests use to isolate protocol logic from queueing.
    """

    DEFAULT_RATE = 1_000_000_000  # 1 Gbps, the paper's instance class

    def __init__(
        self,
        sim: Simulator,
        *,
        rate_bps: float | Dict[int, float] | None = None,
        enabled: bool = True,
    ) -> None:
        self._sim = sim
        self.enabled = enabled
        self._rates = rate_bps if rate_bps is not None else self.DEFAULT_RATE
        self._egress: Dict[int, NicQueue] = {}
        self._ingress: Dict[int, NicQueue] = {}

    def _rate_for(self, pid: int) -> float:
        if isinstance(self._rates, dict):
            return self._rates.get(pid, self.DEFAULT_RATE)
        return float(self._rates)

    def egress(self, pid: int) -> NicQueue:
        q = self._egress.get(pid)
        if q is None:
            q = NicQueue(self._sim, self._rate_for(pid))
            self._egress[pid] = q
        return q

    def ingress(self, pid: int) -> NicQueue:
        q = self._ingress.get(pid)
        if q is None:
            q = NicQueue(self._sim, self._rate_for(pid))
            self._ingress[pid] = q
        return q

    def departure_time(self, src: int, size_bytes: int) -> int:
        """Queue a message on ``src``'s egress; return wire departure time."""
        if not self.enabled:
            return self._sim.now
        return self.egress(src).enqueue(size_bytes)

    def ingress_delay_us(self, dst: int, size_bytes: int) -> int:
        """Serialisation cost charged at the receiver when it arrives."""
        if not self.enabled:
            return 0
        return self.ingress(dst).serialisation_us(size_bytes)

    def egress_backlog_us(self, pid: int) -> int:
        if not self.enabled:
            return 0
        return self.egress(pid).backlog_us()


__all__ = ["BandwidthModel", "NicQueue"]
