"""WAN latency models.

The geo model reproduces the paper's platform: AWS regions on three
continents (§VI: Oregon, Ireland, Sydney) plus the Fig. 1 regions (Tokyo,
Singapore, São Paulo) whose paths violate the triangle inequality — the
property reordering attackers exploit.  Latencies are *one-way* milliseconds
(half of published inter-region RTTs); the Tokyo→São Paulo path is encoded
with the detour advantage Fig. 1 describes (going through Singapore is
faster than the direct path), which [26] shows occurs on real WANs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.sim.engine import MILLISECONDS
from repro.sim.rng import RngRegistry

#: One-way latencies in milliseconds between AWS regions.  Symmetric;
#: intra-region latency is ``INTRA_REGION_MS``.
AWS_ONE_WAY_MS: Dict[Tuple[str, str], float] = {
    ("oregon", "ireland"): 68.0,
    ("oregon", "sydney"): 70.0,
    ("ireland", "sydney"): 131.0,
    ("tokyo", "oregon"): 49.0,
    ("tokyo", "ireland"): 105.0,
    ("tokyo", "sydney"): 52.0,
    ("tokyo", "singapore"): 35.0,
    ("singapore", "oregon"): 82.0,
    ("singapore", "ireland"): 90.0,
    ("singapore", "sydney"): 46.0,
    ("saopaulo", "oregon"): 89.0,
    ("saopaulo", "ireland"): 92.0,
    ("saopaulo", "sydney"): 160.0,
    # Fig. 1 violation: direct Tokyo->Sao Paulo is slower than routing the
    # information through Singapore (35 + 105 = 140 < 150).
    ("tokyo", "saopaulo"): 150.0,
    ("singapore", "saopaulo"): 105.0,
}

INTRA_REGION_MS = 0.4


def region_latency_ms(a: str, b: str) -> float:
    """One-way base latency between two regions in milliseconds."""
    if a == b:
        return INTRA_REGION_MS
    value = AWS_ONE_WAY_MS.get((a, b))
    if value is None:
        value = AWS_ONE_WAY_MS.get((b, a))
    if value is None:
        raise KeyError(f"no latency data for region pair ({a}, {b})")
    return value


def triangle_violations(
    regions: Iterable[str],
) -> List[Tuple[str, str, str, float]]:
    """Find region triples where relaying beats the direct path.

    Returns tuples ``(src, via, dst, advantage_ms)`` with ``advantage_ms > 0``
    meaning ``d(src,via) + d(via,dst) < d(src,dst)`` — i.e. an observer at
    ``via`` can react to ``src``'s message and still beat it to ``dst``.
    """
    regions = list(dict.fromkeys(regions))
    out: List[Tuple[str, str, str, float]] = []
    for src in regions:
        for via in regions:
            if via == src:
                continue
            for dst in regions:
                if dst in (src, via):
                    continue
                direct = region_latency_ms(src, dst)
                relay = region_latency_ms(src, via) + region_latency_ms(via, dst)
                if relay < direct:
                    out.append((src, via, dst, direct - relay))
    return out


class LatencyModel:
    """Interface: sample a one-way propagation delay in microseconds."""

    def one_way_us(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def base_us(self, src: int, dst: int) -> int:
        """Jitter-free base latency (used by distance-prediction tests)."""
        raise NotImplementedError

    def one_way_block(self, src: int, dsts) -> List[int]:
        """Batch form of :meth:`one_way_us` over several destinations.

        The default samples scalar-wise in destination order, so any model
        stays bit-identical whether the network fans out one call at a time
        or in a block; subclasses override it purely for speed."""
        one_way_us = self.one_way_us
        return [one_way_us(src, dst) for dst in dsts]

    def floor_us(self, src: int, dst: int) -> int:
        """A hard lower bound on every possible :meth:`one_way_us` sample
        for the pair.  The sharded runner derives its epoch length from the
        minimum cross-shard floor (conservative-lookahead PDES), so this
        must never exceed an actual sample.  Jitter-free models are exact.
        """
        return self.base_us(src, dst)


class UniformLatencyModel(LatencyModel):
    """Constant latency between every pair — the unit-test workhorse."""

    def __init__(self, delay_us: int = 1000, *, self_delay_us: int = 10) -> None:
        self.delay_us = int(delay_us)
        self.self_delay_us = int(self_delay_us)

    def base_us(self, src: int, dst: int) -> int:
        return self.self_delay_us if src == dst else self.delay_us

    def one_way_us(self, src: int, dst: int) -> int:
        return self.base_us(src, dst)


class GeoLatencyModel(LatencyModel):
    """Region-matrix latency with multiplicative truncated-normal jitter.

    ``placement`` maps pid -> region name.  ``jitter`` is the standard
    deviation as a fraction of the base latency; samples are truncated at
    ``±3σ`` and never below 20% of base (queueing can add delay but light
    does not speed up).

    Jitter is drawn from *per-source* streams (``("net", "jitter", src)``):
    each sender's draw order is then a function of that sender's own send
    sequence alone, never of how sends from different nodes interleave
    globally.  That is what lets the sharded runner partition senders
    across worker processes and still produce bit-identical samples — a
    single shared stream would entangle every node's draws with the global
    execution order.
    """

    def __init__(
        self,
        placement: Mapping[int, str],
        *,
        jitter: float = 0.03,
        rng: RngRegistry | None = None,
    ) -> None:
        # Keep a live reference when given a dict: topologies may place
        # auxiliary processes (clients, attackers) after the model exists.
        self.placement = placement if isinstance(placement, dict) else dict(placement)
        self.jitter = float(jitter)
        self._registry = rng or RngRegistry(0)
        # Pre-resolve base latencies for every known pid pair lazily.
        self._base_cache: Dict[Tuple[int, int], int] = {}
        # Jitter draws are batched: numpy's Generator fills a size-n request
        # with exactly the same variates as n scalar calls, so refilling a
        # buffer keeps each stream bit-identical while amortising the
        # per-call numpy dispatch overhead.  Buffers are converted to plain
        # lists (``tolist`` preserves every float64 bit-exactly) because
        # indexing a list yields Python floats whose arithmetic is several
        # times faster than numpy scalars on this per-message path.
        # src -> [buffer, cursor, generator].
        self._streams: Dict[int, list] = {}
        self._noise_sigma = self.jitter

    def _stream(self, src: int) -> list:
        state = self._streams.get(src)
        if state is None:
            state = self._streams[src] = [
                [],
                0,
                self._registry.get("net", "jitter", str(src)),
            ]
        return state

    def region_of(self, pid: int) -> str:
        return self.placement[pid]

    def base_us(self, src: int, dst: int) -> int:
        key = (src, dst)
        cached = self._base_cache.get(key)
        if cached is None:
            if src == dst:
                cached = 10
            else:
                ms = region_latency_ms(self.placement[src], self.placement[dst])
                cached = int(ms * MILLISECONDS)
            self._base_cache[key] = cached
        return cached

    def floor_us(self, src: int, dst: int) -> int:
        """Smallest sample the clamp pipeline can emit for the pair: noise
        is truncated at ``-3σ`` and the result never drops below 20% of
        base, so ``max(int(base·(1−3σ)), int(base·0.2))`` is exact."""
        base = self.base_us(src, dst)
        if self.jitter <= 0 or src == dst:
            return base
        lo = 1.0 - 3 * self.jitter
        if lo < 0.2:
            lo = 0.2
        sample_min = int(base * lo)
        floor = int(base * 0.2)
        return sample_min if sample_min > floor else floor

    def one_way_us(self, src: int, dst: int) -> int:
        base = self.base_us(src, dst)
        jitter = self.jitter
        if jitter <= 0 or src == dst:
            return base
        if self._noise_sigma != jitter:
            self._streams.clear()
            self._noise_sigma = jitter
        state = self._streams.get(src)
        if state is None:
            state = self._stream(src)
        buf, pos, gen = state
        if pos >= len(buf):
            buf = state[0] = gen.normal(0.0, jitter, 1024).tolist()
            pos = 0
        noise = buf[pos]
        state[1] = pos + 1
        if noise > (hi := 3 * jitter):
            noise = hi
        elif noise < -hi:
            noise = -hi
        sample = int(base * (1.0 + noise))
        floor = int(base * 0.2)
        return sample if sample > floor else floor

    def one_way_block(self, src: int, dsts) -> List[int]:
        """Sample ``one_way_us(src, d)`` for every ``d`` in ``dsts``.

        Consumes ``src``'s jitter stream in exactly the per-destination
        order of the scalar method (self-destinations draw nothing), so
        broadcast fan-outs that switch to this batch form keep runs
        bit-identical.
        """
        jitter = self.jitter
        base_us = self.base_us
        if jitter <= 0:
            return [base_us(src, d) for d in dsts]
        if self._noise_sigma != jitter:
            self._streams.clear()
            self._noise_sigma = jitter
        state = self._streams.get(src)
        if state is None:
            state = self._stream(src)
        buf, pos, gen = state
        out = []
        size = len(buf)
        refill = gen.normal
        hi = 3 * jitter
        base_cache_get = self._base_cache.get
        for dst in dsts:
            base = base_cache_get((src, dst))
            if base is None:
                base = base_us(src, dst)
            if dst == src:
                out.append(base)
                continue
            if pos >= size:
                buf = state[0] = refill(0.0, jitter, 1024).tolist()
                pos = 0
                size = 1024
            noise = buf[pos]
            pos += 1
            if noise > hi:
                noise = hi
            elif noise < -hi:
                noise = -hi
            sample = int(base * (1.0 + noise))
            floor = int(base * 0.2)
            out.append(sample if sample > floor else floor)
        state[1] = pos
        return out


class VectorGeoLatencyModel(GeoLatencyModel):
    """Numpy-batched :class:`GeoLatencyModel` for the vector backend.

    ``one_way_block`` draws the whole fan-out's jitter with one
    ``Generator`` slice and applies the clamp/scale/floor pipeline as
    array operations.  Bit-identical to the scalar model by construction:

    - each per-source jitter stream is consumed through the same
      1024-variate refill blocks at the same stream offsets, so scalar
      calls (``one_way_us``, used by point-to-point sends) and batched
      calls interleave freely without perturbing each other;
    - every float64 operation (``clip`` at ±3σ, ``base * (1 + noise)``,
      truncation to int, the 20%-of-base floor) is IEEE-identical to its
      scalar counterpart, and self-destinations draw nothing, preserving
      the sorted-pid draw order exactly.
    """

    def __init__(
        self,
        placement: Mapping[int, str],
        *,
        jitter: float = 0.03,
        rng: RngRegistry | None = None,
    ) -> None:
        super().__init__(placement, jitter=jitter, rng=rng)
        # Per-source noise buffers stay numpy arrays here (the scalar
        # model converts to lists): src -> [array, cursor, generator].
        self._arr_streams: Dict[int, list] = {}
        # (src, dsts) -> (bases of non-self dsts as float64, their int
        # floors, positions of self destinations, their base latencies).
        self._block_cache: Dict[tuple, tuple] = {}

    def _arr_stream(self, src: int) -> list:
        state = self._arr_streams.get(src)
        if state is None:
            state = self._arr_streams[src] = [
                np.empty(0),
                0,
                self._registry.get("net", "jitter", str(src)),
            ]
        return state

    def one_way_us(self, src: int, dst: int) -> int:
        base = self.base_us(src, dst)
        jitter = self.jitter
        if jitter <= 0 or src == dst:
            return base
        if self._noise_sigma != jitter:
            self._arr_streams.clear()
            self._noise_sigma = jitter
        state = self._arr_streams.get(src)
        if state is None:
            state = self._arr_stream(src)
        arr, pos, gen = state
        if pos >= arr.shape[0]:
            arr = state[0] = gen.normal(0.0, jitter, 1024)
            pos = 0
        noise = arr[pos]
        state[1] = pos + 1
        if noise > (hi := 3 * jitter):
            noise = hi
        elif noise < -hi:
            noise = -hi
        sample = int(base * (1.0 + noise))
        floor = int(base * 0.2)
        return sample if sample > floor else floor

    def _build_block(self, src: int, dsts) -> tuple:
        bases = [self.base_us(src, dst) for dst in dsts]
        self_pos = [i for i, dst in enumerate(dsts) if dst == src]
        nonself = [b for i, b in enumerate(bases) if i not in self_pos]
        return (
            np.array(nonself, dtype=np.float64),
            np.array([int(b * 0.2) for b in nonself], dtype=np.int64),
            self_pos,
            [bases[i] for i in self_pos],
        )

    def one_way_block(self, src: int, dsts) -> List[int]:
        jitter = self.jitter
        if jitter <= 0:
            base_us = self.base_us
            return [base_us(src, d) for d in dsts]
        key = (src, tuple(dsts))
        block = self._block_cache.get(key)
        if block is None:
            block = self._block_cache[key] = self._build_block(src, dsts)
        bases, floors, self_pos, self_bases = block
        k = bases.shape[0]
        if k == 0:
            return list(self_bases)
        if self._noise_sigma != jitter:
            self._arr_streams.clear()
            self._noise_sigma = jitter
        state = self._arr_streams.get(src)
        if state is None:
            state = self._arr_stream(src)
        arr, pos, gen = state
        noise = np.empty(k)
        filled = 0
        while filled < k:
            if pos >= arr.shape[0]:
                arr = state[0] = gen.normal(0.0, jitter, 1024)
                pos = 0
            take = min(k - filled, arr.shape[0] - pos)
            noise[filled : filled + take] = arr[pos : pos + take]
            filled += take
            pos += take
        state[1] = pos
        hi = 3 * jitter
        np.clip(noise, -hi, hi, out=noise)
        noise += 1.0
        noise *= bases
        samples = noise.astype(np.int64)
        np.maximum(samples, floors, out=samples)
        out = samples.tolist()
        for i, base in zip(self_pos, self_bases):
            out.insert(i, base)
        return out


__all__ = [
    "AWS_ONE_WAY_MS",
    "INTRA_REGION_MS",
    "region_latency_ms",
    "triangle_violations",
    "LatencyModel",
    "UniformLatencyModel",
    "GeoLatencyModel",
    "VectorGeoLatencyModel",
]
