"""Simulated wide-area network substrate.

Models the paper's experimental platform: nodes spread over AWS regions on
three continents, connected by authenticated reliable channels whose
latencies follow published inter-region figures (including the triangle-
inequality violations of Fig. 1), with per-node NIC bandwidth and a
partial-synchrony adversary that may delay messages until GST.
"""

from repro.net.message import Message, estimate_size
from repro.net.latency import (
    LatencyModel,
    GeoLatencyModel,
    UniformLatencyModel,
    AWS_ONE_WAY_MS,
    triangle_violations,
)
from repro.net.topology import Topology, EVAL_REGIONS, FIG1_REGIONS
from repro.net.bandwidth import BandwidthModel, NicQueue
from repro.net.adversary import (
    NetworkAdversary,
    NullAdversary,
    PartialSynchronyAdversary,
    PartitionAdversary,
    PartitionEvent,
    TargetedDelayAdversary,
)
from repro.net.faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultStats,
    LinkFault,
)
from repro.net.network import Network, NetworkConfig
from repro.net.reliable import ReliableConfig, ReliableLayer, ReliableStats

__all__ = [
    "Message",
    "estimate_size",
    "LatencyModel",
    "GeoLatencyModel",
    "UniformLatencyModel",
    "AWS_ONE_WAY_MS",
    "triangle_violations",
    "Topology",
    "EVAL_REGIONS",
    "FIG1_REGIONS",
    "BandwidthModel",
    "NicQueue",
    "NetworkAdversary",
    "NullAdversary",
    "PartialSynchronyAdversary",
    "PartitionAdversary",
    "PartitionEvent",
    "TargetedDelayAdversary",
    "LinkFault",
    "CrashEvent",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "ReliableLayer",
    "ReliableConfig",
    "ReliableStats",
    "Network",
    "NetworkConfig",
]
