"""Seeded adversarial-schedule fuzzer.

A :class:`FuzzSchedule` is a pure-data description of one adversarial run:
which replicas run which attack behaviour (from the
:mod:`repro.attacks.registry`), the link-fault and crash schedule (the
PR-2 :class:`~repro.net.faults.FaultPlan` machinery), and the protocol
knobs that shape the attack surface (delta piggybacking, the weakened
``report_quorum``).  Schedules serialise to JSON and replay bit-identically
— :func:`run_schedule` digests the per-replica committed logs so a replay
can assert exact equality.

:func:`generate_schedule` is a pure function of the seed: the same seed
always yields the same schedule, and generated schedules always respect
the resilience bound (attackers plus simultaneously-crashed replicas stay
within f), so any invariant violation they produce is a reproduction bug,
not an over-budget adversary.

:func:`shrink_schedule` bisects a failing schedule ddmin-style over its
components (attack assignments, link faults, crash events) to a minimal
still-failing repro — the artifact ``python -m repro fuzz`` saves on
violation.

The oracle is the always-on :class:`~repro.metrics.invariants
.InvariantWatchdog` (prefix agreement, commit regression, ordered output,
post-GST liveness), the end-of-run safety check, and a commit-reveal
secrecy check wired in here: any :class:`SelectiveRevealNode` probe that
decrypts a payload pre-commit is an invariant violation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.attacks.corpus import CORPUS, CorpusCase, SelectiveRevealNode
from repro.attacks.registry import ATTACK_NODE_CLASSES
from repro.net.faults import CrashEvent, FaultPlan, LinkFault
from repro.sim.engine import MILLISECONDS, SECONDS
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class AttackAssignment:
    """One replica running one registry attack behaviour."""

    pid: int
    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __init__(self, pid: int, name: str, kwargs: Any = ()) -> None:
        object.__setattr__(self, "pid", int(pid))
        object.__setattr__(self, "name", str(name))
        if isinstance(kwargs, dict):
            kwargs = tuple(sorted(kwargs.items()))
        object.__setattr__(
            self, "kwargs", tuple((str(k), v) for k, v in kwargs)
        )
        if self.name not in ATTACK_NODE_CLASSES:
            raise ValueError(
                f"unknown attack {self.name!r}; known: "
                f"{sorted(ATTACK_NODE_CLASSES)}"
            )

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {"pid": self.pid, "name": self.name, "kwargs": self.kwargs_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttackAssignment":
        unknown = set(data) - {"pid", "name", "kwargs"}
        if unknown:
            raise ValueError(f"unknown AttackAssignment fields: {sorted(unknown)}")
        return cls(data["pid"], data["name"], data.get("kwargs") or {})


@dataclass(frozen=True)
class FuzzSchedule:
    """A complete, serialisable adversarial schedule for one run."""

    seed: int
    n_nodes: int = 4
    duration_us: int = 3 * SECONDS
    batch_size: int = 8
    client_window: int = 4
    attacks: Tuple[AttackAssignment, ...] = ()
    plan: FaultPlan = field(default_factory=FaultPlan)
    delta_piggyback: bool = False
    reliable_channels: bool = False
    #: Weakened-validation knob (None = the safe 2f+1); see CommitConfig.
    report_quorum: Optional[int] = None
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "attacks", tuple(self.attacks))

    def resolved_f(self) -> int:
        return max(0, (self.n_nodes - 1) // 3)

    def attacker_pids(self) -> Tuple[int, ...]:
        return tuple(sorted({a.pid for a in self.attacks}))

    def to_config(self):
        """The :class:`~repro.harness.config.ExperimentConfig` of this
        schedule (imported lazily: the harness imports the registry)."""
        from repro.harness.config import ExperimentConfig

        return ExperimentConfig(
            n_nodes=self.n_nodes,
            seed=self.seed,
            batch_size=self.batch_size,
            client_window=self.client_window,
            duration_us=self.duration_us,
            delta_piggyback=self.delta_piggyback,
            reliable_channels=self.reliable_channels,
            fault_plan=self.plan if not self.plan.empty else None,
            attack_nodes=(
                {
                    a.pid: {"name": a.name, "kwargs": a.kwargs_dict()}
                    for a in self.attacks
                }
                or None
            ),
            report_quorum=self.report_quorum,
            warmup_rounds=2,
        )

    # ------------------------------------------------------------------
    # Serialization — saved schedules are the fuzzer's replay artifacts.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "duration_us": self.duration_us,
            "batch_size": self.batch_size,
            "client_window": self.client_window,
            "attacks": [a.to_dict() for a in self.attacks],
            "plan": self.plan.to_dict(),
            "delta_piggyback": self.delta_piggyback,
            "reliable_channels": self.reliable_channels,
            "report_quorum": self.report_quorum,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzSchedule":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FuzzSchedule fields: {sorted(unknown)}")
        data = dict(data)
        data["attacks"] = tuple(
            AttackAssignment.from_dict(raw) if isinstance(raw, dict) else raw
            for raw in data.get("attacks", ())
        )
        plan = data.get("plan")
        if plan is not None and not isinstance(plan, FaultPlan):
            data["plan"] = FaultPlan.from_dict(plan)
        elif plan is None:
            data["plan"] = FaultPlan()
        return cls(**data)


# ----------------------------------------------------------------------
# Schedule generation: a pure function of the seed.
# ----------------------------------------------------------------------

#: The attack menu the generator draws from: (name, kwargs builder).
#: Marker forgeries only make sense with delta piggybacking on, so they
#: are picked from the delta-only menu.
def _attack_menu(rng, n_nodes: int, delta: bool):
    victims = lambda: [int(rng.integers(0, n_nodes))]
    menu: List[Tuple[str, Callable[[], Dict[str, Any]]]] = [
        ("selective-reveal", lambda: {"mode": "withhold"}),
        ("selective-reveal", lambda: {"mode": "delay",
                                      "delay_us": int(rng.integers(50, 600)) * 1000}),
        ("selective-reveal", lambda: {"mode": "targeted", "victims": victims()}),
        ("piggyback-forgery", lambda: {"mode": "stale"}),
        ("piggyback-forgery", lambda: {"mode": "inflate"}),
        ("prefix-staller", lambda: {}),
        ("cipher-replay", lambda: {}),
    ]
    if delta:
        menu.extend(
            [
                ("piggyback-forgery", lambda: {"mode": "stale-marker"}),
                ("piggyback-forgery", lambda: {"mode": "bogus-marker",
                                               "answer_pulls": False}),
            ]
        )
    else:
        menu.append(("piggyback-forgery", lambda: {"mode": "equivocate"}))
    return menu


def generate_schedule(
    seed: int, *, n_nodes: int = 4, duration_us: int = 3 * SECONDS
) -> FuzzSchedule:
    """Deterministically derive an honest-majority adversarial schedule.

    Pure in ``seed`` (plus the explicit shape arguments): the same inputs
    always return the same schedule.  Attackers and simultaneous crashes
    jointly stay within the resilience bound f — crashes either hit an
    attacker pid (no extra slot consumed) or draw from the remaining
    honest budget.
    """
    rng = RngRegistry(seed).get("fuzz", "schedule")
    f = max(0, (n_nodes - 1) // 3)
    delta = bool(rng.integers(0, 2))

    # Attackers: 0..f replicas, distinct pids, behaviours off the menu.
    n_attackers = int(rng.integers(0, f + 1))
    attacker_pids = sorted(
        int(p) for p in rng.choice(n_nodes, size=n_attackers, replace=False)
    )
    menu = _attack_menu(rng, n_nodes, delta)
    attacks = []
    for pid in attacker_pids:
        name, kw = menu[int(rng.integers(0, len(menu)))]
        attacks.append(AttackAssignment(pid=pid, name=name, kwargs=kw()))

    # Link faults: 0..2 windowed rules at moderate rates.
    links: List[LinkFault] = []
    for _ in range(int(rng.integers(0, 3))):
        start = int(rng.integers(0, max(1, duration_us // 2)))
        end = start + int(rng.integers(200, 1500)) * MILLISECONDS
        links.append(
            LinkFault(
                drop_rate=float(rng.random()) * 0.15,
                duplicate_rate=float(rng.random()) * 0.08,
                reorder_rate=float(rng.random()) * 0.15,
                corrupt_rate=float(rng.random()) * 0.04,
                start_us=start,
                end_us=min(end, duration_us),
            )
        )

    # Crashes: within the joint budget.  Crashing an attacker consumes no
    # extra slot; otherwise draw from the leftover honest budget.
    crashes: List[CrashEvent] = []
    spare = f - n_attackers
    if rng.random() < 0.5 and (spare > 0 or attacker_pids):
        if spare > 0 and (not attacker_pids or rng.random() < 0.7):
            candidates = [p for p in range(n_nodes) if p not in attacker_pids]
            pid = int(candidates[int(rng.integers(0, len(candidates)))])
        else:
            pid = int(attacker_pids[int(rng.integers(0, len(attacker_pids)))])
        crash_at = int(rng.integers(500, max(501, duration_us // MILLISECONDS - 1200)))
        crash_at *= MILLISECONDS
        recover_at = (
            crash_at + int(rng.integers(300, 1000)) * MILLISECONDS
            if rng.random() < 0.8
            else None
        )
        crashes.append(
            CrashEvent(pid=pid, crash_at_us=crash_at, recover_at_us=recover_at)
        )

    return FuzzSchedule(
        seed=seed,
        n_nodes=n_nodes,
        duration_us=duration_us,
        attacks=tuple(attacks),
        plan=FaultPlan(links=tuple(links), crashes=tuple(crashes)),
        delta_piggyback=delta,
        reliable_channels=bool(links),
        note=f"generated seed={seed}",
    )


# ----------------------------------------------------------------------
# Running a schedule.
# ----------------------------------------------------------------------
@dataclass
class FuzzOutcome:
    """What one schedule run produced, plus a replay digest."""

    schedule: FuzzSchedule
    ok: bool
    violations: List[str]
    safety_violation: Optional[str]
    invariant_checks: int
    committed_lens: Dict[int, int]
    executed_total: int
    probe_attempts: int
    probe_successes: int
    #: SHA-256 over the per-replica committed logs + oracle findings;
    #: bit-identical across replays of the same schedule.
    digest: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schedule": self.schedule.to_dict(),
            "ok": self.ok,
            "violations": list(self.violations),
            "safety_violation": self.safety_violation,
            "invariant_checks": self.invariant_checks,
            "committed_lens": dict(self.committed_lens),
            "executed_total": self.executed_total,
            "probe_attempts": self.probe_attempts,
            "probe_successes": self.probe_successes,
            "digest": self.digest,
        }


def run_schedule(schedule: FuzzSchedule) -> FuzzOutcome:
    """Build the cluster, run the schedule, and apply the oracle."""
    from repro.harness.factory import build_cluster

    config = schedule.to_config()
    cluster = build_cluster(config, protocol="lyra")

    # Commit-reveal secrecy oracle: a probing attacker that manages to
    # decrypt any payload pre-commit is an invariant violation (Lemma 7).
    probers = [
        node for node in cluster.nodes if isinstance(node, SelectiveRevealNode)
    ]

    def secrecy_check() -> Optional[str]:
        bad = [
            (node.pid, node.probe_successes)
            for node in probers
            if node.probe_successes
        ]
        if bad:
            return (
                "pre-commit payload decrypted by attacker(s) "
                + ", ".join(f"pid {pid} x{count}" for pid, count in bad)
            )
        return None

    cluster.watchdog.add_check("commit-reveal-secrecy", secrecy_check)
    result = cluster.run()

    violations = list(result.invariant_violations)
    logs = {
        node.pid: [(seq, cid.hex()) for seq, cid in node.output_sequence()]
        for node in cluster.nodes
    }
    digest_body = json.dumps(
        {
            "logs": logs,
            "violations": violations,
            "safety": result.safety_violation,
        },
        sort_keys=True,
    )
    return FuzzOutcome(
        schedule=schedule,
        ok=not violations and result.safety_violation is None,
        violations=violations,
        safety_violation=result.safety_violation,
        invariant_checks=result.invariant_checks,
        committed_lens={pid: len(log) for pid, log in logs.items()},
        executed_total=result.executed_total,
        probe_attempts=sum(node.probe_attempts for node in probers),
        probe_successes=sum(node.probe_successes for node in probers),
        digest=hashlib.sha256(digest_body.encode()).hexdigest(),
    )


# ----------------------------------------------------------------------
# Shrinking: ddmin-style schedule bisection.
# ----------------------------------------------------------------------
def _components(
    schedule: FuzzSchedule,
) -> List[Tuple[str, Any]]:
    out: List[Tuple[str, Any]] = []
    out.extend(("attack", a) for a in schedule.attacks)
    out.extend(("link", lf) for lf in schedule.plan.links)
    out.extend(("crash", ce) for ce in schedule.plan.crashes)
    return out


def _rebuild(schedule: FuzzSchedule, comps: List[Tuple[str, Any]]) -> FuzzSchedule:
    attacks = tuple(c for kind, c in comps if kind == "attack")
    links = tuple(c for kind, c in comps if kind == "link")
    crashes = tuple(c for kind, c in comps if kind == "crash")
    return FuzzSchedule(
        seed=schedule.seed,
        n_nodes=schedule.n_nodes,
        duration_us=schedule.duration_us,
        batch_size=schedule.batch_size,
        client_window=schedule.client_window,
        attacks=attacks,
        plan=FaultPlan(links=links, crashes=crashes),
        delta_piggyback=schedule.delta_piggyback,
        reliable_channels=schedule.reliable_channels,
        report_quorum=schedule.report_quorum,
        note=schedule.note + " (shrunk)" if schedule.note else "(shrunk)",
    )


def shrink_schedule(
    schedule: FuzzSchedule,
    failing: Optional[Callable[[FuzzSchedule], bool]] = None,
    *,
    max_runs: int = 64,
) -> FuzzSchedule:
    """Bisect a failing schedule to a minimal still-failing repro.

    ``failing(schedule)`` must return True while the schedule still
    trips the oracle (default: re-run it).  Removal works ddmin-style
    over the schedule's components — attack assignments, link faults,
    crash events — halving chunks first, then single components.  Knobs
    (``report_quorum``, ``delta_piggyback``) are preserved: they are part
    of the repro, not removable noise.
    """
    if failing is None:
        failing = lambda s: not run_schedule(s).ok
    comps = _components(schedule)
    current = schedule
    runs = 0
    gran = 2
    while comps and runs < max_runs:
        chunk = max(1, len(comps) // gran)
        reduced = False
        for i in range(0, len(comps), chunk):
            candidate = comps[:i] + comps[i + chunk:]
            if len(candidate) == len(comps):
                continue
            trial = _rebuild(schedule, candidate)
            runs += 1
            if failing(trial):
                comps = candidate
                current = trial
                gran = max(2, gran - 1)
                reduced = True
                break
            if runs >= max_runs:
                break
        if not reduced:
            if chunk == 1:
                break
            gran = min(max(1, len(comps)), gran * 2)
    return current


# ----------------------------------------------------------------------
# Corpus driver.
# ----------------------------------------------------------------------
@dataclass
class CorpusVerdict:
    """One corpus case's outcome versus its expectation."""

    case: CorpusCase
    outcome: FuzzOutcome
    #: True when the oracle verdict matched the case's expectation.
    passed: bool


def run_corpus(
    names: Optional[List[str]] = None, *, seed: int = 1
) -> List[CorpusVerdict]:
    """Run (a subset of) the corpus; each case must match its expectation:
    attacks against hardened Lyra leave the oracle clean, the weakened-knob
    cases must trip it."""
    picked = list(CORPUS) if not names else names
    verdicts = []
    for name in picked:
        case = CORPUS.get(name)
        if case is None:
            raise ValueError(f"unknown corpus case {name!r}; known: {sorted(CORPUS)}")
        outcome = run_schedule(case.schedule(seed))
        verdicts.append(
            CorpusVerdict(
                case=case,
                outcome=outcome,
                passed=(not outcome.ok) == case.expect_violation,
            )
        )
    return verdicts


__all__ = [
    "AttackAssignment",
    "FuzzSchedule",
    "FuzzOutcome",
    "CorpusVerdict",
    "generate_schedule",
    "run_schedule",
    "shrink_schedule",
    "run_corpus",
]
