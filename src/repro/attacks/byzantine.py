"""Byzantine Lyra replicas (§VI-D behaviours).

Each class deviates from :class:`~repro.core.node.LyraNode` in exactly one
way, so experiments can attribute effects:

- :class:`EquivocatingNode` — sends *different* (cipher, S_t) INITs to two
  halves of the network.  VVB-Unicity guarantees at most one version can
  gather 2f+1 validations, so the instance either delivers one version or
  rejects.
- :class:`SilentProposerNode` — sends its INIT to only ``reach`` replicas.
  The expiration timeout (Algorithm 1 lines 23-24) forces the instance to
  resolve (typically reject) instead of hanging, and forwards the INIT.
- :class:`FloodingNode` — proposes valid batches as fast as possible to
  dilute chain quality (§VI-D's flooding discussion).
- :class:`FutureSequenceNode` — requests sequence numbers far in the
  future to bloat correct replicas' memory; the ``future_bound_us``
  mitigation rejects them.
- :class:`PrefixStallerNode` — piggybacks artificially low locked /
  min-pending values to stall commit progress; the top-2f+1 selection rule
  (Algorithm 4 lines 83-85) makes it harmless for f < n/3.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.node import LyraNode
from repro.core.types import InstanceId, Transaction
from repro.core.vvb import INIT_KIND, message_digest
from repro.net.message import Message


class EquivocatingNode(LyraNode):
    """Broadcasts version A of its batch to even pids, version B to odd."""

    def _propose_batch(self, txs: List[Transaction]) -> None:
        if len(txs) < 1:
            return
        iid = InstanceId(self.pid, self._batch_counter)
        self._batch_counter += 1
        from repro.core.types import Batch

        # Two conflicting versions of "the same" instance.
        batch_a = Batch(self.pid, iid.batch_no, tuple(txs))
        batch_b = Batch(self.pid, iid.batch_no, tuple(reversed(txs)))
        s_ref = self.clock.now()
        preds = self.estimator.predict(s_ref)
        self.stats.batches_proposed += 1
        for group, batch in ((0, batch_a), (1, batch_b)):
            cipher = self.obf.encrypt(batch.serialize(), self.rng, self.pid)
            digest = message_digest(iid, cipher.cipher_id, preds)
            sigma = self.services.signer.sign(digest)
            payload = {
                "iid": iid,
                "cipher": cipher,
                "preds": preds,
                "sigma": sigma,
                "pb": self.commit.piggyback(),
            }
            message = Message(INIT_KIND, payload, cipher.wire_size() + 128)
            for dst in self.network.pids():
                if dst % 2 == group:
                    self.send(dst, message)


class SilentProposerNode(LyraNode):
    """Sends its INIT to only the first ``reach`` replicas."""

    def __init__(self, *args, reach: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reach = reach

    def _proto_broadcast(self, message: Message) -> None:
        if message.kind == INIT_KIND:
            message.payload["pb"] = self.commit.piggyback()
            targets = self.network.pids()[: self.reach]
            for dst in targets:
                self.send(dst, message)
            return
        super()._proto_broadcast(message)


class FloodingNode(LyraNode):
    """Proposes batches of junk transactions at a configurable rate."""

    def __init__(self, *args, flood_interval_us: int = 5_000, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.flood_interval_us = flood_interval_us
        self._flood_nonce = 0

    def start(self) -> None:
        super().start()
        self.timers.set("flood", self.flood_interval_us, self._flood_tick)

    def _flood_tick(self) -> None:
        txs = []
        for _ in range(self.config.batch_size):
            txs.append(
                Transaction(self.pid, self._flood_nonce, b"JUNK")
            )
            self._flood_nonce += 1
        self._propose_batch(txs)
        self.timers.set("flood", self.flood_interval_us, self._flood_tick)


class FutureSequenceNode(LyraNode):
    """Requests sequence numbers ``offset_us`` in the future (memory
    saturation attack, §VI-D)."""

    def __init__(self, *args, offset_us: int = 3_600_000_000, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.offset_us = offset_us

    def _propose_batch(self, txs: List[Transaction]) -> None:
        if not txs:
            return
        iid = InstanceId(self.pid, self._batch_counter)
        self._batch_counter += 1
        from repro.core.types import Batch

        batch = Batch(self.pid, iid.batch_no, tuple(txs))
        cipher = self.obf.encrypt(batch.serialize(), self.rng, self.pid)
        s_ref = self.clock.now()
        self._s_ref[iid] = s_ref
        # Honest prediction plus a huge uniform shift: Equation 1 still
        # holds per-validator (|seq_i - S_t[i]| uses the *predicted* value,
        # which we shift consistently)... except validators perceive c_t at
        # the honest time, so the shift breaks Equation 1 unless it is
        # within lambda.  The shifted request instead targets the
        # future-bound check: s far beyond every acceptance window.
        preds = tuple(p + self.offset_us for p in self.estimator.predict(s_ref))
        self._proposed_at[iid] = self.sim.now
        self.stats.batches_proposed += 1
        self._instance(iid).propose(cipher, preds)


class PrefixStallerNode(LyraNode):
    """Reports absurdly low locked / min-pending values (Algorithm 4's
    remark: mitigated by using the 2f+1 *highest* reports)."""

    def _proto_broadcast(self, message: Message) -> None:
        if self.commit is not None:
            pb = self.commit.piggyback()
            pb = dict(pb, locked=-(1 << 50), minp=-(1 << 50))
            message.payload["pb"] = pb
            message.size += self.commit.piggyback_size()
            self._charge_send_cost(message)
            self.broadcast(message)
            return
        super()._proto_broadcast(message)


class CipherReplayNode(LyraNode):
    """Copies the first foreign cipher it sees into its own instance.

    The strongest "replay" available under commit-reveal: the attacker
    cannot read or re-author the payload, only duplicate the opaque cipher.
    Since the plaintext still carries the victim's identity, the duplicate
    merely executes the victim's intent (once — replicas dedup executions
    by transaction key), so the attack gains nothing.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.replayed_cipher_id = None

    def _dispatch_instance(self, kind, payload, sender):
        from repro.core.vvb import INIT_KIND

        if (
            kind == INIT_KIND
            and self.replayed_cipher_id is None
            and isinstance(payload.get("iid"), InstanceId)
            and payload["iid"].proposer != self.pid
            and payload.get("cipher") is not None
        ):
            cipher = payload["cipher"]
            self.replayed_cipher_id = cipher.cipher_id
            iid = InstanceId(self.pid, self._batch_counter)
            self._batch_counter += 1
            s_ref = self.clock.now()
            self._s_ref[iid] = s_ref
            preds = self.estimator.predict(s_ref)
            self._instance(iid).propose(cipher, preds)
        super()._dispatch_instance(kind, payload, sender)


__all__ = [
    "EquivocatingNode",
    "SilentProposerNode",
    "FloodingNode",
    "FutureSequenceNode",
    "PrefixStallerNode",
    "CipherReplayNode",
]
