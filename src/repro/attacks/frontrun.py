"""The Fig. 1 front-running scenario.

Alice (Tokyo) broadcasts a market transaction ``t1``.  Mallory (Singapore)
observes it in flight and immediately issues her own ``t2``.  Because
``ping(A, M) + ping(M, C) < ping(A, C)`` for the validators "on the far
side" (São Paulo — Carole in the paper's figure), ``t2`` *arrives before*
``t1`` at a majority of validators.

- Against **Pompē-style ordering** (timestamps = clear-text arrival times,
  median of 2f+1): when a quorum of validators sits on violating paths,
  Mallory's median timestamp undercuts Alice's even though she reacted
  strictly later → the front-run lands (``run_fig1_pompe``).
- Against **Lyra**: the payload is VSS-encrypted, so observing ``c_t``
  carries no information to react to; by the time the payload is revealed
  the transaction sits in a committed (locked) prefix, and any transaction
  requesting a backdated sequence number is rejected by the acceptance
  window (``run_fig1_lyra``).

Both entry points run full message-level clusters; the scenario object
also exposes a closed-form arrival analysis used by tests and the
quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attacks.pompe_attacks import CherryPickingOrdererNode, ObservingAttacker
from repro.core.node import CLIENT_TX_KIND
from repro.core.smr import front_running_succeeded
from repro.core.types import Transaction
from repro.harness.config import ExperimentConfig
from repro.net.latency import region_latency_ms
from repro.sim.engine import MILLISECONDS


@dataclass
class Fig1Scenario:
    """Topology of the motivating example.

    ``n_far`` validators sit in Carole's region (São Paulo); one correct
    validator serves Alice (Tokyo); Mallory runs the Singapore validator.
    """

    victim_region: str = "tokyo"
    attacker_region: str = "singapore"
    far_region: str = "saopaulo"
    n_far: int = 5  # with tokyo + singapore replicas: n = 7, f = 2

    @property
    def n(self) -> int:
        return self.n_far + 2

    @property
    def f(self) -> int:
        return (self.n - 1) // 3

    def regions(self) -> List[str]:
        """Replica placement, round-robin-compatible ordering: pid 0 is the
        victim's home, pid 1 is Mallory, the rest are far validators."""
        return [self.victim_region, self.attacker_region] + [
            self.far_region
        ] * self.n_far

    # ------------------------------------------------------------------
    # Closed-form arrival analysis (no simulation; used by tests/examples)
    # ------------------------------------------------------------------
    def arrival_times_ms(self) -> Tuple[List[float], List[float]]:
        """Per-validator arrival times of t1 (from the victim) and t2
        (from the attacker, who reacts upon observing t1)."""
        regions = self.regions()
        observe_delay = region_latency_ms(self.victim_region, self.attacker_region)
        victim = [region_latency_ms(self.victim_region, r) for r in regions]
        attacker = [
            observe_delay + region_latency_ms(self.attacker_region, r)
            for r in regions
        ]
        return victim, attacker

    def median_timestamps_ms(self) -> Tuple[float, float]:
        """Pompē-style assigned timestamps: the victim collects the first
        2f+1 replies; the attacker cherry-picks the lowest 2f+1."""
        victim_arrivals, attacker_arrivals = self.arrival_times_ms()
        q = 2 * self.f + 1
        # The victim's replies return fastest from the nearest validators:
        # reply return time = arrival + return latency; collect first q.
        regions = self.regions()
        victim_return = sorted(
            range(self.n),
            key=lambda i: victim_arrivals[i]
            + region_latency_ms(regions[i], self.victim_region),
        )[:q]
        victim_ts = sorted(victim_arrivals[i] for i in victim_return)[self.f]
        attacker_ts = sorted(attacker_arrivals)[:q][self.f]
        return victim_ts, attacker_ts

    def analytic_attack_wins(self) -> bool:
        victim_ts, attacker_ts = self.median_timestamps_ms()
        return attacker_ts < victim_ts


@dataclass
class Fig1Outcome:
    """Result of one full-cluster attack run."""

    attack_succeeded: Optional[bool]
    victim_position: Optional[int]
    attacker_position: Optional[int]
    attacker_observed_plaintext: bool
    attacker_rejected: bool = False
    detail: str = ""


def run_fig1_pompe(
    scenario: Optional[Fig1Scenario] = None,
    *,
    seed: int = 7,
    duration_us: int = 12_000_000,
) -> Fig1Outcome:
    """Run Fig. 1 against a Pompē cluster with a Byzantine observer.

    pid 1 (Singapore) runs :class:`CherryPickingOrdererNode`: on observing
    a batch whose payload matches the victim marker, it immediately orders
    its own front-running transaction and cherry-picks the lowest 2f+1
    timestamp endorsements.
    """
    from repro.harness.attack_runner import run_pompe_attack

    scenario = scenario or Fig1Scenario()
    return run_pompe_attack(scenario, seed=seed, duration_us=duration_us)


def run_fig1_lyra(
    scenario: Optional[Fig1Scenario] = None,
    *,
    seed: int = 7,
    duration_us: int = 12_000_000,
) -> Fig1Outcome:
    """Run Fig. 1 against a Lyra cluster.

    The attacker watches every cipher it receives; it can only react to
    *content* after the reveal, at which point it attempts a backdated
    sequence number — rejected by the acceptance window (locked prefix).
    """
    from repro.harness.attack_runner import run_lyra_attack

    scenario = scenario or Fig1Scenario()
    return run_lyra_attack(scenario, seed=seed, duration_us=duration_us)


__all__ = ["Fig1Scenario", "Fig1Outcome", "run_fig1_pompe", "run_fig1_lyra"]
