"""Reordering attacks and Byzantine behaviours (§I Fig. 1, §V-E, §VI-D).

- :mod:`repro.attacks.frontrun` — the Fig. 1 triangle-inequality
  front-running scenario, runnable against Pompē-style clear-text ordering
  (succeeds) and against Lyra commit-reveal (structurally fails).
- :mod:`repro.attacks.byzantine` — Byzantine Lyra replicas: equivocating
  broadcasters, prefix stallers, flooders, future-sequence spammers,
  silent/partial proposers.
- :mod:`repro.attacks.pompe_attacks` — Byzantine Pompē participants:
  the censoring HotStuff leader and the timestamp cherry-picking orderer.
- :mod:`repro.attacks.corpus` — the commit-reveal / piggyback attack
  corpus: selective-reveal and piggyback-forgery replicas plus the named
  :data:`~repro.attacks.corpus.CORPUS` cases mapped to the audit findings
  they stress.
- :mod:`repro.attacks.registry` — the name→class registry resolving
  ``ExperimentConfig.attack_nodes`` into cluster builder maps.
- :mod:`repro.attacks.fuzz` — the seeded adversarial-schedule fuzzer
  (generate / run / shrink / replay).
"""

from repro.attacks.frontrun import (
    Fig1Scenario,
    Fig1Outcome,
    run_fig1_pompe,
    run_fig1_lyra,
)
from repro.attacks.byzantine import (
    CipherReplayNode,
    EquivocatingNode,
    FloodingNode,
    FutureSequenceNode,
    PrefixStallerNode,
    SilentProposerNode,
)
from repro.attacks.pompe_attacks import (
    CensoringLeaderNode,
    CherryPickingOrdererNode,
)
from repro.attacks.corpus import (
    CORPUS,
    CorpusCase,
    PiggybackForgeryNode,
    SelectiveRevealNode,
)
from repro.attacks.registry import ATTACK_NODE_CLASSES, resolve_attack_nodes

__all__ = [
    "Fig1Scenario",
    "Fig1Outcome",
    "run_fig1_pompe",
    "run_fig1_lyra",
    "CipherReplayNode",
    "EquivocatingNode",
    "FloodingNode",
    "FutureSequenceNode",
    "PrefixStallerNode",
    "SilentProposerNode",
    "CensoringLeaderNode",
    "CherryPickingOrdererNode",
    "SelectiveRevealNode",
    "PiggybackForgeryNode",
    "CorpusCase",
    "CORPUS",
    "ATTACK_NODE_CLASSES",
    "resolve_attack_nodes",
]
