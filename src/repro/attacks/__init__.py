"""Reordering attacks and Byzantine behaviours (§I Fig. 1, §V-E, §VI-D).

- :mod:`repro.attacks.frontrun` — the Fig. 1 triangle-inequality
  front-running scenario, runnable against Pompē-style clear-text ordering
  (succeeds) and against Lyra commit-reveal (structurally fails).
- :mod:`repro.attacks.byzantine` — Byzantine Lyra replicas: equivocating
  broadcasters, prefix stallers, flooders, future-sequence spammers,
  silent/partial proposers.
- :mod:`repro.attacks.pompe_attacks` — Byzantine Pompē participants:
  the censoring HotStuff leader and the timestamp cherry-picking orderer.
"""

from repro.attacks.frontrun import (
    Fig1Scenario,
    Fig1Outcome,
    run_fig1_pompe,
    run_fig1_lyra,
)
from repro.attacks.byzantine import (
    CipherReplayNode,
    EquivocatingNode,
    FloodingNode,
    FutureSequenceNode,
    PrefixStallerNode,
    SilentProposerNode,
)
from repro.attacks.pompe_attacks import (
    CensoringLeaderNode,
    CherryPickingOrdererNode,
)

__all__ = [
    "Fig1Scenario",
    "Fig1Outcome",
    "run_fig1_pompe",
    "run_fig1_lyra",
    "CipherReplayNode",
    "EquivocatingNode",
    "FloodingNode",
    "FutureSequenceNode",
    "PrefixStallerNode",
    "SilentProposerNode",
    "CensoringLeaderNode",
    "CherryPickingOrdererNode",
]
