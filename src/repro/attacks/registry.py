"""Name → class registry for attack replicas.

Mirrors :func:`repro.workload.spec.mev_node_classes`: a serialisable
description (``ExperimentConfig.attack_nodes``) resolves here into the
``node_classes`` / ``node_kwargs`` maps the cluster builders take, so
attack experiments — and fuzzer schedules — can ride the sweep cache and
cross process boundaries like any other config knob.

This module only imports the attack node classes (which depend on
``repro.core``, never on the harness), so cluster builders can import it
without a cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple, Union

from repro.attacks.byzantine import (
    CipherReplayNode,
    EquivocatingNode,
    FloodingNode,
    FutureSequenceNode,
    PrefixStallerNode,
    SilentProposerNode,
)
from repro.attacks.corpus import PiggybackForgeryNode, SelectiveRevealNode
from repro.core.node import LyraNode

#: Every attack replica class, by stable name.  Names are wire format:
#: they appear in serialized ``ExperimentConfig.attack_nodes`` entries and
#: in saved fuzzer schedules, so renaming one is a breaking change.
ATTACK_NODE_CLASSES: Dict[str, type] = {
    "equivocate": EquivocatingNode,
    "silent-proposer": SilentProposerNode,
    "flood": FloodingNode,
    "future-sequence": FutureSequenceNode,
    "prefix-staller": PrefixStallerNode,
    "cipher-replay": CipherReplayNode,
    "selective-reveal": SelectiveRevealNode,
    "piggyback-forgery": PiggybackForgeryNode,
}

#: One attack assignment: a bare registry name, or {"name": ..., "kwargs": {...}}.
AttackSpec = Union[str, Mapping[str, Any]]


def resolve_attack_nodes(
    attack_nodes: Mapping[Union[int, str], AttackSpec], n: int
) -> Tuple[Dict[int, type], Dict[int, dict]]:
    """Resolve ``ExperimentConfig.attack_nodes`` into builder maps.

    Keys may be ints or their string form (JSON object keys); values are
    registry names or ``{"name", "kwargs"}`` mappings.  Returns
    ``(node_classes, node_kwargs)`` keyed by pid.
    """
    classes: Dict[int, type] = {}
    kwargs: Dict[int, dict] = {}
    for raw_pid, spec in attack_nodes.items():
        pid = int(raw_pid)
        if not 0 <= pid < n:
            raise ValueError(f"attack_nodes targets unknown pid {pid} (n={n})")
        if isinstance(spec, str):
            spec = {"name": spec}
        unknown = set(spec) - {"name", "kwargs"}
        if unknown:
            raise ValueError(
                f"unknown attack_nodes fields for pid {pid}: {sorted(unknown)}"
            )
        name = spec.get("name")
        cls = ATTACK_NODE_CLASSES.get(name)
        if cls is None:
            raise ValueError(
                f"unknown attack node class {name!r}; known: "
                f"{sorted(ATTACK_NODE_CLASSES)}"
            )
        classes[pid] = cls
        extra = dict(spec.get("kwargs") or {})
        # JSON round-trips tuples as lists; node constructors normalise.
        kwargs[pid] = extra
    return classes, kwargs


def byzantine_pids(node_classes: Mapping[int, type]) -> Tuple[int, ...]:
    """Pids whose class deviates from the honest :class:`LyraNode` — the
    set that counts against the resilience bound f alongside crashes."""
    return tuple(
        sorted(
            pid
            for pid, cls in node_classes.items()
            if cls is not LyraNode and issubclass(cls, LyraNode)
        )
    )


__all__ = ["ATTACK_NODE_CLASSES", "resolve_attack_nodes", "byzantine_pids"]
