"""Byzantine behaviours against Pompē.

- :class:`CherryPickingOrdererNode` — Fig. 1's Mallory: watches the
  clear-text ordering phase; when the victim's transaction appears, she
  instantly issues her own front-running transaction, and biases its
  assigned timestamp downward by waiting for *all* timestamp replies and
  keeping only the lowest 2f+1 (an honest orderer takes the first quorum).
  Both moves are protocol-legal for a Byzantine node: the certificate
  still carries 2f+1 valid signatures.
- :class:`CensoringLeaderNode` — a HotStuff leader that silently omits
  certificates from victim proposers, demonstrating the leader-based
  censorship §I attributes to Fino-style protocols (and which leaderless
  Lyra removes by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.baselines.pompe import (
    ORDER_TS_KIND,
    OrderingCert,
    PompeNode,
)
from repro.core.types import Batch, Transaction
from repro.crypto.signatures import Signature

#: Body prefixes marking the victim's and the attacker's transactions in
#: attack experiments (the "content" Mallory profits from reacting to).
VICTIM_MARKER = b"VICTM"
ATTACK_MARKER = b"ATTCK"


def is_victim_tx(tx: Transaction) -> bool:
    return tx.body.startswith(VICTIM_MARKER)


def is_attack_tx(tx: Transaction) -> bool:
    return tx.body.startswith(ATTACK_MARKER)


def batch_contains(batch: Batch, marker: bytes) -> bool:
    return any(tx.body.startswith(marker) for tx in batch.txs)


@dataclass
class ObservingAttacker:
    """Bookkeeping shared by attack nodes: when the victim's payload was
    first observed and when the attack transaction was launched."""

    observed_at_us: Optional[int] = None
    attacked_at_us: Optional[int] = None

    @property
    def reacted(self) -> bool:
        return self.attacked_at_us is not None


class CherryPickingOrdererNode(PompeNode):
    """Mallory: observe clear-text batches, front-run, cherry-pick medians."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.attack = ObservingAttacker()
        self._attack_nonce = 0
        self.observe_batch = self._observe

    # -- observation + reaction ---------------------------------------
    def _observe(self, batch: Batch, sender: int) -> None:
        if self.attack.reacted or not batch_contains(batch, VICTIM_MARKER):
            return
        self.attack.observed_at_us = self.sim.now
        self.attack.attacked_at_us = self.sim.now
        front_run = Transaction(
            client_id=self.pid, nonce=self._attack_nonce, body=ATTACK_MARKER
        )
        self._attack_nonce += 1
        # Bypass batching: one-transaction batch, ordered immediately.
        self._start_ordering([front_run])

    # -- timestamp cherry-picking --------------------------------------
    def _on_order_ts(self, payload: dict, sender: int) -> None:
        digest = payload.get("digest")
        ts = payload.get("ts")
        sig = payload.get("sig")
        state = self._pending_order.get(digest)
        if state is None or not isinstance(ts, int) or not isinstance(sig, Signature):
            return
        if sender in state["replies"]:
            return
        if not self.registry.verify((digest, ts), sig, sender):
            return
        state["replies"][sender] = (ts, sig)
        quorum = 2 * self.f + 1
        # Byzantine deviation: wait for every replica's reply (or a 2Δ
        # timer) and then keep only the lowest 2f+1 timestamps.
        if len(state["replies"]) == quorum:
            self.timers.set(
                f"cherry-{digest.hex()[:12]}",
                2 * self.services.delta_us,
                lambda d=digest: self._finalize_cherry(d),
            )
        if len(state["replies"]) == self.n:
            self._finalize_cherry(digest)

    def _finalize_cherry(self, digest: bytes) -> None:
        state = self._pending_order.pop(digest, None)
        if state is None:
            return
        self.timers.cancel(f"cherry-{digest.hex()[:12]}")
        quorum = 2 * self.f + 1
        picked = sorted(
            ((pid, t, s) for pid, (t, s) in state["replies"].items()),
            key=lambda e: e[1],
        )[:quorum]
        times = sorted(t for _, t, _ in picked)
        median = times[self.f]
        cert = OrderingCert(state["batch"], digest, median, tuple(picked))
        self.stats.batches_ordered += 1
        self.hotstuff.submit(cert)


class CensoringLeaderNode(PompeNode):
    """A HotStuff leader that drops certificates from censored proposers."""

    def __init__(self, *args, censored: Iterable[int] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.censored: Set[int] = set(censored)
        self.censored_count = 0

    def _process(self, message, sender: int) -> None:
        if message.kind == "hs.request":
            payload = message.payload if isinstance(message.payload, dict) else {}
            cert = payload.get("payload")
            if (
                isinstance(cert, OrderingCert)
                and cert.batch.proposer in self.censored
            ):
                self.censored_count += 1
                return  # silently dropped
        super()._process(message, sender)

    def submit(self, tx, client_pid=None):  # own certs are never censored
        super().submit(tx, client_pid)


__all__ = [
    "CherryPickingOrdererNode",
    "CensoringLeaderNode",
    "ObservingAttacker",
    "VICTIM_MARKER",
    "ATTACK_MARKER",
    "is_victim_tx",
    "is_attack_tx",
    "batch_contains",
]
