"""Commit-reveal and piggyback attack corpus (ROADMAP item 3).

Production audits of commit-reveal ordering (the AELF findings quoted in
SNIPPETS.md) document two bug classes that map directly onto Lyra's
security argument:

- **selective reveal** — a participant withholds, delays, or per-victim
  targets its decryption shares, trying to read payloads before the order
  is fixed or to starve specific peers of reveal material.  Lemma 7's
  (2f+1, n) VSS threshold is the defence: fewer than 2f+1 shares reveal
  nothing, and the f withholdable shares are never needed.
- **validation-ordering forgery** — a participant lies in the Algorithm-4
  piggyback reports that drive locked/stable/committed prefix derivation:
  stale or equivocating locked/min-pending/accepted reports, forged
  delta-encoded "no change since seq k" markers, and ignored
  ``lyra.pb_pull`` recovery requests.  The min-of-top-2f+1 selection rule
  is the defence: with at most f liars, the derived bound never passes
  every honest report.

Each node class below layers exactly one such behaviour on
:class:`~repro.core.node.LyraNode` via the three protocol hooks
(``_attach_piggyback``, ``_broadcast_decryption_shares``, ``_on_pb_pull``)
so the commit protocol itself is never forked.  :data:`CORPUS` packages
them into named cases — each mapped to the audit finding / lemma it
stresses, with the expected oracle verdict — runnable via
``python -m repro fuzz --corpus`` or :func:`repro.attacks.fuzz.run_corpus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.commit import NO_PENDING, DSHARE_KIND
from repro.core.node import LyraNode
from repro.core.types import InstanceId
from repro.core.vvb import INIT_KIND
from repro.net.message import Message


class SelectiveRevealNode(LyraNode):
    """Withholds, delays, or per-victim targets its decryption shares.

    Modes:

    - ``withhold`` — never broadcast our shares (the canonical
      reveal-withholding attack on commit-reveal schemes);
    - ``delay`` — hold every share batch back by ``delay_us`` before
      releasing it (timing the reveal);
    - ``targeted`` — broadcast to everyone *except* ``victims`` (per-victim
      share starvation).

    Independently of the mode, the node also *probes*: on every foreign
    INIT it attempts to decrypt the cipher pre-commit with every share it
    can mint or has eavesdropped so far.  ``probe_successes`` must stay 0
    against the (2f+1, n) VSS scheme — the fuzzer's secrecy oracle turns a
    non-zero count into an invariant violation.
    """

    def __init__(
        self,
        *args,
        mode: str = "withhold",
        victims: Tuple[int, ...] = (),
        delay_us: int = 400_000,
        probe: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if mode not in ("withhold", "delay", "targeted"):
            raise ValueError(f"unknown selective-reveal mode {mode!r}")
        self.mode = mode
        self.victims = tuple(int(v) for v in victims)
        self.delay_us = delay_us
        self.probe = probe
        self.withheld_batches = 0
        self.probe_attempts = 0
        self.probe_successes = 0

    def _broadcast_decryption_shares(self, items) -> None:
        if self.mode == "withhold":
            self.withheld_batches += 1
            return
        if self.mode == "delay":
            self.withheld_batches += 1
            epoch = self.incarnation
            self.sim.schedule(
                self.delay_us, lambda: self._release_shares(items, epoch)
            )
            return
        # targeted: everyone but the victims gets our shares.
        payload = {"items": tuple(items)}
        size = sum(s.wire_size() for _, s in items)
        for dst in self.network.pids():
            if dst in self.victims:
                self.withheld_batches += 1
                continue
            self.send(dst, Message(DSHARE_KIND, dict(payload), size))

    def _release_shares(self, items, epoch: int) -> None:
        if self.crashed or self.incarnation != epoch:
            return
        LyraNode._broadcast_decryption_shares(self, items)

    def _dispatch_instance(self, kind: str, payload: dict, sender: int) -> None:
        if self.probe and kind == INIT_KIND:
            iid = payload.get("iid")
            cipher = payload.get("cipher")
            if (
                isinstance(iid, InstanceId)
                and iid.proposer != self.pid
                and cipher is not None
            ):
                self._probe_cipher(iid, cipher)
        super()._dispatch_instance(kind, payload, sender)

    def _probe_cipher(self, iid: InstanceId, cipher: Any) -> None:
        """Lemma-7 probe: try to read the payload before it is committed,
        using our own mintable share plus any shares seen so far."""
        commit = self.commit
        if commit is None or iid in commit.committed_ids:
            return
        self.probe_attempts += 1
        shares: List[Any] = []
        try:
            shares.append(self.obf.partial_decrypt(cipher, self.pid))
        except Exception:
            pass
        bucket = commit._dshares.get(cipher.cipher_id)
        if bucket:
            shares.extend(bucket.values())
        try:
            plaintext = self.obf.decrypt(cipher, shares)
        except Exception:
            return
        if plaintext:
            self.probe_successes += 1


class PiggybackForgeryNode(LyraNode):
    """Forges the Algorithm-4 piggyback reports on every broadcast.

    Modes (full-report encoding, ``delta_piggyback=False``):

    - ``stale`` — freeze the first report ever sent and replay it forever;
    - ``inflate`` — report a far-future ``locked`` and ``minp=NO_PENDING``
      (the dual of :class:`~repro.attacks.byzantine.PrefixStallerNode`:
      instead of stalling, try to *rush* peers' stable/committed bounds);
    - ``equivocate`` — per-destination reports: even pids see inflated
      bounds, odd pids see stalling ones (broadcast fan-out is zero-copy,
      so this needs per-destination sends).

    Modes (delta encoding, ``delta_piggyback=True``):

    - ``stale-marker`` — send one genuine full report, then forever claim
      "no change since seq k" markers against it even as state changes;
    - ``bogus-marker`` — markers referencing a full-report sequence number
      that was never sent, forcing every peer down the ``lyra.pb_pull``
      recovery path;
    - ``inflate`` — forged full reports (far-future locked, no pending)
      with a fresh sequence number each time.

    ``answer_pulls=False`` additionally turns the node into a lying
    ``lyra.pb_pull`` responder: it counts and drops every pull request.
    """

    FULL_MODES = ("stale", "inflate", "equivocate")
    DELTA_MODES = ("stale-marker", "bogus-marker", "inflate")

    def __init__(
        self,
        *args,
        mode: str = "inflate",
        answer_pulls: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if mode not in set(self.FULL_MODES) | set(self.DELTA_MODES):
            raise ValueError(f"unknown piggyback-forgery mode {mode!r}")
        self.mode = mode
        self.answer_pulls = answer_pulls
        self.pulls_ignored = 0
        self.forged_reports = 0
        self._stale_pb: Optional[dict] = None
        self._stale_marker_seq: Optional[int] = None
        self._forge_seq = 0

    # -- forged full reports ------------------------------------------
    def _forged_full(self, commit) -> dict:
        pb = commit.piggyback()
        if self.mode == "stale":
            if self._stale_pb is None:
                self._stale_pb = dict(pb)
            return dict(self._stale_pb)
        if self.mode == "inflate":
            return dict(pb, locked=pb["locked"] + (1 << 40), minp=NO_PENDING)
        return pb

    # -- forged delta reports -----------------------------------------
    def _forged_delta(self, commit) -> dict:
        locked = commit.clock.read() - commit.L
        if self.mode == "bogus-marker":
            # "No change since seq k" against a full report never sent.
            return {"l": locked, "k": 1 << 30}
        if self.mode == "stale-marker":
            if self._stale_marker_seq is None:
                commit.force_full_piggyback()
                pbd = commit.piggyback_delta()
                self._stale_marker_seq = pbd["s"]
                return pbd
            return {"l": locked, "k": self._stale_marker_seq}
        # inflate: a forged full report with a fresh sequence number.
        self._forge_seq += 1
        return {
            "l": locked + (1 << 40),
            "m": NO_PENDING,
            "a": tuple(commit.accepted.values()),
            "s": self._forge_seq,
        }

    def _attach_piggyback(self, message: Message, commit) -> None:
        self.forged_reports += 1
        if commit.config.delta_piggyback:
            pbd = self._forged_delta(commit)
            message.payload["pbd"] = pbd
            message.size += commit.piggyback_delta_size(pbd)
        else:
            message.payload["pb"] = self._forged_full(commit)
            message.size += commit.piggyback_size()

    def _proto_broadcast(self, message: Message) -> None:
        if self.mode != "equivocate" or self.commit is None:
            super()._proto_broadcast(message)
            return
        # Equivocation needs per-destination frames: the network's
        # broadcast fan-out shares one Message object across recipients.
        commit = self.commit
        pb = commit.piggyback()
        size = commit.piggyback_size()
        self._charge_send_cost(message)
        self.forged_reports += 1
        for dst in self.network.pids():
            if dst % 2 == 0:
                forged = dict(pb, locked=pb["locked"] + (1 << 40), minp=NO_PENDING)
            else:
                forged = dict(pb, locked=-(1 << 50), minp=-(1 << 50))
            copy = Message(message.kind, dict(message.payload), message.size + size)
            copy.payload["pb"] = forged
            self.send(dst, copy)

    def _on_pb_pull(self, sender: int) -> None:
        if not self.answer_pulls:
            self.pulls_ignored += 1
            return
        super()._on_pb_pull(sender)


# ----------------------------------------------------------------------
# The corpus: named cases mapping each behaviour to the audit finding /
# lemma it stresses, with the oracle verdict Lyra must produce.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusCase:
    """One named attack scenario with its expected oracle verdict."""

    name: str
    #: The audit finding / paper lemma this case stresses.
    target: str
    #: True when the invariant oracle *must* flag a violation (only the
    #: deliberately weakened-knob cases — they prove the oracle can catch
    #: the bug class the hardened default defends against).
    expect_violation: bool
    description: str
    #: seed -> FuzzSchedule (imported lazily to avoid a module cycle).
    build: Callable[[int], Any]

    def schedule(self, seed: int = 1):
        return self.build(seed)


def _case_schedule(
    seed: int,
    *,
    attacks: Tuple[Tuple[int, str, Dict[str, Any]], ...],
    delta_piggyback: bool = False,
    report_quorum: Optional[int] = None,
    batch_size: int = 8,
    client_window: int = 4,
    note: str = "",
):
    from repro.attacks.fuzz import AttackAssignment, FuzzSchedule

    return FuzzSchedule(
        seed=seed,
        attacks=tuple(
            AttackAssignment(pid=pid, name=name, kwargs=dict(kwargs))
            for pid, name, kwargs in attacks
        ),
        delta_piggyback=delta_piggyback,
        report_quorum=report_quorum,
        batch_size=batch_size,
        client_window=client_window,
        note=note,
    )


def _build_corpus() -> Dict[str, CorpusCase]:
    cases = [
        CorpusCase(
            name="selective-reveal-withhold",
            target="AELF selective-reveal finding; Lemma 7 ((2f+1, n) VSS)",
            expect_violation=False,
            description=(
                "Replica 1 never broadcasts its decryption shares and "
                "probes every foreign cipher pre-commit; 2f+1 honest "
                "shares still reveal every committed payload and no probe "
                "may succeed."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "selective-reveal", {"mode": "withhold"}),),
                note="selective-reveal-withhold",
            ),
        ),
        CorpusCase(
            name="selective-reveal-targeted",
            target="AELF selective-reveal finding (per-victim variant); Lemma 7",
            expect_violation=False,
            description=(
                "Replica 1 starves replica 0 of its shares specifically; "
                "the victim still reaches the threshold from the other "
                "honest replicas."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=(
                    (1, "selective-reveal", {"mode": "targeted", "victims": [0]}),
                ),
                note="selective-reveal-targeted",
            ),
        ),
        CorpusCase(
            name="selective-reveal-delay",
            target="Reveal-timing attack (SoK on fair ordering); Lemma 7",
            expect_violation=False,
            description=(
                "Replica 1 delays every share batch by 400 ms; commit "
                "order is already fixed, so timing the reveal gains "
                "nothing and execution merely lags."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "selective-reveal", {"mode": "delay"}),),
                note="selective-reveal-delay",
            ),
        ),
        CorpusCase(
            name="pb-forge-stale",
            target="Validation-ordering audit findings; Lemmas 4-6 (top-2f+1)",
            expect_violation=False,
            description=(
                "Replica 1 replays its first piggyback report forever; a "
                "single stale report cannot hold back min-of-top-2f+1 "
                "bounds."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "piggyback-forgery", {"mode": "stale"}),),
                note="pb-forge-stale",
            ),
        ),
        CorpusCase(
            name="pb-forge-inflate",
            target="Validation-ordering audit findings; Lemmas 4-6 (top-2f+1)",
            expect_violation=False,
            description=(
                "Replica 1 reports a far-future locked bound and an empty "
                "pending set, trying to rush peers into premature "
                "commits; min-of-top-2f+1 keeps the derived bound at an "
                "honest report."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "piggyback-forgery", {"mode": "inflate"}),),
                note="pb-forge-inflate",
            ),
        ),
        CorpusCase(
            name="pb-forge-equivocate",
            target="Report equivocation (Quick Order Fairness stress); Lemmas 4-6",
            expect_violation=False,
            description=(
                "Replica 1 tells even pids inflated bounds and odd pids "
                "stalling ones; both forgeries are single reports inside "
                "each peer's top-2f+1 selection."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "piggyback-forgery", {"mode": "equivocate"}),),
                note="pb-forge-equivocate",
            ),
        ),
        CorpusCase(
            name="pbd-forge-marker",
            target="Delta-piggyback staleness (§V-C); pb_pull recovery path",
            expect_violation=False,
            description=(
                "Replica 1 sends one genuine full report then lies 'no "
                "change since seq k' forever; peers keep a stale "
                "min-pending for it, which degrades freshness but never "
                "safety."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "piggyback-forgery", {"mode": "stale-marker"}),),
                delta_piggyback=True,
                note="pbd-forge-marker",
            ),
        ),
        CorpusCase(
            name="pbd-forge-bogus",
            target="Forged pbd markers + lying pb_pull responder (§V-C)",
            expect_violation=False,
            description=(
                "Replica 1 sends markers referencing a full report that "
                "never existed and drops every pb_pull request; peers "
                "fall back to locked-only updates for it and stay safe."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=(
                    (
                        1,
                        "piggyback-forgery",
                        {"mode": "bogus-marker", "answer_pulls": False},
                    ),
                ),
                delta_piggyback=True,
                note="pbd-forge-bogus",
            ),
        ),
        CorpusCase(
            name="pb-forge-inflate-weakened",
            target=(
                "Oracle calibration: report_quorum=1 reproduces the "
                "unvalidated-single-report bug class the audits flag"
            ),
            expect_violation=True,
            description=(
                "Same inflating forger, but the report quorum is "
                "deliberately weakened from 2f+1 to 1 (trust any single "
                "report).  The forged locked bound is adopted verbatim, "
                "replicas commit accepted entries instantly in divergent "
                "orders, and the watchdog must flag ordered-output / "
                "prefix-agreement violations — proving the oracle catches "
                "the bug class the hardened default defends against.  The "
                "load is raised (smaller batches, larger windows) so "
                "concurrent instances actually overlap: with one instance "
                "in flight at a time the premature commits stay accidentally "
                "ordered and the bug hides."
            ),
            build=lambda seed: _case_schedule(
                seed,
                attacks=((1, "piggyback-forgery", {"mode": "inflate"}),),
                report_quorum=1,
                batch_size=2,
                client_window=16,
                note="pb-forge-inflate-weakened",
            ),
        ),
    ]
    return {case.name: case for case in cases}


#: name -> CorpusCase, in taxonomy order.
CORPUS: Dict[str, CorpusCase] = _build_corpus()


__all__ = [
    "SelectiveRevealNode",
    "PiggybackForgeryNode",
    "CorpusCase",
    "CORPUS",
]
