"""Polynomials over GF(p) and Lagrange interpolation.

These are the algebraic workhorses of Shamir secret sharing: a degree-(k-1)
polynomial hides a secret in its constant term, and any k evaluation points
reconstruct it by Lagrange interpolation at x = 0.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.crypto.field import DEFAULT_FIELD, PrimeField


class Polynomial:
    """A polynomial ``a_0 + a_1 x + ... + a_{d} x^d`` over a prime field."""

    def __init__(self, coefficients: Sequence[int], field: PrimeField = DEFAULT_FIELD) -> None:
        if not coefficients:
            raise ValueError("a polynomial needs at least one coefficient")
        self.field = field
        self.coefficients: List[int] = [field.element(c) for c in coefficients]

    @classmethod
    def random_with_secret(
        cls,
        secret: int,
        degree: int,
        rng,
        field: PrimeField = DEFAULT_FIELD,
    ) -> "Polynomial":
        """Uniformly random polynomial of ``degree`` with ``P(0) = secret``."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        coeffs = [field.element(secret)] + field.random_elements(rng, degree)
        return cls(coeffs, field)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @property
    def secret(self) -> int:
        """The constant term (Shamir's hidden value)."""
        return self.coefficients[0]

    def evaluate(self, x: int) -> int:
        """Horner evaluation of the polynomial at ``x``."""
        f = self.field
        acc = 0
        for coeff in reversed(self.coefficients):
            acc = f.add(f.mul(acc, x), coeff)
        return acc

    def evaluate_many(self, xs: Sequence[int]) -> List[int]:
        return [self.evaluate(x) for x in xs]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and other.field == self.field
            and other.coefficients == self.coefficients
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polynomial(degree={self.degree})"


def lagrange_interpolate_at(
    points: Sequence[Tuple[int, int]],
    x: int = 0,
    field: PrimeField = DEFAULT_FIELD,
) -> int:
    """Interpolate the unique degree-(k-1) polynomial through ``points`` and
    evaluate it at ``x`` (default 0: Shamir reconstruction).

    Raises ``ValueError`` on duplicate abscissae — a duplicate share is a
    protocol bug, never legitimate input.
    """
    if not points:
        raise ValueError("need at least one point to interpolate")
    xs = [field.element(px) for px, _ in points]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate x coordinates in interpolation points")
    x = field.element(x)
    result = 0
    for j, (xj, yj) in enumerate(points):
        xj = field.element(xj)
        num, den = 1, 1
        for m, (xm, _) in enumerate(points):
            if m == j:
                continue
            xm = field.element(xm)
            num = field.mul(num, field.sub(x, xm))
            den = field.mul(den, field.sub(xj, xm))
        result = field.add(result, field.mul(field.element(yj), field.div(num, den)))
    return result


__all__ = ["Polynomial", "lagrange_interpolate_at"]
