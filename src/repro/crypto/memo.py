"""Bounded memoization for repeated cryptographic work.

Consensus re-verifies the same (digest, signer, tag) triples constantly:
every replica checks the same 2f+1 shares, relayed proofs are re-checked at
every hop, and retransmissions repeat all of it.  Verification is
referentially transparent — the same key always yields the same verdict —
so a small cache removes the redundant MAC work without changing any
observable behaviour (forged tags cache ``False`` just as honestly as valid
tags cache ``True``).  The same table also backs digest and size
memoization, so stored values are arbitrary (verdicts, digests, byte
blobs), never ``None``.

The cache is FIFO-bounded so long adversarial runs cannot grow it without
limit.  Eviction happens in batches: popping a single entry per insert at
capacity degenerates into one eviction per ``put`` under adversarial churn,
so when full we drop the oldest 1/8th of the table at once and amortise the
cost.  Hit/miss counters are exposed for benchmarks and tests.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional


class MemoCache:
    """A bounded FIFO-eviction memo table.

    Values may be any non-``None`` object; ``None`` is reserved as the
    miss sentinel returned by :meth:`get`.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "peak", "_entries")

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: High-water occupancy.  Id-keyed caches evict through weakref
        #: callbacks (:meth:`discard`), so end-of-run ``size`` can read 0
        #: even after millions of hits — ``peak`` records how big the
        #: table actually got.
        self.peak = 0
        self._entries: Dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        if value is None:
            raise ValueError("MemoCache cannot store None (miss sentinel)")
        entries = self._entries
        if key not in entries and len(entries) >= self.capacity:
            # Batch FIFO eviction: drop the oldest 1/8th (at least one) in
            # one pass instead of thrashing one-pop-per-insert at capacity.
            batch = max(1, self.capacity >> 3)
            it = iter(entries)
            oldest = [next(it) for _ in range(min(batch, len(entries)))]
            for stale in oldest:
                del entries[stale]
            self.evictions += len(oldest)
        entries[key] = value
        if len(entries) > self.peak:
            self.peak = len(entries)
        return value

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` if present (used by weakref eviction callbacks)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak = 0

    def stats(self) -> Dict[str, Any]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "peak": self.peak,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


__all__ = ["MemoCache"]
