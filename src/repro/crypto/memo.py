"""Bounded memoization for repeated cryptographic verifications.

Consensus re-verifies the same (digest, signer, tag) triples constantly:
every replica checks the same 2f+1 shares, relayed proofs are re-checked at
every hop, and retransmissions repeat all of it.  Verification is
referentially transparent — the same key always yields the same verdict —
so a small cache removes the redundant MAC work without changing any
observable behaviour (forged tags cache ``False`` just as honestly as valid
tags cache ``True``).

The cache is FIFO-bounded so long adversarial runs cannot grow it without
limit; hit/miss counters are exposed for benchmarks and tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional


class MemoCache:
    """A bounded FIFO-eviction memo table for verification verdicts."""

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: Dict[Hashable, bool] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[bool]:
        verdict = self._entries.get(key)
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def put(self, key: Hashable, verdict: bool) -> bool:
        if key not in self._entries and len(self._entries) >= self.capacity:
            # FIFO eviction: drop the oldest insertion (dict preserves order).
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = verdict
        return verdict

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}


__all__ = ["MemoCache"]
