"""Feldman verifiable secret sharing (the VSS of §II-B, reference [6]).

Shamir sharing alone lets a Byzantine dealer hand out inconsistent shares.
Feldman's scheme publishes commitments ``C_j = g^{a_j} (mod q)`` to the
polynomial coefficients; everyone can then check its share ``(i, y_i)``
against::

    g^{y_i}  ==  prod_j C_j^{i^j}   (mod q)

The group is the order-``p`` subgroup of ``Z_q*`` where ``q = k*p + 1`` is
prime and ``p`` is the secret-sharing field modulus — computed once at
import by a Miller–Rabin search over ``k``.  Parameters are demo-grade
(127-bit field); the verification algebra is the real thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.field import DEFAULT_FIELD, PrimeField
from repro.crypto.memo import MemoCache
from repro.crypto.polynomial import Polynomial
from repro.crypto.shamir import ShamirShare

_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

# Share verification is referentially transparent — the verdict depends only
# on (group, commitment, share) — so it is memoized globally.  Every replica
# checks the same 2f+1 decryption shares for every revealed cipher; without
# the memo that is 1+threshold modexps apiece at every replica, with it each
# distinct share is verified once per cluster.  Invalid shares cache False
# just as honestly as valid ones cache True.
_verify_cache = MemoCache(capacity=1 << 16)


def verify_cache_stats():
    """Hit/miss counters for the global Feldman share-verification memo."""
    return _verify_cache.stats()


def _is_probable_prime(n: int) -> bool:
    """Miller–Rabin with fixed bases (deterministic for our ~134-bit range
    with overwhelming probability; q is fixed at import so one check)."""
    if n < 2:
        return False
    for small in _MR_BASES:
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_BASES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_group(p: int) -> Tuple[int, int]:
    """Find ``(q, g)``: prime ``q = k*p + 1`` and a generator ``g`` of the
    order-``p`` subgroup of ``Z_q*``."""
    k = 2
    while True:
        q = k * p + 1
        if _is_probable_prime(q):
            for h in range(2, 100):
                g = pow(h, k, q)
                if g != 1:
                    return q, g
        k += 2


# Group parameters for the default field, computed once.
_DEFAULT_Q, _DEFAULT_G = find_group(DEFAULT_FIELD.p)


@dataclass(frozen=True)
class FeldmanCommitment:
    """Public commitment vector ``(C_0, ..., C_{k-1})`` to a sharing."""

    values: Tuple[int, ...]

    @property
    def threshold(self) -> int:
        return len(self.values)

    def wire_size(self) -> int:
        return 17 * len(self.values)


@dataclass(frozen=True)
class VerifiedShare:
    """A Shamir share bundled with the commitment it verifies against."""

    share: ShamirShare
    commitment: FeldmanCommitment


class FeldmanVSS:
    """Dealer/verifier operations of Feldman VSS over the default group."""

    def __init__(self, field: PrimeField = DEFAULT_FIELD) -> None:
        self.field = field
        if field == DEFAULT_FIELD:
            self.q, self.g = _DEFAULT_Q, _DEFAULT_G
        else:
            self.q, self.g = find_group(field.p)

    # ------------------------------------------------------------------
    def deal(
        self,
        secret: int,
        threshold: int,
        n_shares: int,
        rng,
    ) -> Tuple[List[ShamirShare], FeldmanCommitment]:
        """Share ``secret`` and publish coefficient commitments."""
        if threshold < 1 or n_shares < threshold:
            raise ValueError("invalid (threshold, n_shares)")
        poly = Polynomial.random_with_secret(secret, threshold - 1, rng, self.field)
        shares = [ShamirShare(i, poly.evaluate(i)) for i in range(1, n_shares + 1)]
        commitment = FeldmanCommitment(
            tuple(pow(self.g, c, self.q) for c in poly.coefficients)
        )
        return shares, commitment

    def verify_share(self, share: ShamirShare, commitment: FeldmanCommitment) -> bool:
        """Check ``g^{y_i} == prod C_j^{i^j}`` — i.e. the share lies on the
        committed polynomial."""
        key = (self.q, commitment.values, share.index, share.value)
        verdict = _verify_cache.get(key)
        if verdict is not None:
            return verdict
        lhs = pow(self.g, share.value, self.q)
        # Horner in the exponent: prod C_j^{i^j} = (..(C_{k-1}^i * C_{k-2})^i
        # ..)^i * C_0.  Exponents stay the (tiny) share index instead of a
        # field-width i^j, so each step is a ~log2(n)-squaring pow rather
        # than a full 127-bit modexp — the verification verdict (and hence
        # every cached value) is identical.
        q = self.q
        i = share.index
        rhs = 1
        for c in reversed(commitment.values):
            rhs = (pow(rhs, i, q) * c) % q
        return _verify_cache.put(key, lhs == rhs)

    def commitment_to_secret(self, commitment: FeldmanCommitment) -> int:
        """``g^secret`` — binds the dealer to the secret without revealing it."""
        return commitment.values[0]


__all__ = [
    "FeldmanVSS",
    "FeldmanCommitment",
    "VerifiedShare",
    "find_group",
    "verify_cache_stats",
]
