"""Hashing helpers: the collision-resistant hash of §II-B (SHA-256).

``digest_of`` canonically serialises small Python structures so protocol
code can hash tuples/lists/ints/bytes without inventing ad-hoc encodings
(two structurally equal values always hash equal; type confusion between
e.g. ``1`` and ``"1"`` is prevented by type tags).

Objects exposing ``canonical()`` (signatures, ciphers, quorum proofs) are
hashed through a bounded digest cache: the serialised byte contribution of
each object is memoized by identity, so signing and verifying the same
proof at every replica canonicalises it once instead of O(n) times.  The
cache stores the exact bytes that would have been fed to the hash — never
a substituted sub-digest — so the overall byte stream, and therefore every
digest, signature, and cipher id, is bit-identical with the cache on or
off.  Entries are keyed by ``id()`` and evicted eagerly via weakref
callbacks; on CPython the callback fires before an id can be reused.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Any, Dict

from .memo import MemoCache


def sha256_bytes(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class _Recorder:
    """Collects the byte contribution of one object for the digest cache."""

    __slots__ = ("parts",)

    def __init__(self) -> None:
        self.parts = []

    def update(self, data: bytes) -> None:
        self.parts.append(data)


_digest_cache = MemoCache(capacity=1 << 15)
_digest_refs: Dict[int, "weakref.ref"] = {}


def _drop_entry(key: int, _ref: Any = None) -> None:
    _digest_cache.discard(key)
    _digest_refs.pop(key, None)


def digest_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the canonical-object digest cache."""
    return _digest_cache.stats()


def clear_digest_cache() -> None:
    _digest_cache.clear()
    _digest_refs.clear()


def _feed(h: Any, value: Any) -> None:
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        h.update(b"I")
        h.update(str(value).encode())
        h.update(b";")
    elif isinstance(value, float):
        h.update(b"F")
        h.update(repr(value).encode())
        h.update(b";")
    elif isinstance(value, bytes):
        h.update(b"Y")
        h.update(len(value).to_bytes(8, "big"))
        h.update(value)
    elif isinstance(value, str):
        data = value.encode()
        h.update(b"S")
        h.update(len(data).to_bytes(8, "big"))
        h.update(data)
    elif isinstance(value, (tuple, list)):
        h.update(b"L")
        h.update(len(value).to_bytes(8, "big"))
        for item in value:
            _feed(h, item)
    elif isinstance(value, (set, frozenset)):
        h.update(b"E")
        digests = sorted(digest_of(item) for item in value)
        h.update(len(digests).to_bytes(8, "big"))
        for d in digests:
            h.update(d)
    elif isinstance(value, dict):
        h.update(b"D")
        entries = sorted(
            (digest_of(k), digest_of(v)) for k, v in value.items()
        )
        h.update(len(entries).to_bytes(8, "big"))
        for dk, dv in entries:
            h.update(dk)
            h.update(dv)
    else:
        # Objects can opt in by exposing a stable ``canonical()`` tuple.
        canonical = getattr(value, "canonical", None)
        if canonical is None:
            raise TypeError(f"cannot canonically hash {type(value).__name__}")
        key = id(value)
        blob = _digest_cache.get(key)
        if blob is None:
            rec = _Recorder()
            rec.update(type(value).__name__.encode())
            _feed(rec, canonical() if callable(canonical) else canonical)
            blob = b"".join(rec.parts)
            try:
                ref = weakref.ref(value, lambda _r, _k=key: _drop_entry(_k))
            except TypeError:
                pass  # not weakref-able: feed without caching
            else:
                _digest_refs[key] = ref
                _digest_cache.put(key, blob)
        h.update(blob)


def digest_of(value: Any) -> bytes:
    """Canonical SHA-256 digest of a (nested) Python value."""
    if type(value) is bytes:
        # Hot path: signature layers hash pre-computed digests (bytes).
        # One concatenation + one C call produces the identical stream
        # ``b"Y" + len + value`` that ``_feed`` would have fed piecewise.
        return hashlib.sha256(
            b"Y" + len(value).to_bytes(8, "big") + value
        ).digest()
    h = hashlib.sha256()
    _feed(h, value)
    return h.digest()


__all__ = [
    "sha256_bytes",
    "sha256_hex",
    "digest_of",
    "digest_cache_stats",
    "clear_digest_cache",
]
