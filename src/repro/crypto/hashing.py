"""Hashing helpers: the collision-resistant hash of §II-B (SHA-256).

``digest_of`` canonically serialises small Python structures so protocol
code can hash tuples/lists/ints/bytes without inventing ad-hoc encodings
(two structurally equal values always hash equal; type confusion between
e.g. ``1`` and ``"1"`` is prevented by type tags).
"""

from __future__ import annotations

import hashlib
from typing import Any


def sha256_bytes(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _feed(h: "hashlib._Hash", value: Any) -> None:
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        h.update(b"I")
        h.update(str(value).encode())
        h.update(b";")
    elif isinstance(value, float):
        h.update(b"F")
        h.update(repr(value).encode())
        h.update(b";")
    elif isinstance(value, bytes):
        h.update(b"Y")
        h.update(len(value).to_bytes(8, "big"))
        h.update(value)
    elif isinstance(value, str):
        data = value.encode()
        h.update(b"S")
        h.update(len(data).to_bytes(8, "big"))
        h.update(data)
    elif isinstance(value, (tuple, list)):
        h.update(b"L")
        h.update(len(value).to_bytes(8, "big"))
        for item in value:
            _feed(h, item)
    elif isinstance(value, (set, frozenset)):
        h.update(b"E")
        digests = sorted(digest_of(item) for item in value)
        h.update(len(digests).to_bytes(8, "big"))
        for d in digests:
            h.update(d)
    elif isinstance(value, dict):
        h.update(b"D")
        entries = sorted(
            (digest_of(k), digest_of(v)) for k, v in value.items()
        )
        h.update(len(entries).to_bytes(8, "big"))
        for dk, dv in entries:
            h.update(dk)
            h.update(dv)
    else:
        # Objects can opt in by exposing a stable ``canonical()`` tuple.
        canonical = getattr(value, "canonical", None)
        if canonical is None:
            raise TypeError(f"cannot canonically hash {type(value).__name__}")
        h.update(type(value).__name__.encode())
        _feed(h, canonical() if callable(canonical) else canonical)


def digest_of(value: Any) -> bytes:
    """Canonical SHA-256 digest of a (nested) Python value."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.digest()


__all__ = ["sha256_bytes", "sha256_hex", "digest_of"]
