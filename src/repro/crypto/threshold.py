"""(2f+1, n) threshold signatures: ``share-sign`` / ``share-verify`` /
``share-combine`` / ``share-threshold`` (§II-B).

VVB (Algorithm 1) uses these to build a transferable *delivery proof*: a
process that collects ``2f+1`` signature shares for a message combines them
into one full signature proving a supermajority validated the message.

Construction: the scheme holds a master key; each pid's share key is
derived from it.  ``share-sign`` MACs the message under the share key;
``share-combine`` *requires* ``threshold`` valid shares from distinct
signers before it will emit the full signature (the combiner cannot mint it
otherwise — enforced because only :meth:`ThresholdScheme.combine` holds the
master key and it validates the quorum first).  This preserves exactly the
property the protocols rely on — a full signature implies 2f+1 validations
— while costing what a BLS threshold scheme costs via the cost model.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.crypto.hashing import digest_of
from repro.crypto.memo import MemoCache
from repro.sim.rng import derive_seed

SHARE_BYTES = 48
THRESHOLD_SIG_BYTES = 96


class ThresholdError(ValueError):
    """Raised when combination preconditions are violated."""


@dataclass(frozen=True)
class SignatureShare:
    """One process's share over a message."""

    signer: int
    tag: bytes

    def wire_size(self) -> int:
        return SHARE_BYTES

    def canonical(self) -> tuple:
        return (self.signer, self.tag)


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined full signature, transferable and verifiable by anyone."""

    tag: bytes
    signer_count: int

    def wire_size(self) -> int:
        return THRESHOLD_SIG_BYTES

    def canonical(self) -> tuple:
        return (self.tag, self.signer_count)


class ThresholdScheme:
    """One (threshold, n) instance shared by all processes of a run."""

    def __init__(self, threshold: int, n: int, *, seed: int = 0) -> None:
        if threshold < 1 or n < threshold:
            raise ValueError("invalid (threshold, n)")
        self.threshold = threshold
        self.n = n
        self._master = hashlib.sha256(
            derive_seed(seed, "threshold-master").to_bytes(8, "big")
        ).digest()
        self._share_keys: Dict[int, bytes] = {}
        self._verify_cache = MemoCache()

    # ------------------------------------------------------------------
    def _share_key(self, pid: int) -> bytes:
        key = self._share_keys.get(pid)
        if key is None:
            key = hmac.new(self._master, b"share:%d" % pid, hashlib.sha256).digest()
            self._share_keys[pid] = key
        return key

    def share_signer(self, pid: int) -> "ThresholdSigner":
        """Issue pid's share-signing capability (setup-time only)."""
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} outside [0, {self.n})")
        return ThresholdSigner(pid, self._share_key(pid))

    # ------------------------------------------------------------------
    def share_verify(self, message: Any, share: SignatureShare, pid: int) -> bool:
        """``share-verify(m, pi, j)``.  Memoized on ``(pid, digest, tag)`` —
        quorum collection re-verifies the same 2f+1 shares at every replica,
        and a triple's verdict never changes."""
        if share.signer != pid or not (0 <= pid < self.n):
            return False
        if type(message) is bytes:
            # Key the memo on the raw message bytes (distinct namespace) so
            # cache hits — the common case during quorum collection — skip
            # the digest recomputation entirely.
            key = ("share-b", pid, message, share.tag)
            verdict = self._verify_cache.get(key)
            if verdict is not None:
                return verdict
            digest = digest_of(message)
        else:
            digest = digest_of(message)
            key = ("share", pid, digest, share.tag)
            verdict = self._verify_cache.get(key)
            if verdict is not None:
                return verdict
        expect = hmac.new(self._share_key(pid), digest, hashlib.sha384)
        return self._verify_cache.put(
            key, hmac.compare_digest(expect.digest(), share.tag)
        )

    def combine(
        self, message: Any, shares: Iterable[SignatureShare]
    ) -> ThresholdSignature:
        """``share-combine({pi})`` — needs ``threshold`` valid shares from
        distinct signers; raises :class:`ThresholdError` otherwise."""
        valid: Dict[int, SignatureShare] = {}
        for share in shares:
            if share.signer in valid:
                continue
            if self.share_verify(message, share, share.signer):
                valid[share.signer] = share
        if len(valid) < self.threshold:
            raise ThresholdError(
                f"need {self.threshold} valid shares, got {len(valid)}"
            )
        tag = hmac.new(
            self._master, b"full:" + digest_of(message), hashlib.sha384
        ).digest()
        return ThresholdSignature(tag, len(valid))

    def verify_full(self, signature: ThresholdSignature, message: Any) -> bool:
        """``share-threshold(Pi, m)``.  The tag check is memoized; the
        quorum-count check is repeated (it is part of the signature value,
        not of the keyed computation)."""
        if signature.signer_count < self.threshold:
            return False
        if type(message) is bytes:
            key = ("full-b", message, signature.tag)
            verdict = self._verify_cache.get(key)
            if verdict is not None:
                return verdict
            digest = digest_of(message)
        else:
            digest = digest_of(message)
            key = ("full", digest, signature.tag)
            verdict = self._verify_cache.get(key)
            if verdict is not None:
                return verdict
        expect = hmac.new(self._master, b"full:" + digest, hashlib.sha384).digest()
        return self._verify_cache.put(
            key, hmac.compare_digest(expect, signature.tag)
        )

    def verify_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size counters of the verification memo (diagnostics)."""
        return self._verify_cache.stats()


class ThresholdSigner:
    """A single process's share-signing capability."""

    def __init__(self, pid: int, key: bytes) -> None:
        self.pid = pid
        self._key = key

    def share_sign(self, message: Any) -> SignatureShare:
        """``share-sign(m)``."""
        tag = hmac.new(self._key, digest_of(message), hashlib.sha384).digest()
        return SignatureShare(self.pid, tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThresholdSigner(pid={self.pid})"


__all__ = [
    "ThresholdScheme",
    "ThresholdSigner",
    "SignatureShare",
    "ThresholdSignature",
    "ThresholdError",
    "SHARE_BYTES",
    "THRESHOLD_SIG_BYTES",
]
