"""Hash-based commitments (Halevi–Micali [13]).

The paper's Rust prototype obfuscates transactions with a hash-based
commitment scheme rather than full VSS (§VI-A).  We implement both; this
module is the cheap scheme:  ``commit(m) = H(m || r)`` with a random
32-byte nonce ``r``.  Hiding comes from the nonce's entropy, binding from
collision resistance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256_bytes


@dataclass(frozen=True)
class HashCommitment:
    """The public commitment value ``H(m || r)``."""

    digest: bytes

    def wire_size(self) -> int:
        return len(self.digest)


def commit(message: bytes, rng) -> tuple[HashCommitment, bytes]:
    """Commit to ``message``; returns ``(commitment, opening_nonce)``.

    The committer keeps the nonce secret until reveal time.
    """
    nonce = bytes(int(b) for b in rng.integers(0, 256, size=32))
    return HashCommitment(sha256_bytes(message + nonce)), nonce


def open_commitment(
    commitment: HashCommitment, message: bytes, nonce: bytes
) -> bool:
    """Verify a reveal against the commitment."""
    return sha256_bytes(message + nonce) == commitment.digest


__all__ = ["HashCommitment", "commit", "open_commitment"]
