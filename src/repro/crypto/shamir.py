"""Shamir (k, n) secret sharing [Shamir 1979], reference [28] in the paper.

A secret ``s`` is embedded as the constant term of a random degree-(k-1)
polynomial; share ``i`` is the evaluation at ``x = i`` (1-based, since
``x = 0`` would leak the secret).  Any k shares reconstruct ``s``; any k-1
shares are information-theoretically independent of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.field import DEFAULT_FIELD, PrimeField
from repro.crypto.polynomial import Polynomial, lagrange_interpolate_at


@dataclass(frozen=True)
class ShamirShare:
    """One share: evaluation point ``index`` (1-based) and value ``value``."""

    index: int
    value: int

    def wire_size(self) -> int:
        return 4 + 16  # index + 127-bit field element


def split_secret(
    secret: int,
    threshold: int,
    n_shares: int,
    rng,
    field: PrimeField = DEFAULT_FIELD,
) -> List[ShamirShare]:
    """Split ``secret`` into ``n_shares`` shares, any ``threshold`` of which
    reconstruct it.

    ``threshold`` in Lyra is ``2f + 1`` with ``n_shares = n`` (§II-B).
    """
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    if n_shares < threshold:
        raise ValueError("cannot have fewer shares than the threshold")
    if n_shares >= field.p:
        raise ValueError("field too small for this many shares")
    poly = Polynomial.random_with_secret(secret, threshold - 1, rng, field)
    return [ShamirShare(i, poly.evaluate(i)) for i in range(1, n_shares + 1)]


def reconstruct_secret(
    shares: Sequence[ShamirShare],
    threshold: int,
    field: PrimeField = DEFAULT_FIELD,
) -> int:
    """Reconstruct the secret from at least ``threshold`` distinct shares.

    Extra shares beyond the threshold are ignored (the first ``threshold``
    distinct indices are used), mirroring how a process decrypts as soon as
    it holds a quorum of decryption shares.
    """
    distinct = {}
    for share in shares:
        distinct.setdefault(share.index, share)
    if len(distinct) < threshold:
        raise ValueError(
            f"need {threshold} distinct shares, got {len(distinct)}"
        )
    subset = sorted(distinct.values(), key=lambda s: s.index)[:threshold]
    return lagrange_interpolate_at([(s.index, s.value) for s in subset], 0, field)


__all__ = ["ShamirShare", "split_secret", "reconstruct_secret"]
