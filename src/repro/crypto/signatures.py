"""Per-process signatures: ``private-sign`` / ``public-verify`` (§II-B).

The simulator models a PKI with a :class:`KeyRegistry`: at setup every pid
gets a secret key; a :class:`Signer` capability wraps one pid's key and is
the only way to produce tags for that pid.  Verification recomputes the
keyed MAC through the registry — playing the role of the public key.

Unforgeability is by capability discipline: the simulation hands each
process exactly its own :class:`Signer`, so no process (including simulated
Byzantine ones) can sign for another.  Tag length and verify cost match
Ed25519-class signatures via :mod:`repro.crypto.cost`.

Verification is memoized per registry, keyed on ``(signer, digest, tag)``:
quorum certificates and relayed proofs make every replica re-verify the
same signatures many times, and the verdict for a given triple never
changes, so repeat verifications skip the MAC recomputation.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.hashing import digest_of
from repro.crypto.memo import MemoCache
from repro.sim.rng import derive_seed

SIGNATURE_BYTES = 64


@dataclass(frozen=True)
class Signature:
    """A transferable signature: signer id + MAC tag."""

    signer: int
    tag: bytes

    def wire_size(self) -> int:
        return SIGNATURE_BYTES

    def canonical(self) -> tuple:
        return (self.signer, self.tag)


class KeyRegistry:
    """The PKI: deterministic per-pid secret keys derived from a root seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._keys: Dict[int, bytes] = {}
        self._verify_cache = MemoCache()

    def _key(self, pid: int) -> bytes:
        key = self._keys.get(pid)
        if key is None:
            key = derive_seed(self._seed, "signing-key", str(pid)).to_bytes(8, "big")
            key = hashlib.sha256(key).digest()
            self._keys[pid] = key
        return key

    def signer(self, pid: int) -> "Signer":
        """Issue the signing capability for ``pid`` (setup-time only)."""
        return Signer(pid, self._key(pid), self)

    def _tag(self, pid: int, message: Any) -> bytes:
        return hmac.new(self._key(pid), digest_of(message), hashlib.sha512).digest()

    def verify(self, message: Any, signature: Signature, pid: int) -> bool:
        """``public-verify(m, sigma, j)`` — check ``signature`` was produced
        by ``pid`` over ``message``.  Memoized on ``(pid, digest, tag)``."""
        if signature.signer != pid:
            return False
        if type(message) is bytes:
            # Bytes messages key the memo directly (distinct namespace):
            # hits skip the digest recomputation.
            key = ("b", pid, message, signature.tag)
            verdict = self._verify_cache.get(key)
            if verdict is not None:
                return verdict
            digest = digest_of(message)
        else:
            digest = digest_of(message)
            key = (pid, digest, signature.tag)
            verdict = self._verify_cache.get(key)
            if verdict is not None:
                return verdict
        expect = hmac.new(self._key(pid), digest, hashlib.sha512).digest()
        return self._verify_cache.put(
            key, hmac.compare_digest(expect, signature.tag)
        )

    def verify_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size counters of the verification memo (diagnostics)."""
        return self._verify_cache.stats()


class Signer:
    """A single process's signing capability."""

    def __init__(self, pid: int, key: bytes, registry: KeyRegistry) -> None:
        self.pid = pid
        self._key = key
        self._registry = registry

    def sign(self, message: Any) -> Signature:
        """``private-sign(m)``."""
        tag = hmac.new(self._key, digest_of(message), hashlib.sha512).digest()
        return Signature(self.pid, tag)

    def verify(self, message: Any, signature: Signature, pid: int) -> bool:
        """Convenience passthrough to the registry's memoized verify."""
        return self._registry.verify(message, signature, pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signer(pid={self.pid})"


__all__ = ["KeyRegistry", "Signer", "Signature", "SIGNATURE_BYTES"]
