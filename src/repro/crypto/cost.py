"""Virtual-time cost model for cryptographic operations.

The simulator does not measure Python's own crypto speed (meaningless for a
Rust-prototype reproduction); instead every protocol-level crypto call
charges a configurable number of virtual microseconds to the calling node's
CPU.  Defaults approximate Ed25519/BLS-class costs on the paper's 16-vCPU
Xeon machines.  These constants are the *calibration surface* of the whole
performance study — EXPERIMENTS.md records the values used for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CryptoCosts:
    """Per-operation CPU costs in microseconds."""

    sign_us: int = 55
    verify_us: int = 110
    share_sign_us: int = 60
    share_verify_us: int = 120
    combine_per_share_us: int = 20
    threshold_verify_us: int = 130
    vss_encrypt_base_us: int = 90
    vss_encrypt_per_share_us: int = 35
    vss_check_dealing_us: int = 140
    vss_partial_decrypt_us: int = 140
    vss_decrypt_per_share_us: int = 45
    hash_per_256b_us: int = 1
    commit_us: int = 2
    open_commit_us: int = 2

    def hash_us(self, size_bytes: int) -> int:
        """Hashing cost for a payload of ``size_bytes``."""
        blocks = max(1, (size_bytes + 255) // 256)
        return blocks * self.hash_per_256b_us

    def combine_us(self, n_shares: int) -> int:
        return self.combine_per_share_us * max(1, n_shares)

    def vss_encrypt_us(self, n_recipients: int) -> int:
        return self.vss_encrypt_base_us + self.vss_encrypt_per_share_us * n_recipients

    def vss_decrypt_us(self, n_shares: int) -> int:
        return self.vss_decrypt_per_share_us * max(1, n_shares)

    def scaled(self, factor: float) -> "CryptoCosts":
        """A uniformly faster/slower cost profile (CPU-speed ablations)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        fields = {
            name: max(0, int(round(getattr(self, name) * factor)))
            for name in (
                "sign_us",
                "verify_us",
                "share_sign_us",
                "share_verify_us",
                "combine_per_share_us",
                "threshold_verify_us",
                "vss_encrypt_base_us",
                "vss_encrypt_per_share_us",
                "vss_check_dealing_us",
                "vss_partial_decrypt_us",
                "vss_decrypt_per_share_us",
                "hash_per_256b_us",
                "commit_us",
                "open_commit_us",
            )
        }
        return replace(self, **fields)


class ReceiveChargePlan:
    """Batched receive-side charging: one summed CPU acquire per frame.

    A coalesced frame delivers many application messages at one instant;
    charging them one ``acquire`` at a time costs a CPU-model round trip
    per message for a result that is arithmetically just a sum (the core
    is serialised, so ``acquire(a); acquire(b)`` ends exactly at
    ``acquire(a + b)``).  The plan folds a node's dense kind->µs table and
    its payload-dependent fallback into a single pass that produces that
    sum, which the node then charges with one acquire — identical virtual
    time, one queueing decision.
    """

    __slots__ = ("_table_get", "_fallback")

    def __init__(self, table, fallback) -> None:
        self._table_get = table.get
        self._fallback = fallback

    def total_us(self, messages) -> int:
        """Summed cost of delivering ``messages`` back to back."""
        table_get = self._table_get
        fallback = self._fallback
        total = 0
        for message in messages:
            cost = table_get(message.kind)
            total += cost if cost is not None else fallback(message)
        return total


#: Default calibration (see DESIGN.md §5).
DEFAULT_COSTS = CryptoCosts()

#: Zero-cost profile for logic-only unit tests.
FREE_COSTS = CryptoCosts(
    sign_us=0,
    verify_us=0,
    share_sign_us=0,
    share_verify_us=0,
    combine_per_share_us=0,
    threshold_verify_us=0,
    vss_encrypt_base_us=0,
    vss_encrypt_per_share_us=0,
    vss_check_dealing_us=0,
    vss_partial_decrypt_us=0,
    vss_decrypt_per_share_us=0,
    hash_per_256b_us=0,
    commit_us=0,
    open_commit_us=0,
)

__all__ = ["CryptoCosts", "ReceiveChargePlan", "DEFAULT_COSTS", "FREE_COSTS"]
