"""VSS-based transaction obfuscation: ``vss-encrypt`` /
``vss-partial-decrypt`` / ``vss-decrypt`` (§II-B).

A transaction payload is encrypted under a fresh symmetric key ``K`` (a
field element, expanded into a SHA-256 keystream).  ``K`` is then
Feldman-shared ``(2f+1, n)``: the cipher carries the coefficient
commitments plus, for every recipient, its key-share sealed under that
recipient's personal channel key.  Each process can therefore:

- verify the dealer shared *some* consistent key (Feldman check) before
  voting to accept the cipher,
- produce exactly one decryption share (its unsealed key share) once the
  transaction commits, and
- reconstruct ``K`` — hence the payload — from any ``2f+1`` decryption
  shares (Lemma 7 of the paper).

Fewer than ``2f+1`` shares reveal nothing about ``K`` (Shamir), which is
what makes front-running impossible before commit.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.crypto.feldman import FeldmanCommitment, FeldmanVSS
from repro.crypto.field import DEFAULT_FIELD, PrimeField
from repro.crypto.hashing import digest_of, sha256_bytes
from repro.crypto.memo import MemoCache
from repro.crypto.shamir import ShamirShare, reconstruct_secret
from repro.sim.rng import derive_seed


class VssError(ValueError):
    """Raised on invalid shares, bad dealers, or insufficient quorums."""


@dataclass(frozen=True)
class DecryptionShare:
    """``rho_m``: one process's opened key share for a cipher."""

    cipher_id: bytes
    share: ShamirShare

    def wire_size(self) -> int:
        return 32 + self.share.wire_size()

    def canonical(self) -> tuple:
        return (self.cipher_id, self.share.index, self.share.value)


@dataclass(frozen=True)
class VssCipher:
    """``c_m``: the broadcastable ciphertext of a transaction."""

    cipher_id: bytes
    body: bytes
    commitment: FeldmanCommitment
    sealed_shares: Tuple[int, ...]  # sealed_shares[i] belongs to pid i

    def wire_size(self) -> int:
        return (
            32
            + len(self.body)
            + self.commitment.wire_size()
            + 16 * len(self.sealed_shares)
        )

    def canonical(self) -> tuple:
        return (self.cipher_id,)


def _keystream(key: int, length: int) -> bytes:
    """Expand a field element into ``length`` keystream bytes."""
    out = bytearray()
    counter = 0
    key_bytes = key.to_bytes(16, "big")
    while len(out) < length:
        out.extend(sha256_bytes(key_bytes + counter.to_bytes(8, "big")))
        counter += 1
    return bytes(out[:length])


def _xor(data: bytes, stream: bytes) -> bytes:
    if len(stream) < len(data):
        data = data[: len(stream)]
    elif len(data) < len(stream):
        stream = stream[: len(data)]
    xored = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    return xored.to_bytes(len(data), "big")


class VssScheme:
    """One (threshold, n) VSS-encryption instance for a cluster.

    ``threshold`` is ``2f+1`` in Lyra.  Per-recipient sealing keys are
    derived from ``seed`` — the simulation analogue of encrypting the share
    under the recipient's public key.
    """

    def __init__(
        self,
        threshold: int,
        n: int,
        *,
        seed: int = 0,
        field: PrimeField = DEFAULT_FIELD,
    ) -> None:
        if threshold < 1 or n < threshold:
            raise ValueError("invalid (threshold, n)")
        self.threshold = threshold
        self.n = n
        self.field = field
        self.feldman = FeldmanVSS(field)
        self._seal_root = hashlib.sha256(
            derive_seed(seed, "vss-seal").to_bytes(8, "big")
        ).digest()
        self._seal_keys: Dict[int, bytes] = {}
        # Successful decryptions interned by cipher id.  Any 2f+1 Feldman-
        # verified shares reconstruct the same committed key (Lemma 7), so
        # once one replica has opened a cipher the plaintext is a pure
        # function of the cipher id; the per-call verification and quorum
        # checks below still run so failure behaviour is unchanged.
        self._plain_cache = MemoCache(capacity=1 << 12)

    # ------------------------------------------------------------------
    def _seal_key(self, pid: int) -> bytes:
        key = self._seal_keys.get(pid)
        if key is None:
            key = hmac.new(self._seal_root, b"pid:%d" % pid, hashlib.sha256).digest()
            self._seal_keys[pid] = key
        return key

    def _seal_pad(self, pid: int, cipher_id: bytes) -> int:
        raw = hmac.new(self._seal_key(pid), cipher_id, hashlib.sha256).digest()
        return int.from_bytes(raw[:16], "big") & ((1 << 127) - 1)

    # ------------------------------------------------------------------
    def encrypt(self, plaintext: bytes, rng) -> VssCipher:
        """``vss-encrypt(m)``: returns the broadcastable cipher ``c_m``."""
        key = self.field.random_element(rng)
        body = _xor(plaintext, _keystream(key, len(plaintext)))
        shares, commitment = self.feldman.deal(key, self.threshold, self.n, rng)
        cipher_id = digest_of((body, commitment.values))
        sealed = tuple(
            shares[pid].value ^ self._seal_pad(pid, cipher_id)
            for pid in range(self.n)
        )
        return VssCipher(cipher_id, body, commitment, sealed)

    def check_dealing(self, cipher: VssCipher, pid: int) -> bool:
        """Recipient-side validity check run before voting to accept: does
        my sealed share lie on the committed polynomial?"""
        if len(cipher.sealed_shares) != self.n or not (0 <= pid < self.n):
            return False
        value = cipher.sealed_shares[pid] ^ self._seal_pad(pid, cipher.cipher_id)
        share = ShamirShare(pid + 1, value)
        return self.feldman.verify_share(share, cipher.commitment)

    def partial_decrypt(self, cipher: VssCipher, pid: int) -> DecryptionShare:
        """``vss-partial-decrypt(c_m)`` by process ``pid``."""
        if not (0 <= pid < self.n):
            raise VssError(f"pid {pid} outside [0, {self.n})")
        value = cipher.sealed_shares[pid] ^ self._seal_pad(pid, cipher.cipher_id)
        share = ShamirShare(pid + 1, value)
        if not self.feldman.verify_share(share, cipher.commitment):
            raise VssError(f"dealer gave pid {pid} an inconsistent share")
        return DecryptionShare(cipher.cipher_id, share)

    def verify_decryption_share(
        self, cipher: VssCipher, dshare: DecryptionShare
    ) -> bool:
        """Anyone can check an opened share against the commitments."""
        if dshare.cipher_id != cipher.cipher_id:
            return False
        return self.feldman.verify_share(dshare.share, cipher.commitment)

    def decrypt(
        self, cipher: VssCipher, dshares: Iterable[DecryptionShare]
    ) -> bytes:
        """``vss-decrypt(c_m, {rho_m})``: reconstruct the key from a quorum
        of verified shares and strip the keystream."""
        valid = []
        for dshare in dshares:
            if self.verify_decryption_share(cipher, dshare):
                valid.append(dshare.share)
        if len({s.index for s in valid}) < self.threshold:
            raise VssError(
                f"need {self.threshold} valid decryption shares, "
                f"got {len({s.index for s in valid})}"
            )
        cached = self._plain_cache.get(cipher.cipher_id)
        if cached is not None:
            return cached
        key = reconstruct_secret(valid, self.threshold, self.field)
        if self.feldman.commitment_to_secret(cipher.commitment) != pow(
            self.feldman.g, key, self.feldman.q
        ):
            raise VssError("reconstructed key does not match the commitment")
        plaintext = _xor(cipher.body, _keystream(key, len(cipher.body)))
        self._plain_cache.put(cipher.cipher_id, plaintext)
        return plaintext

    def decrypt_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters for the interned-plaintext cache."""
        return self._plain_cache.stats()


__all__ = ["VssScheme", "VssCipher", "DecryptionShare", "VssError"]
