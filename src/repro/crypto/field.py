"""Prime-field arithmetic GF(p).

The default field uses the Mersenne prime ``p = 2^127 - 1``: large enough
that random collisions never occur in simulation, small enough that Python
integer arithmetic stays fast.  All secret-sharing algebra in this package
(Shamir, Feldman, VSS encryption) is exact arithmetic in this field.
"""

from __future__ import annotations

from typing import Iterable, List

#: 2**127 - 1, a Mersenne prime.
MERSENNE_127 = (1 << 127) - 1


class PrimeField:
    """Arithmetic modulo a prime ``p`` on plain Python ints.

    Elements are canonical representatives in ``[0, p)``.  The class is
    stateless apart from ``p``; methods validate inputs so protocol bugs
    surface as exceptions rather than silent wrap-around.
    """

    def __init__(self, p: int = MERSENNE_127) -> None:
        if p < 3:
            raise ValueError("field modulus must be an odd prime >= 3")
        self.p = int(p)

    # ------------------------------------------------------------------
    def element(self, x: int) -> int:
        """Canonicalise an integer into the field."""
        return int(x) % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(p)")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def sum(self, xs: Iterable[int]) -> int:
        total = 0
        for x in xs:
            total += x
        return total % self.p

    def prod(self, xs: Iterable[int]) -> int:
        total = 1
        for x in xs:
            total = (total * x) % self.p
        return total

    # ------------------------------------------------------------------
    def random_element(self, rng) -> int:
        """Uniform element of the field drawn from a numpy Generator."""
        # Draw 128 bits from two 64-bit words; rejection-free because we
        # reduce mod p (bias is 2^-127, irrelevant for simulation).
        hi = int(rng.integers(0, 1 << 63, dtype="int64"))
        lo = int(rng.integers(0, 1 << 63, dtype="int64"))
        return ((hi << 64) | lo) % self.p

    def random_elements(self, rng, count: int) -> List[int]:
        return [self.random_element(rng) for _ in range(count)]

    def encode_bytes(self, data: bytes) -> int:
        """Pack at most 15 bytes into a field element (for small secrets)."""
        if len(data) > 15:
            raise ValueError("at most 15 bytes fit into a GF(2^127-1) element")
        return int.from_bytes(data, "big") % self.p

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrimeField(p={self.p})"


#: Shared default field for the whole library.
DEFAULT_FIELD = PrimeField(MERSENNE_127)

__all__ = ["PrimeField", "DEFAULT_FIELD", "MERSENNE_127"]
