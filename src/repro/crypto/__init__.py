"""Cryptographic substrate.

Implements every primitive §II-B of the paper assumes, from scratch:

- ``private-sign`` / ``public-verify`` — per-process signatures
  (:mod:`repro.crypto.signatures`).
- ``share-sign`` / ``share-verify`` / ``share-combine`` / ``share-threshold``
  — a ``(2f+1, n)`` threshold signature (:mod:`repro.crypto.threshold`).
- ``vss-encrypt`` / ``vss-partial-decrypt`` / ``vss-decrypt`` — commit-reveal
  transaction obfuscation built on real Shamir secret sharing with Feldman
  verifiability (:mod:`repro.crypto.vss_encryption`).
- Collision-resistant hashing, Halevi–Micali hash commitments, and Merkle
  trees (used by the Commit protocol to compress accepted-set piggybacks).

Security model: the algebra (field arithmetic, polynomial secret sharing,
Lagrange reconstruction, Feldman commitments) is implemented for real and
fully tested; *unforgeability* of plain signatures is modelled by a key
registry that plays the role of a PKI (processes cannot mint tags for keys
they do not hold — the simulator only hands each process its own signer).
Parameters are demo-grade (a 127-bit field), which does not affect protocol
behaviour; see DESIGN.md §2.

Every operation charges virtual CPU time through :mod:`repro.crypto.cost`
so compute-bound effects (Pompē's quadratic signature verification) shape
simulated performance the way they shape real deployments.
"""

from repro.crypto.field import PrimeField, DEFAULT_FIELD
from repro.crypto.polynomial import Polynomial, lagrange_interpolate_at
from repro.crypto.shamir import ShamirShare, split_secret, reconstruct_secret
from repro.crypto.feldman import FeldmanVSS, FeldmanCommitment, VerifiedShare
from repro.crypto.commitment import HashCommitment, commit, open_commitment
from repro.crypto.signatures import KeyRegistry, Signer, Signature
from repro.crypto.threshold import (
    ThresholdScheme,
    ThresholdSigner,
    SignatureShare,
    ThresholdSignature,
)
from repro.crypto.vss_encryption import (
    VssScheme,
    VssCipher,
    DecryptionShare,
    VssError,
)
from repro.crypto.merkle import MerkleTree, MerkleProof
from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS
from repro.crypto.hashing import sha256_hex, sha256_bytes, digest_of

__all__ = [
    "PrimeField",
    "DEFAULT_FIELD",
    "Polynomial",
    "lagrange_interpolate_at",
    "ShamirShare",
    "split_secret",
    "reconstruct_secret",
    "FeldmanVSS",
    "FeldmanCommitment",
    "VerifiedShare",
    "HashCommitment",
    "commit",
    "open_commitment",
    "KeyRegistry",
    "Signer",
    "Signature",
    "ThresholdScheme",
    "ThresholdSigner",
    "SignatureShare",
    "ThresholdSignature",
    "VssScheme",
    "VssCipher",
    "DecryptionShare",
    "VssError",
    "MerkleTree",
    "MerkleProof",
    "CryptoCosts",
    "DEFAULT_COSTS",
    "sha256_hex",
    "sha256_bytes",
    "digest_of",
]
