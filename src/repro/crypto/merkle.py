"""Merkle (hash) trees.

Algorithm 4 piggybacks each process's accepted-transaction set on every
message; the paper notes "hash trees are used in lieu of older prefixes to
reduce message size".  This module provides the tree: build over a list of
leaf digests, produce the root (32 bytes summarising an arbitrarily long
prefix), and generate/verify membership proofs so a receiver can audit that
a specific transaction is part of a summarised prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.crypto.hashing import digest_of, sha256_bytes

#: Domain-separation prefixes: leaf vs interior, preventing second-preimage
#: tricks that splice a subtree in as a leaf.
_LEAF = b"\x00"
_NODE = b"\x01"


def _leaf_hash(leaf: Any) -> bytes:
    return sha256_bytes(_LEAF + digest_of(leaf))


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256_bytes(_NODE + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """A membership proof: leaf index plus sibling hashes bottom-up."""

    index: int
    siblings: Tuple[bytes, ...]

    def wire_size(self) -> int:
        return 4 + 32 * len(self.siblings)


class MerkleTree:
    """A complete binary hash tree over a sequence of leaves.

    Odd nodes at any level are promoted (Bitcoin-style duplication is
    deliberately avoided: duplication permits distinct leaf sets with equal
    roots).  An empty tree has the well-known all-zeros root.
    """

    EMPTY_ROOT = b"\x00" * 32

    def __init__(self, leaves: Sequence[Any]) -> None:
        self.leaf_count = len(leaves)
        self._levels: List[List[bytes]] = []
        level = [_leaf_hash(leaf) for leaf in leaves]
        self._levels.append(level)
        while len(level) > 1:
            nxt: List[bytes] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])  # promote the odd node
            self._levels.append(nxt)
            level = nxt

    @property
    def root(self) -> bytes:
        if self.leaf_count == 0:
            return self.EMPTY_ROOT
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Membership proof for the leaf at ``index``."""
        if not (0 <= index < self.leaf_count):
            raise IndexError(f"leaf index {index} out of range")
        siblings: List[bytes] = []
        idx = index
        for level in self._levels[:-1]:
            sibling_idx = idx ^ 1
            if sibling_idx < len(level):
                siblings.append(level[sibling_idx])
            # When idx is a promoted odd node it has no sibling this level.
            idx //= 2
        return MerkleProof(index, tuple(siblings))

    @staticmethod
    def verify(root: bytes, leaf: Any, proof: MerkleProof, leaf_count: int) -> bool:
        """Check ``leaf`` is at ``proof.index`` under ``root``."""
        if leaf_count == 0:
            return False
        if not (0 <= proof.index < leaf_count):
            return False
        acc = _leaf_hash(leaf)
        idx = proof.index
        width = leaf_count
        sibling_iter = iter(proof.siblings)
        while width > 1:
            sibling_idx = idx ^ 1
            if sibling_idx < width:
                try:
                    sibling = next(sibling_iter)
                except StopIteration:
                    return False
                if idx % 2 == 0:
                    acc = _node_hash(acc, sibling)
                else:
                    acc = _node_hash(sibling, acc)
            idx //= 2
            width = (width + 1) // 2
        # Proof must be fully consumed (no trailing junk).
        if next(sibling_iter, None) is not None:
            return False
        return acc == root


__all__ = ["MerkleTree", "MerkleProof"]
