"""Terminal line charts for experiment results.

The repository has no plotting dependency; these render Fig. 2/3-style
series as ASCII so examples and ``python -m repro`` output can *show* the
shapes the paper plots (who wins, where the crossover falls), not just
tabulate them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Plot glyphs per series, in assignment order.
MARKERS = "ox+*#@"


def render_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series onto one character grid.

    Points are nearest-cell plotted (no interpolation); overlapping points
    show the later series' marker.  Returns a printable multi-line string
    with axes, ranges, and a legend.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        return (height - 1 - row), col

    for idx, (name, pts) in enumerate(series.items()):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:>10.1f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    x_axis = f"{x_min:g}"
    pad = width - len(x_axis) - len(f"{x_max:g}")
    lines.append(" " * 13 + x_axis + " " * max(1, pad) + f"{x_max:g}")
    if x_label or y_label:
        lines.append(" " * 13 + f"x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 13 + legend)
    return "\n".join(lines)


def chart_fig3(rows: Sequence[dict], **kwargs) -> str:
    """Fig. 3 rows -> throughput chart (k tx/s vs n)."""
    return render_chart(
        {
            "lyra": [(r["n"], r["lyra_ktps"]) for r in rows],
            "pompe": [(r["n"], r["pompe_ktps"]) for r in rows],
        },
        title=kwargs.pop("title", "Fig. 3 — throughput (k tx/s) vs n"),
        x_label="nodes",
        y_label="k tx/s",
        **kwargs,
    )


def chart_fig2(rows: Sequence[dict], *, loaded: bool = True, **kwargs) -> str:
    """Fig. 2 rows -> latency chart (ms vs n)."""
    lyra_key = "lyra_loaded_ms" if loaded else "lyra_latency_ms"
    pompe_key = "pompe_loaded_ms" if loaded else "pompe_latency_ms"
    return render_chart(
        {
            "lyra": [(r["n"], r[lyra_key]) for r in rows],
            "pompe": [(r["n"], r[pompe_key]) for r in rows],
        },
        title=kwargs.pop(
            "title",
            "Fig. 2 — commit latency (ms) vs n"
            + (" [at operating load]" if loaded else ""),
        ),
        x_label="nodes",
        y_label="ms",
        **kwargs,
    )


__all__ = ["render_chart", "chart_fig2", "chart_fig3", "MARKERS"]
