"""Latency statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0-100) of ``values``; 0.0 for empty input."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), p))


@dataclass(frozen=True)
class LatencySummary:
    """Consolidated latency figures (all in µs)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean / 1000.0

    @property
    def p50_ms(self) -> float:
        return self.p50 / 1000.0

    def row(self) -> str:
        """A human-readable table row."""
        return (
            f"count={self.count} mean={self.mean / 1000:.1f}ms "
            f"p50={self.p50 / 1000:.1f}ms p90={self.p90 / 1000:.1f}ms "
            f"p99={self.p99 / 1000:.1f}ms max={self.maximum / 1000:.1f}ms"
        )


def summarize_latencies(latencies_us: Sequence[float]) -> LatencySummary:
    """Summary statistics over a latency sample."""
    if not len(latencies_us):
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(latencies_us, dtype=np.float64)
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


__all__ = ["LatencySummary", "percentile", "summarize_latencies"]
