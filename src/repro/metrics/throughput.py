"""Windowed throughput accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.engine import SECONDS


@dataclass
class ThroughputWindow:
    """Accumulates (timestamp, count) completion events and reports rates."""

    events: List[Tuple[int, int]] = field(default_factory=list)

    def record(self, time_us: int, count: int = 1) -> None:
        self.events.append((time_us, count))

    def total(self, start_us: int = 0, end_us: int | None = None) -> int:
        return sum(
            c
            for t, c in self.events
            if t >= start_us and (end_us is None or t < end_us)
        )

    def rate_tps(self, start_us: int, end_us: int) -> float:
        """Transactions per second over [start_us, end_us)."""
        window = end_us - start_us
        if window <= 0:
            return 0.0
        return self.total(start_us, end_us) * float(SECONDS) / window

    def steady_state_tps(self, warmup_us: int, end_us: int) -> float:
        """Rate excluding the ramp-up prefix."""
        return self.rate_tps(warmup_us, end_us)

    def timeline(self, bucket_us: int) -> List[Tuple[int, float]]:
        """Per-bucket rates, for plotting throughput over time.

        Covers every bucket between the first and last event, emitting
        zero-rate entries for idle gaps — a stall must show up as a dip,
        not vanish from the plot.
        """
        if not self.events:
            return []
        buckets: dict = {}
        for t, c in self.events:
            buckets[t // bucket_us] = buckets.get(t // bucket_us, 0) + c
        lo, hi = min(buckets), max(buckets)
        return [
            (b * bucket_us, buckets.get(b, 0) * float(SECONDS) / bucket_us)
            for b in range(lo, hi + 1)
        ]


__all__ = ["ThroughputWindow"]
