"""Measurement utilities: latency statistics, throughput windows, and the
capacity model used to extrapolate saturation throughput to large n
(DESIGN.md §2, substitution for real-testbed throughput runs)."""

from repro.metrics.stats import LatencySummary, percentile, summarize_latencies
from repro.metrics.throughput import ThroughputWindow
from repro.metrics.capacity import (
    CapacityInputs,
    extrapolate_users,
    lyra_capacity,
    pompe_capacity,
    lyra_instance_profile,
    pompe_cert_profile,
    lyra_loaded_latency_us,
    pompe_loaded_latency_us,
)
from repro.metrics.fairness import (
    count_inversions,
    fairness_block,
    reorder_distance,
    sandwich_stats,
)
from repro.metrics.tracelog import TraceLog, TraceEvent, install_lyra_tracing
from repro.metrics.registry import (
    MetricsRegistry,
    merge_snapshots,
)
from repro.metrics.spans import (
    Span,
    build_spans,
    decompose_phases,
    export_chrome_trace,
)
from repro.metrics.report import render_phase_table, render_run_report
from repro.metrics.invariants import (
    InvariantReport,
    InvariantViolation,
    InvariantWatchdog,
)
from repro.metrics.ascii_chart import chart_fig2, chart_fig3, render_chart

__all__ = [
    "LatencySummary",
    "percentile",
    "summarize_latencies",
    "ThroughputWindow",
    "CapacityInputs",
    "count_inversions",
    "extrapolate_users",
    "fairness_block",
    "reorder_distance",
    "sandwich_stats",
    "lyra_capacity",
    "pompe_capacity",
    "lyra_instance_profile",
    "pompe_cert_profile",
    "lyra_loaded_latency_us",
    "pompe_loaded_latency_us",
    "TraceLog",
    "TraceEvent",
    "install_lyra_tracing",
    "MetricsRegistry",
    "merge_snapshots",
    "Span",
    "build_spans",
    "decompose_phases",
    "export_chrome_trace",
    "render_phase_table",
    "render_run_report",
    "InvariantWatchdog",
    "InvariantReport",
    "InvariantViolation",
    "render_chart",
    "chart_fig2",
    "chart_fig3",
]
