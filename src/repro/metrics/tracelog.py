"""Structured protocol tracing.

A :class:`TraceLog` collects timestamped protocol events (proposed,
decided, committed, revealed/executed) emitted by instrumented nodes.
Uses:

- **latency decomposition** — split commit latency into the paper's
  phases: BOC decision (3 message delays), Commit-protocol lag
  (piggyback/heartbeat exchange), and the commit-reveal round;
- **debugging** — reconstruct exactly what one instance did at one node;
- **artifacts** — dump runs to JSONL for offline analysis (and, via
  :mod:`repro.metrics.spans`, to chrome://tracing format).

Install with :func:`install_lyra_tracing` on a built (un-run) cluster, or
set ``ExperimentConfig.tracing=True`` and read ``cluster.trace``.

Detail values are normalised to a canonical JSON-stable form (sequences
become tuples, bytes become hex strings) both at record time and on
:meth:`TraceLog.load_jsonl`, so :class:`TraceEvent` equality — and every
``for_instance``-based assertion — survives a dump/load round trip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Set, Tuple, Union

from repro.core.types import InstanceId

#: Canonical event kinds emitted by instrumented Lyra nodes, in pipeline
#: order (used by the decomposition below).
PHASES = ("proposed", "decided", "committed", "executed")

#: Instances are addressed either by the protocol's :class:`InstanceId` or
#: by the raw ``(proposer, batch_no)`` pair a JSONL dump preserves.
InstanceKey = Union[InstanceId, Tuple[int, int]]


#: Detail values that need no canonicalisation — checked first because the
#: overwhelming majority of trace details are small ints and strings.
_SCALAR_TYPES = frozenset((int, float, str, bool, type(None)))


def _canon_value(value: Any) -> Any:
    """Canonical JSON-stable detail value: sequences collapse to tuples
    (JSON cannot tell a tuple from a list, so both sides of a round trip
    must agree on one), bytes to hex strings; scalars pass through."""
    if type(value) in _SCALAR_TYPES:
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canon_value(v) for v in value)
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    return value


def _instance_key(instance: Optional[InstanceKey]) -> Optional[Tuple[int, int]]:
    if instance is None:
        return None
    if isinstance(instance, InstanceId):
        return (instance.proposer, instance.batch_no)
    return (instance[0], instance[1])


class TraceEvent(NamedTuple):
    # A NamedTuple rather than a frozen dataclass: construction happens
    # once per protocol phase per node on the traced hot path, and tuple
    # construction skips the per-field ``object.__setattr__`` a frozen
    # dataclass pays.
    time_us: int
    node: int
    kind: str
    instance: Optional[Tuple[int, int]] = None  # (proposer, batch_no)
    detail: Tuple[Tuple[str, Any], ...] = ()

    def to_json(self) -> str:
        return json.dumps(
            {
                "t": self.time_us,
                "node": self.node,
                "kind": self.kind,
                "iid": list(self.instance) if self.instance else None,
                "detail": dict(self.detail),
            }
        )


class TraceLog:
    """An append-only protocol event log with simple query helpers."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(
        self,
        time_us: int,
        node: int,
        kind: str,
        instance: Optional[InstanceKey] = None,
        **detail: Any,
    ) -> None:
        # Hot path: a plain 2-tuple needs no key normalisation, and most
        # events carry zero or one detail item, so the sort is skipped.
        if instance is not None and type(instance) is not tuple:
            instance = _instance_key(instance)
        if detail:
            items = tuple(
                sorted((k, _canon_value(v)) for k, v in detail.items())
            )
        else:
            items = ()
        self.events.append(TraceEvent(time_us, node, kind, instance, items))

    # ------------------------------------------------------------------
    def for_instance(self, instance: InstanceKey) -> List[TraceEvent]:
        key = _instance_key(instance)
        return [e for e in self.events if e.instance == key]

    def instances(self) -> List[Tuple[int, int]]:
        """Every (proposer, batch_no) pair that appears in the log, in
        first-appearance order."""
        seen: Set[Tuple[int, int]] = set()
        out: List[Tuple[int, int]] = []
        for e in self.events:
            if e.instance is not None and e.instance not in seen:
                seen.add(e.instance)
                out.append(e.instance)
        return out

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def first_times(
        self, instance: InstanceKey, node: Optional[int] = None
    ) -> Dict[str, int]:
        """First occurrence time of each event kind for one instance
        (optionally restricted to one node).  Phases an instance never
        reached at that node (e.g. on a crash-recovered replica) are
        simply absent from the result."""
        out: Dict[str, int] = {}
        for e in self.for_instance(instance):
            if node is not None and e.node != node:
                continue
            out.setdefault(e.kind, e.time_us)
        return out

    def phase_durations_us(self, instance: InstanceKey, node: int) -> Dict[str, int]:
        """Per-phase durations at ``node`` following :data:`PHASES` order.

        Only adjacent phase pairs that both occurred are reported, so an
        instance that skipped phases (crash, catch-up adoption, rejection)
        yields a partial — never erroneous — decomposition."""
        times = self.first_times(instance, node)
        out: Dict[str, int] = {}
        for earlier, later in zip(PHASES, PHASES[1:]):
            if earlier in times and later in times:
                out[f"{earlier}->{later}"] = times[later] - times[earlier]
        if PHASES[0] in times and PHASES[-1] in times:
            out["total"] = times[PHASES[-1]] - times[PHASES[0]]
        return out

    # ------------------------------------------------------------------
    def dump_jsonl(self, path: str) -> int:
        with open(path, "w") as fh:
            for e in self.events:
                fh.write(e.to_json() + "\n")
        return len(self.events)

    @classmethod
    def load_jsonl(cls, path: str) -> "TraceLog":
        log = cls()
        with open(path) as fh:
            for line in fh:
                raw = json.loads(line)
                log.events.append(
                    TraceEvent(
                        raw["t"],
                        raw["node"],
                        raw["kind"],
                        tuple(raw["iid"]) if raw.get("iid") else None,
                        tuple(
                            sorted(
                                (k, _canon_value(v))
                                for k, v in (raw.get("detail") or {}).items()
                            )
                        ),
                    )
                )
        return log

    def __len__(self) -> int:
        return len(self.events)


def install_lyra_tracing(cluster, log: Optional[TraceLog] = None) -> TraceLog:
    """Instrument every node of a built (not yet run) Lyra cluster.

    Composes with any tracer already installed on a node (chaos-engine
    instrumentation, a previous ``install_lyra_tracing``): the new log
    records first, then the prior hook still fires.  Pass ``log`` to
    append several clusters into one TraceLog.
    """
    log = log if log is not None else TraceLog()
    for node in cluster.nodes:
        prev = node.tracer
        if prev is None:
            # Common case gets the leanest closure: attribute lookups
            # hoisted into defaults, no compose branch.
            def _tracer(
                kind, iid, *, _sim=node.sim, _pid=node.pid,
                _record=log.record, **detail,
            ):
                _record(_sim.now, _pid, kind, iid, **detail)
        else:
            def _tracer(
                kind, iid, *, _sim=node.sim, _pid=node.pid,
                _record=log.record, _prev=prev, **detail,
            ):
                _record(_sim.now, _pid, kind, iid, **detail)
                _prev(kind, iid, **detail)

        node.tracer = _tracer
    return log


__all__ = ["TraceLog", "TraceEvent", "install_lyra_tracing", "PHASES", "InstanceKey"]
