"""Structured protocol tracing.

A :class:`TraceLog` collects timestamped protocol events (proposed,
decided, committed, revealed/executed) emitted by instrumented nodes.
Uses:

- **latency decomposition** — split commit latency into the paper's
  phases: BOC decision (3 message delays), Commit-protocol lag
  (piggyback/heartbeat exchange), and the commit-reveal round;
- **debugging** — reconstruct exactly what one instance did at one node;
- **artifacts** — dump runs to JSONL for offline analysis.

Install with :func:`install_lyra_tracing` on a built (un-run) cluster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.types import InstanceId

#: Canonical event kinds emitted by instrumented Lyra nodes, in pipeline
#: order (used by the decomposition below).
PHASES = ("proposed", "decided", "committed", "executed")


@dataclass(frozen=True)
class TraceEvent:
    time_us: int
    node: int
    kind: str
    instance: Optional[Tuple[int, int]] = None  # (proposer, batch_no)
    detail: Tuple[Tuple[str, Any], ...] = ()

    def to_json(self) -> str:
        return json.dumps(
            {
                "t": self.time_us,
                "node": self.node,
                "kind": self.kind,
                "iid": list(self.instance) if self.instance else None,
                "detail": dict(self.detail),
            }
        )


class TraceLog:
    """An append-only protocol event log with simple query helpers."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(
        self,
        time_us: int,
        node: int,
        kind: str,
        instance: Optional[InstanceId] = None,
        **detail: Any,
    ) -> None:
        iid = (instance.proposer, instance.batch_no) if instance else None
        self.events.append(
            TraceEvent(time_us, node, kind, iid, tuple(sorted(detail.items())))
        )

    # ------------------------------------------------------------------
    def for_instance(self, instance: InstanceId) -> List[TraceEvent]:
        key = (instance.proposer, instance.batch_no)
        return [e for e in self.events if e.instance == key]

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def first_times(
        self, instance: InstanceId, node: Optional[int] = None
    ) -> Dict[str, int]:
        """First occurrence time of each event kind for one instance
        (optionally restricted to one node)."""
        out: Dict[str, int] = {}
        for e in self.for_instance(instance):
            if node is not None and e.node != node:
                continue
            out.setdefault(e.kind, e.time_us)
        return out

    def phase_durations_us(self, instance: InstanceId, node: int) -> Dict[str, int]:
        """Per-phase durations at ``node`` following :data:`PHASES` order."""
        times = self.first_times(instance, node)
        out: Dict[str, int] = {}
        for earlier, later in zip(PHASES, PHASES[1:]):
            if earlier in times and later in times:
                out[f"{earlier}->{later}"] = times[later] - times[earlier]
        if PHASES[0] in times and PHASES[-1] in times:
            out["total"] = times[PHASES[-1]] - times[PHASES[0]]
        return out

    # ------------------------------------------------------------------
    def dump_jsonl(self, path: str) -> int:
        with open(path, "w") as fh:
            for e in self.events:
                fh.write(e.to_json() + "\n")
        return len(self.events)

    @classmethod
    def load_jsonl(cls, path: str) -> "TraceLog":
        log = cls()
        with open(path) as fh:
            for line in fh:
                raw = json.loads(line)
                log.events.append(
                    TraceEvent(
                        raw["t"],
                        raw["node"],
                        raw["kind"],
                        tuple(raw["iid"]) if raw.get("iid") else None,
                        tuple(sorted((raw.get("detail") or {}).items())),
                    )
                )
        return log

    def __len__(self) -> int:
        return len(self.events)


def install_lyra_tracing(cluster) -> TraceLog:
    """Instrument every node of a built (not yet run) Lyra cluster."""
    log = TraceLog()
    for node in cluster.nodes:
        node.tracer = (
            lambda kind, iid, node=node, **detail: log.record(
                node.sim.now, node.pid, kind, iid, **detail
            )
        )
    return log


__all__ = ["TraceLog", "TraceEvent", "install_lyra_tracing", "PHASES"]
