"""Render observability data as terminal-friendly reports.

``python -m repro report`` feeds a run's :class:`TraceLog` and
:class:`~repro.harness.cluster.ExperimentResult` (or a dumped trace
JSONL) through these renderers: the paper's per-phase latency
decomposition first (proposed → decided → committed → executed, each
with p50/p90/p99), then per-link wire and fault statistics, cache hit
rates, and metrics-registry highlights.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metrics.spans import PHASE_PAIRS, decompose_phases
from repro.metrics.stats import LatencySummary
from repro.metrics.tracelog import TraceLog


def _fmt_us(value: float) -> str:
    return f"{value / 1000.0:10.2f}"


def render_phase_table(decomp: Dict[str, LatencySummary]) -> str:
    """The latency-decomposition table, all figures in milliseconds."""
    lines = [
        f"{'phase':<22} {'count':>7} {'mean_ms':>10} {'p50_ms':>10} "
        f"{'p90_ms':>10} {'p99_ms':>10} {'max_ms':>10}",
        "-" * 84,
    ]
    for phase in PHASE_PAIRS:
        s = decomp.get(phase)
        if s is None:
            continue
        lines.append(
            f"{phase:<22} {s.count:>7} {_fmt_us(s.mean)} {_fmt_us(s.p50)} "
            f"{_fmt_us(s.p90)} {_fmt_us(s.p99)} {_fmt_us(s.maximum)}"
        )
    if len(lines) == 2:
        lines.append("(no complete phase spans in trace)")
    return "\n".join(lines)


def _render_counter_dict(title: str, stats: Dict[str, Any]) -> List[str]:
    if not stats:
        return []
    lines = [f"## {title}"]
    for key in sorted(stats):
        lines.append(f"  {key:<32} {stats[key]}")
    lines.append("")
    return lines


def _render_links(links: Dict[str, Dict[str, int]], limit: int = 12) -> List[str]:
    if not links:
        return []
    lines = ["## Per-link deliveries (top by messages)"]
    ranked = sorted(links.items(), key=lambda kv: -kv[1]["messages"])
    for link, counts in ranked[:limit]:
        lines.append(
            f"  {link:<10} messages={counts['messages']:<10} bytes={counts['bytes']}"
        )
    if len(ranked) > limit:
        lines.append(f"  ... and {len(ranked) - limit} more links")
    lines.append("")
    return lines


def _render_registry(snapshot: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    hists = snapshot.get("histograms", {})
    if hists:
        lines.append("## Registry histograms (pooled across nodes, ms)")
        for name in sorted(hists):
            s = hists[name].get("all", {})
            if not s.get("count"):
                continue
            lines.append(
                f"  {name:<24} count={s['count']:<7} "
                f"p50={s['p50'] / 1000.0:.2f} p90={s['p90'] / 1000.0:.2f} "
                f"p99={s['p99'] / 1000.0:.2f}"
            )
        lines.append("")
    counters = snapshot.get("counters", {})
    cache_lines = []
    other_lines = []
    for name in sorted(counters):
        total = counters[name].get("total", 0)
        if name.startswith("cache."):
            cache_lines.append(f"  {name:<40} {total}")
        else:
            other_lines.append(f"  {name:<40} {total}")
    if other_lines:
        lines.append("## Registry counters (totals across nodes)")
        lines.extend(other_lines)
        lines.append("")
    if cache_lines:
        lines.append("## Cache layers")
        lines.extend(cache_lines)
        lines.append("")
    return lines


def render_run_report(
    *,
    trace: Optional[TraceLog] = None,
    result: Optional[Any] = None,
    title: str = "Run report",
    proposer_only: bool = True,
) -> str:
    """One full observability report.

    ``trace`` drives the phase-latency decomposition; ``result`` (an
    :class:`~repro.harness.cluster.ExperimentResult`) contributes the
    headline figures, wire/fault stats and the registry snapshot.
    Either may be omitted.
    """
    lines: List[str] = [f"# {title}", ""]
    if result is not None:
        lines.append(
            f"n={result.n_nodes} duration={result.duration_us / 1_000_000.0:.1f}s "
            f"committed={result.committed_count} executed={result.executed_total} "
            f"throughput={result.throughput_tps:.1f} tps "
            f"avg_latency={result.avg_latency_ms:.1f} ms"
        )
        if result.safety_violation:
            lines.append(f"SAFETY VIOLATION: {result.safety_violation}")
        if result.invariant_violations:
            lines.append(
                f"INVARIANT VIOLATIONS ({len(result.invariant_violations)}): "
                + "; ".join(result.invariant_violations[:3])
            )
        lines.append("")
    if trace is not None and len(trace):
        lines.append("## Phase latency decomposition"
                     + (" (at proposer)" if proposer_only else " (all nodes)"))
        lines.append(render_phase_table(decompose_phases(trace, proposer_only)))
        lines.append("")
        kinds = trace.kinds()
        lines.append(
            "trace events: "
            + "  ".join(f"{k}={kinds[k]}" for k in sorted(kinds))
        )
        lines.append("")
    if result is not None:
        lines.extend(_render_counter_dict("Wire stats", result.wire_stats))
        lines.extend(_render_counter_dict("Fault/channel stats", result.fault_stats))
        snap = getattr(result, "metrics", None) or {}
        lines.extend(_render_links(snap.get("links", {})))
        lines.extend(_render_registry(snap))
    return "\n".join(lines).rstrip() + "\n"


__all__ = ["render_phase_table", "render_run_report"]
