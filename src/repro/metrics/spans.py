"""Span construction over a :class:`~repro.metrics.tracelog.TraceLog`.

Turns raw point events into per-instance *spans* covering the paper's
commit pipeline — ``proposed → decided`` (BOC, 3 message delays),
``decided → committed`` (Commit-protocol lag), ``committed → executed``
(commit-reveal) — and aggregates them into the per-phase latency
decomposition rendered by ``python -m repro report``.  Also exports
spans in chrome://tracing "Trace Event Format" for visual inspection
in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.metrics.tracelog import PHASES, TraceLog

#: Adjacent phase pairs, in pipeline order, plus the end-to-end span.
PHASE_PAIRS = tuple(
    f"{earlier}->{later}" for earlier, later in zip(PHASES, PHASES[1:])
) + ("total",)


@dataclass(frozen=True)
class Span:
    """One phase interval of one instance at one node."""

    instance: Tuple[int, int]
    node: int
    phase: str  # e.g. "proposed->decided"
    start_us: int
    duration_us: int

    @property
    def end_us(self) -> int:
        return self.start_us + self.duration_us


def build_spans(log: TraceLog, node: Optional[int] = None) -> List[Span]:
    """Per-instance phase spans, sorted by start time.

    ``node=None`` builds spans at every node that observed the instance;
    pass a pid to restrict (e.g. the proposer for wall-clock latency).
    Instances missing a phase boundary simply contribute no span for
    that pair.
    """
    nodes_of: Dict[Tuple[int, int], set] = {}
    for e in log.events:
        if e.instance is not None:
            nodes_of.setdefault(e.instance, set()).add(e.node)
    spans: List[Span] = []
    for iid, observers in nodes_of.items():
        pids = [node] if node is not None else sorted(observers)
        for pid in pids:
            times = log.first_times(iid, pid)
            for earlier, later in zip(PHASES, PHASES[1:]):
                if earlier in times and later in times:
                    spans.append(
                        Span(
                            iid,
                            pid,
                            f"{earlier}->{later}",
                            times[earlier],
                            times[later] - times[earlier],
                        )
                    )
    spans.sort(key=lambda s: (s.start_us, s.node, s.instance))
    return spans


def decompose_phases(
    log: TraceLog, proposer_only: bool = True
) -> Dict[str, LatencySummary]:
    """The paper's latency decomposition: per-phase latency summaries.

    With ``proposer_only`` (the default, matching the paper's
    client-visible latency), each instance is measured at its proposer;
    otherwise every observing node contributes a sample per phase.
    """
    samples: Dict[str, List[float]] = {p: [] for p in PHASE_PAIRS}
    for iid in log.instances():
        pids = (
            [iid[0]]
            if proposer_only
            else sorted({e.node for e in log.for_instance(iid)})
        )
        for pid in pids:
            for phase, dur in log.phase_durations_us(iid, pid).items():
                samples[phase].append(float(dur))
    return {p: summarize_latencies(vals) for p, vals in samples.items() if vals}


def export_chrome_trace(log: TraceLog, path: str, node: Optional[int] = None) -> int:
    """Write spans as chrome://tracing JSON ("X" complete events).

    Nodes map to pids, phases to tids, so each node gets a lane per
    pipeline phase.  Returns the number of events written.
    """
    events = []
    for s in build_spans(log, node=node):
        events.append(
            {
                "name": f"{s.instance[0]}/{s.instance[1]} {s.phase}",
                "cat": s.phase,
                "ph": "X",
                "pid": s.node,
                "tid": PHASE_PAIRS.index(s.phase) if s.phase in PHASE_PAIRS else 0,
                "ts": s.start_us,
                "dur": s.duration_us,
                "args": {"proposer": s.instance[0], "batch_no": s.instance[1]},
            }
        )
    # Instant events for point occurrences that never became spans
    # (recoveries, catch-up adoptions) keep faults visible in the lane.
    for e in log.events:
        if e.kind in ("recovered", "catchup_adopt", "catchup_done"):
            events.append(
                {
                    "name": e.kind,
                    "cat": "lifecycle",
                    "ph": "i",
                    "pid": e.node,
                    "tid": 0,
                    "ts": e.time_us,
                    "s": "p",
                }
            )
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


__all__ = ["Span", "build_spans", "decompose_phases", "export_chrome_trace", "PHASE_PAIRS"]
