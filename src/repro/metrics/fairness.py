"""Ordering-fairness metrics: reorder distance and sandwich outcomes.

The differential order-fairness literature (Quick Order Fairness, the SoK
on consensus for fair message ordering) measures how far a protocol's
*committed* order strays from the *submission* order clients actually
produced.  Two views of that gap:

- **Reorder distance** — per-transaction displacement between a
  transaction's rank in the submission order and its rank in the
  committed order (both restricted to their common keys), plus the
  normalised Kendall tau distance (pairwise inversions / possible pairs).
  0 everywhere means committed order == arrival order.
- **Sandwich outcomes** — for each MEV-bot attempt, whether the
  committed order realised ``front < victim < back``; the success *rate*
  is what Lyra's content obfuscation drives to zero while cleartext
  ordering (Pompē) leaves it open.

All functions are pure order math over tx keys — no simulator types — so
they are unit-testable on hand-built orderings.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence, Tuple

from repro.metrics.stats import summarize_latencies


def count_inversions(ranks: Sequence[int]) -> int:
    """Number of pairwise inversions in ``ranks`` (mergesort, O(n log n))."""
    items = list(ranks)
    if len(items) < 2:
        return 0

    def _sort(arr: List[int]) -> Tuple[List[int], int]:
        if len(arr) <= 1:
            return arr, 0
        mid = len(arr) // 2
        left, inv_l = _sort(arr[:mid])
        right, inv_r = _sort(arr[mid:])
        merged: List[int] = []
        inversions = inv_l + inv_r
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                inversions += len(left) - i
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    _, total = _sort(items)
    return total


def reorder_distance(
    submitted: Sequence[Hashable], committed: Sequence[Hashable]
) -> Dict[str, float]:
    """Displacement statistics between submission and committed order.

    Both sequences are restricted to their common keys (a transaction
    must appear in both orders to have a displacement); duplicates are
    resolved by first occurrence.  Returns mean/max/p99 displacement,
    the normalised Kendall tau distance in [0, 1], and the sample size.
    """
    sub_rank: Dict[Hashable, int] = {}
    for key in submitted:
        if key not in sub_rank:
            sub_rank[key] = len(sub_rank)
    common: List[Hashable] = []
    seen = set()
    for key in committed:
        if key in sub_rank and key not in seen:
            seen.add(key)
            common.append(key)
    if not common:
        return {
            "count": 0,
            "mean": 0.0,
            "max": 0,
            "p99": 0,
            "kendall_tau": 0.0,
        }
    # Re-rank within the common subset so displacement compares like with
    # like (a missing tx should not shift everyone after it).
    sub_order = sorted(common, key=lambda k: sub_rank[k])
    sub_pos = {key: i for i, key in enumerate(sub_order)}
    com_pos = {key: i for i, key in enumerate(common)}
    displacements = sorted(abs(com_pos[k] - sub_pos[k]) for k in common)
    count = len(displacements)
    # Committed order expressed as submission ranks: inversions of this
    # sequence are exactly the discordant pairs of the two orders.
    ranks = [sub_pos[key] for key in common]
    inversions = count_inversions(ranks)
    pairs = count * (count - 1) // 2
    return {
        "count": count,
        "mean": sum(displacements) / count,
        "max": displacements[-1],
        "p99": displacements[min(count - 1, int(count * 0.99))],
        "kendall_tau": (inversions / pairs) if pairs else 0.0,
    }


def sandwich_stats(
    attempts: Sequence[Any], committed: Sequence[Hashable]
) -> Dict[str, float]:
    """Judge MEV sandwich attempts against the committed order.

    ``attempts`` are :class:`~repro.workload.mev.SandwichAttempt`-shaped
    objects (``victim`` / ``front`` / ``back`` tx keys).  An attempt
    *lands* when all three transactions committed; it *succeeds* when
    their committed positions realise ``front < victim < back``.  The
    success rate is successes over all attempts (an attempt the bot
    could not finish is a failed attack, not a discarded sample).
    """
    pos: Dict[Hashable, int] = {}
    for i, key in enumerate(committed):
        if key not in pos:
            pos[key] = i
    launched = landed = successes = 0
    for attempt in attempts:
        if attempt.front is not None and attempt.back is not None:
            launched += 1
        else:
            continue
        if (
            attempt.victim in pos
            and attempt.front in pos
            and attempt.back in pos
        ):
            landed += 1
            if pos[attempt.front] < pos[attempt.victim] < pos[attempt.back]:
                successes += 1
    total = len(attempts)
    return {
        "attempts": total,
        "launched": launched,
        "landed": landed,
        "successes": successes,
        "success_rate": (successes / total) if total else 0.0,
    }


def fairness_block(
    *,
    submitted_order: Sequence[Hashable],
    committed_order: Sequence[Hashable],
    attempts: Sequence[Any] = (),
    latencies_by_group: Dict[str, List[int]] | None = None,
) -> Dict[str, Any]:
    """The consolidated fairness report attached to experiment results.

    Plain JSON (floats/ints/strings only) so it crosses sweep-worker
    boundaries and the on-disk result cache unchanged.
    """
    block: Dict[str, Any] = {
        "submitted": len(submitted_order),
        "committed": len(committed_order),
        "reorder": reorder_distance(submitted_order, committed_order),
        "sandwich": sandwich_stats(attempts, committed_order),
    }
    if latencies_by_group:
        latency: Dict[str, Dict[str, float]] = {}
        for name, latencies in sorted(latencies_by_group.items()):
            if not latencies:
                continue
            summary = summarize_latencies(latencies)
            latency[name] = {
                "count": summary.count,
                "avg_us": summary.mean,
                "p50_us": summary.p50,
                "p99_us": summary.p99,
                "max_us": summary.maximum,
            }
        block["latency"] = latency
    return block


__all__ = [
    "count_inversions",
    "reorder_distance",
    "sandwich_stats",
    "fairness_block",
]
