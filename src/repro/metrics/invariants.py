"""Always-on invariant watchdog: safety checked *during* the run.

End-of-run oracles (:mod:`repro.core.smr`) catch violations only after the
fact and only in the final state; under chaos schedules a transient
violation (say, a recovered replica briefly exposing a regressed log) can
be masked by later progress.  The :class:`InvariantWatchdog` samples the
cluster on a fixed simulated-time period and records every violation with
its timestamp:

- **prefix agreement** — the committed logs of all currently-up replicas
  are pairwise prefix-ordered (SMR-Safety, via ``check_prefix_consistency``);
- **commit regression** — each replica's committed log only ever grows by
  appending: the log observed at the previous sample must be a prefix of
  the current one (this is what crash recovery must preserve);
- **ordered output** — each log is sorted by decided sequence number;
- **post-GST liveness** — once the network is synchronous and at most
  ``f`` replicas are down, the cluster must keep committing while work is
  pending; a stall longer than ``stall_window_us`` is flagged.

Everything is deterministic: checks run on the simulator clock and the
report renders to a stable string, so the same seed yields byte-identical
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.smr import check_output_sorted, check_prefix_consistency, is_prefix
from repro.sim.engine import MILLISECONDS, Simulator


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation, timestamped in simulated µs."""

    time_us: int
    check: str
    detail: str

    def render(self) -> str:
        return f"[{self.time_us:>12} us] {self.check}: {self.detail}"


@dataclass
class InvariantReport:
    """What the watchdog saw over one run."""

    checks_run: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "checks_run": self.checks_run,
            "ok": self.ok,
            "violations": [
                {"time_us": v.time_us, "check": v.check, "detail": v.detail}
                for v in self.violations
            ],
        }

    def render(self) -> str:
        lines = [
            f"invariant checks run : {self.checks_run}",
            f"violations           : {len(self.violations)}",
        ]
        lines.extend(v.render() for v in self.violations)
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


class InvariantWatchdog:
    """Periodically samples a cluster's replicas and checks invariants.

    ``nodes`` is the list of replica objects; each must expose
    ``output_sequence()``, ``crashed``, and ``pid`` (``LyraNode`` does).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence,
        *,
        f: int,
        interval_us: int = 250 * MILLISECONDS,
        gst_us: int = 0,
        stall_window_us: int = 3_000 * MILLISECONDS,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.f = f
        self.interval_us = interval_us
        self.gst_us = gst_us
        self.stall_window_us = stall_window_us
        self.report = InvariantReport()
        #: Periodic ``_tick`` events processed so far.  Distinct from
        #: ``report.checks_run`` (which also counts explicit
        #: ``check_now`` calls): shard workers each run their own tick
        #: chain over the same horizon, and the coordinator subtracts the
        #: duplicate chains from the summed event count so sharded runs
        #: report the same ``events_processed`` as single-process ones.
        self.ticks = 0
        self._last_logs: Dict[int, List[Tuple[int, bytes]]] = {}
        self._last_progress_us = 0
        self._last_total_committed = 0
        # A violation is recorded once, not re-reported on every later tick.
        self._seen: Set[Tuple[str, str]] = set()
        # Pluggable checks (name, fn) run on every sample; fn returns a
        # detail string on violation, None when clean.  The fuzzer wires
        # its commit-reveal secrecy oracle in through this.
        self._extra_checks: List[Tuple[str, Callable[[], Optional[str]]]] = []

    def add_check(self, name: str, fn: Callable[[], Optional[str]]) -> None:
        """Register a custom invariant: ``fn() -> detail | None`` runs on
        every periodic sample and the final end-of-run check."""
        self._extra_checks.append((name, fn))

    def start(self) -> None:
        self.sim.schedule(self.interval_us, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        self.check_now()
        self.sim.schedule(self.interval_us, self._tick)

    def _record(self, check: str, detail: str) -> None:
        key = (check, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        self.report.violations.append(
            InvariantViolation(self.sim.now, check, detail)
        )

    def check_now(self) -> None:
        """Run every invariant check against the current cluster state."""
        self.report.checks_run += 1
        now = self.sim.now
        logs = {node.pid: node.output_sequence() for node in self.nodes}
        up = {node.pid for node in self.nodes if not node.crashed}

        # Prefix agreement among currently-up replicas (a crashed replica's
        # last log is stale by definition; it is checked for regression
        # below and re-checked for agreement once it recovers).
        problem = check_prefix_consistency(
            {pid: log for pid, log in logs.items() if pid in up}
        )
        if problem is not None:
            self._record("prefix-agreement", problem)

        for pid in sorted(logs):
            log = logs[pid]
            sorted_problem = check_output_sorted(log)
            if sorted_problem is not None:
                self._record("ordered-output", f"pid {pid}: {sorted_problem}")
            # No commit regression — across crashes and recoveries, the
            # log observed earlier must remain a prefix of the log now.
            last = self._last_logs.get(pid)
            if last is not None and not is_prefix(last, log):
                self._record(
                    "commit-regression",
                    f"pid {pid}: log of length {len(log)} is not an "
                    f"extension of previously observed length {len(last)}",
                )
            self._last_logs[pid] = log

        for name, fn in self._extra_checks:
            detail = fn()
            if detail is not None:
                self._record(name, detail)

        # Post-GST liveness: with ≤ f replicas down and work outstanding,
        # committed totals must keep moving.
        total = sum(len(log) for log in logs.values())
        if total > self._last_total_committed:
            self._last_total_committed = total
            self._last_progress_us = now
            return
        down = len(self.nodes) - len(up)
        if now < self.gst_us or down > self.f:
            self._last_progress_us = now  # liveness not promised here
            return
        if not self._work_pending(up):
            self._last_progress_us = now
            return
        if now - self._last_progress_us > self.stall_window_us:
            self._record(
                "post-gst-liveness",
                f"no commit progress for {now - self._last_progress_us} us "
                f"(gst={self.gst_us} us, {down} replicas down)",
            )

    def _work_pending(self, up: Set[int]) -> bool:
        """Is any up replica still holding accepted-but-uncommitted or
        pending work?  Stalls with an empty pipeline are idleness."""
        for node in self.nodes:
            if node.pid not in up:
                continue
            commit = getattr(node, "commit", None)
            if commit is None:
                continue
            if commit.accepted or commit.pending:
                return True
        return False


__all__ = ["InvariantWatchdog", "InvariantReport", "InvariantViolation"]
