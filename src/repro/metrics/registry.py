"""Low-overhead metrics registry: the observability layer's data plane.

Every instrumented layer (VVB/DBFT message dispatch, the Commit protocol,
commit-reveal, the reliable channel, the coalescing outbox) emits into one
:class:`MetricsRegistry`, keyed by ``(layer, name, node)``.  Two emission
styles keep the hot path cheap:

- **push handles** — :meth:`MetricsRegistry.counter` / ``gauge`` /
  ``histogram`` return small bound objects whose ``inc``/``set``/``observe``
  is a couple of attribute writes.  With the registry disabled the same
  calls return shared null handles, so instrumented code pays one ``is
  None``-style check at wiring time and nothing per event.
- **scrape sources** — :meth:`MetricsRegistry.add_source` registers a
  zero-cost-until-snapshot callable returning ``{name: number}``; existing
  counter structs (``NodeStats``, ``WireStats``, ``FaultStats``,
  ``ReliableStats``, cache layers) are folded in at :meth:`snapshot` time
  without touching their hot paths at all.

Snapshots are plain JSON-serialisable dicts, so they ride inside
:class:`~repro.harness.cluster.ExperimentResult` across sweep worker
process boundaries and into the on-disk result cache.
:func:`merge_snapshots` aggregates them across sweep cells.

Metrics never feed back into the simulation: no RNG draws, no scheduled
events — enabling the registry cannot perturb a run's decided prefix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Snapshot key for metrics not attributed to one node.
GLOBAL_NODE = "-"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A bounded-memory distribution.

    Count/sum/min/max are exact over every observation; percentile queries
    run over a bounded sample ring (the most recent ``capacity``
    observations), so long runs cannot grow without bound.  Deterministic:
    no sampling randomness, just a ring cursor.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_samples", "_cap", "_pos")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._samples: List[float] = []
        self._cap = capacity
        self._pos = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._samples) < self._cap:
            self._samples.append(value)
        else:
            self._samples[self._pos] = value
            self._pos = (self._pos + 1) % self._cap

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk-observe a batch (one snapshot of per-pair estimator
        errors, a drained latency buffer): same semantics as observing
        each value in order, one call on the instrumentation site."""
        for value in values:
            self.observe(value)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def summary(self) -> Dict[str, float]:
        from repro.metrics.stats import summarize_latencies

        s = summarize_latencies(self._samples)
        return {
            "count": self.count,
            "sum": round(self.total, 3),
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": round(self.total / self.count, 3) if self.count else 0.0,
            "p50": round(s.p50, 3),
            "p90": round(s.p90, 3),
            "p99": round(s.p99, 3),
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

#: A scrape source: () -> {metric name: number}.
Source = Callable[[], Dict[str, float]]


def _node_key(node: Optional[int]) -> str:
    return GLOBAL_NODE if node is None else str(node)


class MetricsRegistry:
    """Counters, gauges and bounded histograms keyed by (layer, name, node)."""

    def __init__(self, *, enabled: bool = True, histogram_capacity: int = 4096) -> None:
        self.enabled = enabled
        self._hist_cap = histogram_capacity
        # (layer, name) -> node key -> instrument.
        self._counters: Dict[Tuple[str, str], Dict[str, Counter]] = {}
        self._gauges: Dict[Tuple[str, str], Dict[str, Gauge]] = {}
        self._histograms: Dict[Tuple[str, str], Dict[str, Histogram]] = {}
        # (layer, node key, fn) scrape sources, in registration order.
        self._sources: List[Tuple[str, str, Source]] = []

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------
    def counter(self, layer: str, name: str, node: Optional[int] = None) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        slot = self._counters.setdefault((layer, name), {})
        key = _node_key(node)
        handle = slot.get(key)
        if handle is None:
            handle = slot[key] = Counter()
        return handle

    def gauge(self, layer: str, name: str, node: Optional[int] = None) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        slot = self._gauges.setdefault((layer, name), {})
        key = _node_key(node)
        handle = slot.get(key)
        if handle is None:
            handle = slot[key] = Gauge()
        return handle

    def histogram(
        self, layer: str, name: str, node: Optional[int] = None
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        slot = self._histograms.setdefault((layer, name), {})
        key = _node_key(node)
        handle = slot.get(key)
        if handle is None:
            handle = slot[key] = Histogram(self._hist_cap)
        return handle

    def add_source(
        self, layer: str, fn: Source, node: Optional[int] = None
    ) -> None:
        """Register a callable polled at snapshot time (never on hot paths).

        Sources survive crash–recovery: they are bound to the live object,
        so a recovered incarnation keeps reporting through the same entry.
        """
        if not self.enabled:
            return
        self._sources.append((layer, _node_key(node), fn))

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-serialisable view of every instrument and source."""
        if not self.enabled:
            return {}
        counters: Dict[str, Dict[str, Any]] = {}
        for (layer, name), per_node in sorted(self._counters.items()):
            values = {k: c.value for k, c in sorted(per_node.items())}
            counters[f"{layer}.{name}"] = {
                "per_node": values,
                "total": sum(values.values()),
            }
        # Scrape sources fold into the counter section: they report plain
        # numbers and aggregate the same way.
        scraped: Dict[str, Dict[str, Dict[str, float]]] = {}
        for layer, node_key, fn in self._sources:
            for name, value in fn().items():
                slot = scraped.setdefault(f"{layer}.{name}", {})
                slot[node_key] = slot.get(node_key, 0) + value
        for full_name, values in sorted(scraped.items()):
            entry = counters.setdefault(full_name, {"per_node": {}, "total": 0})
            for node_key, value in sorted(values.items()):
                entry["per_node"][node_key] = (
                    entry["per_node"].get(node_key, 0) + value
                )
            entry["total"] = sum(entry["per_node"].values())

        gauges: Dict[str, Dict[str, Any]] = {}
        for (layer, name), per_node in sorted(self._gauges.items()):
            gauges[f"{layer}.{name}"] = {
                "per_node": {k: g.value for k, g in sorted(per_node.items())}
            }

        histograms: Dict[str, Dict[str, Any]] = {}
        for (layer, name), per_node in sorted(self._histograms.items()):
            pooled: List[float] = []
            node_summaries: Dict[str, Dict[str, float]] = {}
            for key, hist in sorted(per_node.items()):
                node_summaries[key] = hist.summary()
                pooled.extend(hist._samples)
            all_hist = Histogram(max(1, len(pooled)))
            for v in pooled:
                all_hist.observe(v)
            histograms[f"{layer}.{name}"] = {
                "per_node": node_summaries,
                "all": all_hist.summary(),
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _merge_hist_summaries(parts: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Combine histogram summaries: count/sum/min/max merge exactly;
    percentiles are count-weighted means (an approximation, good enough
    for cross-cell aggregates where exact pooling is unavailable)."""
    live = [p for p in parts if p.get("count")]
    if not live:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}
    count = sum(p["count"] for p in live)
    total = sum(p["sum"] for p in live)
    out: Dict[str, float] = {
        "count": count,
        "sum": round(total, 3),
        "min": min(p["min"] for p in live),
        "max": max(p["max"] for p in live),
        "mean": round(total / count, 3),
    }
    for q in ("p50", "p90", "p99"):
        out[q] = round(sum(p[q] * p["count"] for p in live) / count, 3)
    return out


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate registry snapshots across sweep cells.

    Counters sum; gauges keep per-snapshot values out (they are
    point-in-time readings, meaningless summed) and report the mean;
    histogram summaries merge via :func:`_merge_hist_summaries`.
    """
    live = [s for s in snapshots if s]
    merged: Dict[str, Any] = {
        "cells": len(live),
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for snap in live:
        for name, entry in snap.get("counters", {}).items():
            slot = merged["counters"].setdefault(name, {"total": 0})
            slot["total"] += entry.get("total", 0)
    gauge_acc: Dict[str, List[float]] = {}
    for snap in live:
        for name, entry in snap.get("gauges", {}).items():
            for value in entry.get("per_node", {}).values():
                gauge_acc.setdefault(name, []).append(value)
    for name, values in gauge_acc.items():
        merged["gauges"][name] = {"mean": sum(values) / len(values)}
    hist_acc: Dict[str, List[Dict[str, float]]] = {}
    for snap in live:
        for name, entry in snap.get("histograms", {}).items():
            if "all" in entry:
                hist_acc.setdefault(name, []).append(entry["all"])
    for name, parts in hist_acc.items():
        merged["histograms"][name] = {"all": _merge_hist_summaries(parts)}
    return merged


__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "GLOBAL_NODE",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]
