"""Analytical saturation-throughput model (Fig. 3 extrapolation).

A pure-Python simulator cannot reproduce a Rust prototype's absolute
throughput (repro note in DESIGN.md §2), so large-n throughput is derived
from a *capacity model*: per-instance CPU and NIC budgets — with per-op
costs identical to the simulator's cost model, and message/byte counts
matching what the message-level simulator actually sends (validated by
``tests/test_capacity_vs_sim.py``) — combined into per-resource ceilings:

- **Lyra** (leaderless): every replica processes every instance, so the
  binding constraints are any single replica's CPU and ingress NIC over the
  *aggregate* instance rate, plus each proposer's egress for its own
  batches.  Aggregate capacity is flat-to-rising in n (more proposers) until
  the per-replica ceilings bite.
- **Pompē** (leader-based): the leader disseminates every certified batch
  to all n replicas (egress ∝ n per batch) and every replica verifies the
  2f+1 timestamp signatures in every certificate (CPU ∝ n per batch) — both
  per-transaction budgets shrink with n, so capacity decays ~1/n.

The model returns the ceiling *and* the name of the binding resource so
ablation benches can show what moves the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS
from repro.core.types import TX_PAYLOAD_BYTES
from repro.net.message import HEADER_BYTES

#: Bytes of a signature share / full signature / plain signature on the wire.
_SHARE_B = 48
_TSIG_B = 96
_SIG_B = 64
_PIGGYBACK_B = 48  # locked + min-pending + Merkle root


@dataclass
class CapacityInputs:
    """Calibration knobs for the capacity model."""

    batch_size: int = 800
    costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)
    nic_bps: float = 1_000_000_000.0
    #: Effective parallel speed-up for crypto work (16 vCPUs in the paper's
    #: instances; verification parallelises but the protocol thread, codec
    #: and kernel take their share — 4 effective cores calibrates Lyra's
    #: replica-CPU ceiling to the paper's 240k tx/s at n = 100).
    cores: float = 4.0
    #: Offered load per node: closed-loop clients keep a bounded pipeline
    #: of batches in flight per proposer (≈ pipeline depth × batch size /
    #: commit latency ≈ 3 × 800 / 0.75 s ≈ 3.2k tx/s per node).
    offered_per_node_tps: float = 3_200.0
    #: Pompē ordering-phase capacity per node (timestamp collection + cert
    #: assembly); the ordering phase is distributed so this scales with n.
    pompe_orderer_per_node_tps: float = 5_000.0
    #: VSS adds per-recipient sealed shares to each cipher.
    vss_share_overhead_b: int = 16
    vss_commitment_b: int = 17

    def batch_bytes(self) -> int:
        return self.batch_size * TX_PAYLOAD_BYTES

    def lyra_init_bytes(self, n: int, f: int) -> int:
        # cipher body + sealed shares + Feldman commitments + S_t + sig.
        return (
            HEADER_BYTES
            + self.batch_bytes()
            + n * self.vss_share_overhead_b
            + (2 * f + 1) * self.vss_commitment_b
            + 8 * n
            + _SIG_B
        )

    def pompe_cert_bytes(self, f: int) -> int:
        # batch + 2f+1 signed timestamps.
        return HEADER_BYTES + self.batch_bytes() + (2 * f + 1) * (_SIG_B + 8)


def lyra_instance_profile(
    n: int, f: int, inputs: CapacityInputs
) -> Dict[str, float]:
    """Per-BOC-instance budgets at one replica (good case).

    CPU in µs of *single-core* work; bytes split by role.
    """
    c = inputs.costs
    q = 2 * f + 1
    cpu = (
        c.verify_us  # INIT signature
        + c.vss_check_dealing_us  # dealing check before validating
        + c.hash_us(inputs.batch_bytes())
        + c.share_sign_us  # our VOTE(1)
        + q * c.share_verify_us  # verify a quorum of shares (then combine)
        + c.combine_us(q)
        + c.threshold_verify_us  # first DELIVER proof
        + 2.0 * n  # vote/aux/status bookkeeping
        + c.vss_partial_decrypt_us  # our decryption share
        + c.vss_decrypt_us(q)  # reconstruct the batch key
    )
    vote_bytes = HEADER_BYTES + _SHARE_B + 32 + 8 + _PIGGYBACK_B
    deliver_bytes = HEADER_BYTES + _TSIG_B + 32 + _PIGGYBACK_B
    aux_bytes = HEADER_BYTES + 12 + _PIGGYBACK_B
    dshare_bytes = HEADER_BYTES + 32 + 20 + _PIGGYBACK_B
    init_bytes = inputs.lyra_init_bytes(n, f)
    egress_participant = n * (vote_bytes + deliver_bytes + aux_bytes + dshare_bytes)
    ingress = init_bytes + n * (
        vote_bytes + deliver_bytes + aux_bytes + dshare_bytes
    )
    egress_proposer_extra = n * init_bytes
    return {
        "cpu_us": cpu,
        "ingress_bytes": float(ingress),
        "egress_participant_bytes": float(egress_participant),
        "egress_proposer_bytes": float(egress_proposer_extra),
        "init_bytes": float(init_bytes),
    }


def lyra_capacity(
    n: int, f: int, inputs: CapacityInputs | None = None
) -> Tuple[float, str]:
    """Saturation throughput (tx/s) of Lyra at ``n`` nodes and the binding
    resource name."""
    inputs = inputs or CapacityInputs()
    prof = lyra_instance_profile(n, f, inputs)
    batch = inputs.batch_size
    nic_Bps = inputs.nic_bps / 8.0

    # Aggregate instance-rate ceilings imposed by ONE replica's resources
    # (every replica handles every instance).
    cpu_rate = inputs.cores * 1_000_000.0 / prof["cpu_us"]
    ingress_rate = nic_Bps / prof["ingress_bytes"]
    egress_rate = nic_Bps / prof["egress_participant_bytes"]
    # Proposer egress limits each node's OWN proposal rate; aggregate scales
    # with n (leaderless: every node proposes).
    own_rate = nic_Bps / (
        prof["egress_proposer_bytes"] + prof["egress_participant_bytes"]
    )
    proposer_bound = n * own_rate

    bounds = {
        "replica-cpu": cpu_rate * batch,
        "replica-ingress": ingress_rate * batch,
        "replica-egress": egress_rate * batch,
        "proposer-egress": proposer_bound * batch,
        "offered-load": n * inputs.offered_per_node_tps,
    }
    resource = min(bounds, key=bounds.get)
    return bounds[resource], resource


def pompe_cert_profile(
    n: int, f: int, inputs: CapacityInputs
) -> Dict[str, float]:
    """Per-certificate budgets for Pompē (ordering + HotStuff consensus)."""
    c = inputs.costs
    q = 2 * f + 1
    cert_bytes = inputs.pompe_cert_bytes(f)
    # Replica (non-leader) CPU per certificate: verify the 2f+1 timestamp
    # signatures (the quadratic term of §VI-C), sign one ordering timestamp
    # for the proposer, plus its HotStuff vote shares (3 phases amortised
    # over certs in a block — counted per cert, pipelined blocks of ~4).
    certs_per_block = 4.0
    replica_cpu = (
        q * c.verify_us
        + c.sign_us  # ordering-phase timestamp signature
        + (3 * c.share_sign_us + c.hash_us(cert_bytes)) / certs_per_block
    )
    # Leader CPU per certificate: everything a replica does plus combining
    # three QCs per block (verify quorum shares + combine).
    leader_cpu = replica_cpu + (
        3 * (q * c.share_verify_us + c.combine_us(q))
    ) / certs_per_block
    # Leader egress per certificate: the proposal replicated to n replicas
    # plus three small QC-phase broadcasts per block.
    phase_msg = HEADER_BYTES + _TSIG_B + 64
    leader_egress = n * cert_bytes + (3 * n * phase_msg) / certs_per_block
    # Ordering phase: the proposing node broadcasts the batch to n replicas
    # and receives n signed timestamps.
    orderer_egress = n * (HEADER_BYTES + inputs.batch_bytes())
    return {
        "replica_cpu_us": replica_cpu,
        "leader_cpu_us": leader_cpu,
        "leader_egress_bytes": float(leader_egress),
        "orderer_egress_bytes": float(orderer_egress),
        "cert_bytes": float(cert_bytes),
    }


def pompe_capacity(
    n: int, f: int, inputs: CapacityInputs | None = None
) -> Tuple[float, str]:
    """Saturation throughput (tx/s) of Pompē at ``n`` nodes and the binding
    resource name."""
    inputs = inputs or CapacityInputs()
    prof = pompe_cert_profile(n, f, inputs)
    batch = inputs.batch_size
    nic_Bps = inputs.nic_bps / 8.0

    leader_egress_rate = nic_Bps / prof["leader_egress_bytes"]
    leader_cpu_rate = inputs.cores * 1_000_000.0 / prof["leader_cpu_us"]
    replica_cpu_rate = inputs.cores * 1_000_000.0 / prof["replica_cpu_us"]
    # Ordering phase is distributed (every node can collect timestamps), so
    # its egress bound scales with n.
    orderer_rate = n * nic_Bps / prof["orderer_egress_bytes"]

    bounds = {
        "leader-egress": leader_egress_rate * batch,
        "leader-cpu": leader_cpu_rate * batch,
        "replica-cpu": replica_cpu_rate * batch,
        "orderer-egress": orderer_rate * batch,
        # The distributed ordering phase (timestamp quorums, certificate
        # assembly) processes ~5k tx/s per node; at small n it is what
        # keeps Pompē's curve rising before the leader ceiling bends it
        # down (the paper's peak sits around 16-31 nodes).
        "ordering-phase": n * inputs.pompe_orderer_per_node_tps,
    }
    resource = min(bounds, key=bounds.get)
    return bounds[resource], resource


#: Capacity functions by protocol name (sweep/CLI glue).
_CAPACITY_FNS = {
    "lyra": lambda n, f, inputs: lyra_capacity(n, f, inputs),
    "pompe": lambda n, f, inputs: pompe_capacity(n, f, inputs),
}


def extrapolate_users(
    *,
    protocol: str,
    n: int,
    f: int,
    users: int,
    offered_tps: float,
    measured_tps: float,
    inputs: CapacityInputs | None = None,
) -> Dict[str, float]:
    """Scale a simulated run's offered load to a large user population.

    The traffic engine drives the protocol with one *aggregate* arrival
    stream standing in for ``users`` independent thin streams (Poisson
    superposition), each contributing ``offered_tps / users`` tx/s.  The
    capacity model then answers the scalability question directly: how
    many such users can the deployment sustain before the binding
    resource saturates?

    Returns a JSON-friendly block with the model ceiling, the per-user
    rate, the supportable population, and whether the target population
    fits (``sustainable``: capacity covers ``users`` at the observed
    per-user rate).
    """
    capacity_fn = _CAPACITY_FNS.get(protocol.lower())
    if capacity_fn is None:
        raise ValueError(
            f"no capacity model for protocol {protocol!r}; "
            f"available: {', '.join(sorted(_CAPACITY_FNS))}"
        )
    if inputs is None:
        # The default "offered-load" bound models the paper's closed-loop
        # client rig; an open-loop population question is about protocol
        # resources, so lift that artificial bound.
        inputs = CapacityInputs(offered_per_node_tps=float("inf"))
    capacity_tps, resource = capacity_fn(n, f, inputs)
    population = max(1, users)
    per_user_tps = offered_tps / population if offered_tps > 0 else 0.0
    users_at_capacity = (
        capacity_tps / per_user_tps if per_user_tps > 0 else float("inf")
    )
    demand_tps = per_user_tps * population
    return {
        "protocol": protocol.lower(),
        "n": n,
        "users": population,
        "offered_tps": offered_tps,
        "measured_tps": measured_tps,
        "per_user_tps": per_user_tps,
        "capacity_tps": capacity_tps,
        "binding_resource": resource,
        "users_at_capacity": users_at_capacity,
        "utilisation": (demand_tps / capacity_tps) if capacity_tps else 0.0,
        "sustainable": demand_tps <= capacity_tps,
    }


def _mm1_queue_wait_us(service_us: float, utilisation: float) -> float:
    """Mean M/M/1 queueing delay (wait + service) at the bottleneck."""
    rho = min(0.98, max(0.0, utilisation))
    if rho <= 0:
        return service_us
    return service_us / (1.0 - rho)


def lyra_loaded_latency_us(
    n: int,
    f: int,
    base_us: float,
    inputs: CapacityInputs | None = None,
    *,
    utilisation: float = 0.8,
) -> float:
    """Commit latency at the benchmark operating point: the unloaded
    protocol latency plus queueing at the bottleneck resource.

    Lyra's bottleneck quantum (one instance's CPU at a replica) is small
    (a few ms even at n = 100), so queueing adds little — the paper's
    observation that Lyra latency is "relatively stable"."""
    inputs = inputs or CapacityInputs()
    prof = lyra_instance_profile(n, f, inputs)
    service = prof["cpu_us"] / inputs.cores
    capacity, _ = lyra_capacity(n, f, inputs)
    offered = n * inputs.offered_per_node_tps
    rho = min(utilisation, offered / max(1.0, capacity) * utilisation)
    return base_us + _mm1_queue_wait_us(service, rho)


def pompe_loaded_latency_us(
    n: int,
    f: int,
    base_us: float,
    inputs: CapacityInputs | None = None,
    *,
    utilisation: float = 0.95,
) -> float:
    """Pompē's bottleneck quantum is the leader's per-block dissemination
    (tens of ms at n = 100), and saturation benchmarks run the leader hot:
    queueing multiplies a large service time, which is where the paper's
    2x latency gap at n > 60 comes from (see EXPERIMENTS.md)."""
    inputs = inputs or CapacityInputs()
    prof = pompe_cert_profile(n, f, inputs)
    nic_Bps = inputs.nic_bps / 8.0
    service = max(
        prof["leader_egress_bytes"] / nic_Bps * 1_000_000.0,
        prof["leader_cpu_us"] / inputs.cores,
    )
    capacity, _ = pompe_capacity(n, f, inputs)
    offered = n * inputs.offered_per_node_tps
    rho = min(utilisation, offered / max(1.0, capacity) * utilisation)
    return base_us + _mm1_queue_wait_us(service, rho)


__all__ = [
    "CapacityInputs",
    "extrapolate_users",
    "lyra_capacity",
    "pompe_capacity",
    "lyra_instance_profile",
    "pompe_cert_profile",
    "lyra_loaded_latency_us",
    "pompe_loaded_latency_us",
]
