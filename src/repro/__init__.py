"""repro — a reproduction of Lyra (Zarbafian & Gramoli, IPDPS 2023).

Lyra is a leaderless, order-fair SMR protocol that prevents blockchain
transaction-reordering attacks (front-running, sandwiching) by combining a
3-round Byzantine Ordered Consensus with VSS-based commit-reveal.

Package map
-----------
- :mod:`repro.sim` — deterministic discrete-event simulation engine.
- :mod:`repro.net` — WAN latency/bandwidth/partial-synchrony substrate.
- :mod:`repro.crypto` — signatures, threshold signatures, Shamir/Feldman
  VSS, commitments, Merkle trees, and the crypto cost model.
- :mod:`repro.core` — the paper's contribution: VVB, DBFT, Lyra BOC,
  sequence-number prediction, the Commit protocol, and the full SMR node.
- :mod:`repro.baselines` — HotStuff and Pompē, reimplemented from scratch.
- :mod:`repro.attacks` — reordering attacks and Byzantine behaviours.
- :mod:`repro.workload` — closed-loop clients, transactions, KV execution.
- :mod:`repro.metrics` — latency/throughput statistics and the capacity
  model used for large-n throughput extrapolation.
- :mod:`repro.harness` — experiment runner regenerating every paper figure.
"""

__version__ = "1.0.0"
