"""Benchmark clients behind one registry and one ``ClientStats`` contract.

§VI-A adopts Pompē's methodology: *closed-loop* clients, each keeping a
fixed number of transactions outstanding against a home replica, measuring
the latency of every committed transaction.  The consolidated latencies
and completion counts produce the average-latency and throughput numbers
of Figures 2 and 3.

On top of that, the open-loop traffic engine adds clients whose submission
*times* are controlled precisely rather than by protocol back-pressure:

- :class:`OpenLoopClient` — fixed submission interval (saturation probes).
- :class:`ArrivalClient` — submissions drawn from an
  :class:`~repro.workload.arrivals.ArrivalProcess` (Poisson / bursty /
  diurnal / trace-replay) with a pluggable body sampler — the workhorse of
  ``python -m repro workload``.
- :class:`~repro.workload.mev.MevBotClient` — adversarial traffic chasing
  victim transactions (registered on import of :mod:`repro.workload.mev`).

All client types are interchangeable: they share the submit/reply
bookkeeping of :class:`_BaseClient`, report through the same
:class:`ClientStats`, and are constructed by name through the client
registry (mirroring the protocol registry in
:mod:`repro.harness.factory`), so cluster builders never hard-code a
client class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Type

from repro.core.node import CLIENT_REPLY_KIND, CLIENT_TX_KIND
from repro.core.types import Transaction
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess
from repro.workload.generator import TxGenerator

#: A tx identity as clients track it: ``(client_id, nonce)``.
TxKey = Tuple[int, int]


@dataclass
class BuildContext:
    """Per-client construction context handed to ``from_group``.

    ``label`` is unique per client (``"<group>/<index>"``); rng streams
    derived from it are independent of every other consumer in the run,
    so adding a client never perturbs existing streams.
    """

    start_at_us: int
    stop_at_us: Optional[int]
    rng: Any  # RngRegistry
    label: str

    def stream(self, name: str):
        """A dedicated, deterministic rng stream for this client."""
        return self.rng.get("workload", self.label, name)


@dataclass
class ClientStats:
    """Per-client measurements, consolidated by the harness.

    ``incomplete`` is set by :meth:`_BaseClient.finalize` at the end of a
    run: transactions submitted but never acknowledged are counted there
    instead of silently vanishing, so ``submitted == completed +
    incomplete`` always holds after finalization.
    """

    submitted: int = 0
    completed: int = 0
    incomplete: int = 0
    latencies_us: List[int] = field(default_factory=list)
    first_submit_us: Optional[int] = None
    last_complete_us: Optional[int] = None


class _BaseClient(SimProcess):
    """Common submit/reply bookkeeping for every client type."""

    def __init__(
        self, pid: int, sim: Simulator, home: int, *, body: bytes = b""
    ) -> None:
        super().__init__(pid, sim)
        self.home = home
        self.body = body
        self.gen = TxGenerator(pid)
        self.stats = ClientStats()
        self._inflight: Dict[TxKey, int] = {}  # tx key -> submit time
        #: When on, every submission is appended to ``submit_log`` as
        #: ``(submit_time_us, key)`` — the ground-truth arrival order the
        #: fairness report compares committed order against.
        self.record_submissions = False
        self.submit_log: List[Tuple[int, TxKey]] = []
        #: The client's next self-scheduled timer event, retained so
        #: :meth:`neuter` can cancel it (shard workers neuter the remote
        #: copies of every client).
        self._pending_event: Optional[Any] = None

    def neuter(self) -> None:
        """Permanently silence this client (shard-worker remote copies).

        ``crashed=True`` alone makes sends drop silently but leaves the
        client's timer chain firing — the ClosedLoop start event, the
        first OpenLoop tick, and (worst) the ArrivalClient's entire
        arrival schedule would still run on every worker, inflating the
        summed event count above the single-process run.  Cancelling the
        pending event kills the chain at its root: cancelled events are
        skipped without being counted, so a neutered client contributes
        exactly zero processed events.
        """
        self.crashed = True
        event = self._pending_event
        if event is not None:
            event.cancel()
            self._pending_event = None

    def _submit_one(self, body: Optional[bytes] = None) -> Transaction:
        tx = self.gen.next(
            body=self.body if body is None else body, submitted_at=self.sim.now
        )
        self._inflight[tx.key()] = self.sim.now
        self.stats.submitted += 1
        if self.stats.first_submit_us is None:
            self.stats.first_submit_us = self.sim.now
        if self.record_submissions:
            self.submit_log.append((self.sim.now, tx.key()))
        self.send(self.home, Message(CLIENT_TX_KIND, {"tx": tx}, tx.wire_size()))
        return tx

    def on_message(self, message: Message, sender: int) -> None:
        if message.kind != CLIENT_REPLY_KIND:
            return
        key = message.payload.get("key")
        submit_time = self._inflight.pop(key, None)
        if submit_time is None:
            return  # duplicate reply
        self.stats.completed += 1
        self.stats.latencies_us.append(self.sim.now - submit_time)
        self.stats.last_complete_us = self.sim.now
        self._on_complete()

    def finalize(self, now_us: int) -> None:
        """End-of-run accounting: everything still in flight is incomplete."""
        self.stats.incomplete = len(self._inflight)

    def _on_complete(self) -> None:  # pragma: no cover - overridden
        pass

    @classmethod
    def from_group(cls, pid, sim, home, group, ctx: BuildContext):
        """Construct from a :class:`~repro.workload.spec.ClientGroup`.

        Subclasses override this to pick out the group fields they use;
        the registry + ``from_group`` pair is what makes client types
        interchangeable in a :class:`~repro.workload.spec.WorkloadSpec`.
        """
        return cls(pid, sim, home)


class ClosedLoopClient(_BaseClient):
    """Keeps ``window`` transactions outstanding at all times."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        home: int,
        *,
        window: int = 100,
        start_at_us: int = 0,
        stop_at_us: Optional[int] = None,
        body: bytes = b"",
    ) -> None:
        super().__init__(pid, sim, home, body=body)
        self.window = window
        self.stop_at_us = stop_at_us
        self._pending_event = sim.schedule(start_at_us, self._start)

    def _start(self) -> None:
        self._pending_event = None
        for _ in range(self.window):
            self._submit_one()

    def _on_complete(self) -> None:
        if self.stop_at_us is not None and self.sim.now >= self.stop_at_us:
            return
        self._submit_one()

    @classmethod
    def from_group(cls, pid, sim, home, group, ctx: BuildContext):
        # Deliberately does not pass stop_at_us: the legacy closed-loop
        # clients run to the horizon, and the bit-determinism oracle
        # requires identical constructor behaviour for legacy specs.
        return cls(
            pid,
            sim,
            home,
            window=group.window,
            start_at_us=ctx.start_at_us,
        )


class OpenLoopClient(_BaseClient):
    """Submits at a fixed rate regardless of completions.

    ``stop_at_us`` bounds the submission schedule: no tick is placed at or
    past the horizon, so a run's event queue drains instead of carrying an
    infinite timer chain past ``duration_us``.
    """

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        home: int,
        *,
        interval_us: int,
        start_at_us: int = 0,
        count: Optional[int] = None,
        stop_at_us: Optional[int] = None,
        body: bytes = b"",
    ) -> None:
        super().__init__(pid, sim, home, body=body)
        self.interval_us = max(1, int(interval_us))
        self.remaining = count
        self.stop_at_us = stop_at_us
        if stop_at_us is None or start_at_us < stop_at_us:
            self._pending_event = sim.schedule(start_at_us, self._tick)

    def _tick(self) -> None:
        self._pending_event = None
        if self.crashed:
            return
        if self.stop_at_us is not None and self.sim.now >= self.stop_at_us:
            return
        if self.remaining is not None:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        self._submit_one()
        next_at = self.sim.now + self.interval_us
        if self.stop_at_us is None or next_at < self.stop_at_us:
            self._pending_event = self.sim.schedule(self.interval_us, self._tick)

    @classmethod
    def from_group(cls, pid, sim, home, group, ctx: BuildContext):
        return cls(
            pid,
            sim,
            home,
            interval_us=group.interval_us,
            start_at_us=ctx.start_at_us,
            count=group.tx_count,
            stop_at_us=ctx.stop_at_us,
        )


class ArrivalClient(_BaseClient):
    """Open-loop client driven by an arrival process and a body sampler.

    One :class:`ArrivalClient` typically stands in for many simulated
    users: the aggregate of independent thin Poisson streams is itself
    Poisson, so the arrival process carries the population's offered rate
    while ``body_fn`` samples per-arrival content (e.g. Zipf hot keys, AMM
    orders).  Arrival timestamps and bodies are drawn from dedicated rng
    streams, so the submission schedule is deterministic per seed and
    independent of every other random consumer in the run.
    """

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        home: int,
        *,
        arrivals,
        rng,
        start_at_us: int = 0,
        stop_at_us: Optional[int] = None,
        body_fn: Optional[Callable[[], bytes]] = None,
    ) -> None:
        super().__init__(pid, sim, home)
        self.arrivals = arrivals
        self.stop_at_us = stop_at_us
        self._body_fn = body_fn
        horizon = stop_at_us if stop_at_us is not None else 2**62
        self._times: Iterator[int] = arrivals.times(rng, start_at_us, horizon)
        self._arm()

    def _arm(self) -> None:
        t = next(self._times, None)
        if t is None:
            return
        self._pending_event = self.sim.schedule_at(t, self._fire)

    def _fire(self) -> None:
        self._pending_event = None
        if self.crashed:
            # A dead client must not keep replaying its arrival schedule:
            # the chain ends here (clients never recover).
            return
        body = self._body_fn() if self._body_fn is not None else b""
        self._submit_one(body=body)
        self._arm()

    @classmethod
    def from_group(cls, pid, sim, home, group, ctx: BuildContext):
        from repro.workload.arrivals import PoissonArrivals, arrivals_from_dict
        from repro.workload.generator import make_body_sampler

        arrivals = (
            arrivals_from_dict(group.arrival)
            if group.arrival is not None
            else PoissonArrivals()
        )
        body_fn = make_body_sampler(
            group.body, group.body_params, ctx.stream("body")
        )
        return cls(
            pid,
            sim,
            home,
            arrivals=arrivals,
            rng=ctx.stream("arrivals"),
            start_at_us=ctx.start_at_us,
            stop_at_us=ctx.stop_at_us,
            body_fn=body_fn,
        )


# ----------------------------------------------------------------------
# Client registry — mirrors the protocol registry in harness.factory, so
# cluster builders resolve client types by name instead of hard-coding
# constructors and new client behaviours plug into the WorkloadSpec API
# with no harness changes.
# ----------------------------------------------------------------------
_CLIENT_REGISTRY: Dict[str, Type[_BaseClient]] = {}


def register_client(name: str, cls: Type[_BaseClient]) -> None:
    """Register (or replace) a client class under ``name``."""
    _CLIENT_REGISTRY[name.lower()] = cls


def available_clients() -> Tuple[str, ...]:
    """Registered client names, sorted."""
    return tuple(sorted(_CLIENT_REGISTRY))


def client_class(name: str) -> Type[_BaseClient]:
    """Resolve a registered client class by name."""
    cls = _CLIENT_REGISTRY.get(name.lower())
    if cls is None:
        raise ValueError(
            f"unknown client type {name!r}; "
            f"available: {', '.join(available_clients())}"
        )
    return cls


register_client("closed", ClosedLoopClient)
register_client("open", OpenLoopClient)
register_client("arrival", ArrivalClient)


__all__ = [
    "BuildContext",
    "ClosedLoopClient",
    "OpenLoopClient",
    "ArrivalClient",
    "ClientStats",
    "register_client",
    "available_clients",
    "client_class",
]
