"""Benchmark clients.

§VI-A adopts Pompē's methodology: *closed-loop* clients, each keeping a
fixed number of transactions outstanding against a home replica, measuring
the latency of every committed transaction.  The consolidated latencies
and completion counts produce the average-latency and throughput numbers
of Figures 2 and 3.

An :class:`OpenLoopClient` (fixed submission rate, no back-pressure) is
provided for saturation experiments and attack scenarios where the
submission *time* must be controlled precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.node import CLIENT_REPLY_KIND, CLIENT_TX_KIND
from repro.core.types import Transaction
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess
from repro.workload.generator import TxGenerator


@dataclass
class ClientStats:
    """Per-client measurements, consolidated by the harness."""

    submitted: int = 0
    completed: int = 0
    latencies_us: List[int] = field(default_factory=list)
    first_submit_us: Optional[int] = None
    last_complete_us: Optional[int] = None


class _BaseClient(SimProcess):
    """Common submit/reply bookkeeping for both client types."""

    def __init__(
        self, pid: int, sim: Simulator, home: int, *, body: bytes = b""
    ) -> None:
        super().__init__(pid, sim)
        self.home = home
        self.body = body
        self.gen = TxGenerator(pid)
        self.stats = ClientStats()
        self._inflight: Dict[tuple, int] = {}  # tx key -> submit time

    def _submit_one(self) -> Transaction:
        tx = self.gen.next(body=self.body, submitted_at=self.sim.now)
        self._inflight[tx.key()] = self.sim.now
        self.stats.submitted += 1
        if self.stats.first_submit_us is None:
            self.stats.first_submit_us = self.sim.now
        self.send(self.home, Message(CLIENT_TX_KIND, {"tx": tx}, tx.wire_size()))
        return tx

    def on_message(self, message: Message, sender: int) -> None:
        if message.kind != CLIENT_REPLY_KIND:
            return
        key = message.payload.get("key")
        submit_time = self._inflight.pop(key, None)
        if submit_time is None:
            return  # duplicate reply
        self.stats.completed += 1
        self.stats.latencies_us.append(self.sim.now - submit_time)
        self.stats.last_complete_us = self.sim.now
        self._on_complete()

    def _on_complete(self) -> None:  # pragma: no cover - overridden
        pass


class ClosedLoopClient(_BaseClient):
    """Keeps ``window`` transactions outstanding at all times."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        home: int,
        *,
        window: int = 100,
        start_at_us: int = 0,
        stop_at_us: Optional[int] = None,
        body: bytes = b"",
    ) -> None:
        super().__init__(pid, sim, home, body=body)
        self.window = window
        self.stop_at_us = stop_at_us
        sim.schedule(start_at_us, self._start)

    def _start(self) -> None:
        for _ in range(self.window):
            self._submit_one()

    def _on_complete(self) -> None:
        if self.stop_at_us is not None and self.sim.now >= self.stop_at_us:
            return
        self._submit_one()


class OpenLoopClient(_BaseClient):
    """Submits at a fixed rate regardless of completions."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        home: int,
        *,
        interval_us: int,
        start_at_us: int = 0,
        count: Optional[int] = None,
        body: bytes = b"",
    ) -> None:
        super().__init__(pid, sim, home, body=body)
        self.interval_us = max(1, int(interval_us))
        self.remaining = count
        sim.schedule(start_at_us, self._tick)

    def _tick(self) -> None:
        if self.crashed:
            return
        if self.remaining is not None:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        self._submit_one()
        self.sim.schedule(self.interval_us, self._tick)


__all__ = ["ClosedLoopClient", "OpenLoopClient", "ClientStats"]
