"""MEV-bot adversarial clients: sandwich attacks against observed swaps.

The bot is the workload-level half of the paper's Fig. 1 story.  It sits
next to ("colocated with") a replica and is *notified* whenever that
replica can read a transaction's content:

- Under **Pompē**, batches travel in clear text during the ordering phase
  (``PompeNode.observe_batch``), so the bot sees every victim swap while
  its timestamp is still being negotiated — in time to submit a
  front-running swap and a closing back-run.
- Under **Lyra**, payloads are VSS-encrypted until after commit; the
  first moment any replica can read a swap is at execution, when its
  position is already locked.  The bot still reacts (the cluster taps the
  execution hook), but the front transaction can only land *after* the
  victim — the sandwich structurally fails.

Whether an attempt *succeeded* is judged post-hoc from the committed
order by :func:`repro.metrics.fairness.sandwich_stats`: success requires
``front < victim < back`` positions.  The asymmetry — nonzero success
rate under Pompē, zero under Lyra, same bot, same traffic — is the
fairness headline the workload engine exists to measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.types import Batch, Transaction
from repro.sim.engine import Simulator
from repro.workload.amm import BUY, SELL, decode_swap, encode_swap
from repro.workload.clients import TxKey, _BaseClient, register_client


@dataclass
class SandwichAttempt:
    """One chased victim: the bot's front/back transaction identities."""

    victim: TxKey
    observed_at_us: int
    direction: int
    amount_in: int
    front: Optional[TxKey] = None
    back: Optional[TxKey] = None
    front_at_us: Optional[int] = None
    back_at_us: Optional[int] = None

    @property
    def launched(self) -> bool:
        """Both halves of the sandwich were actually submitted."""
        return self.front is not None and self.back is not None

    def to_dict(self) -> dict:
        return {
            "victim": list(self.victim),
            "front": list(self.front) if self.front else None,
            "back": list(self.back) if self.back else None,
            "observed_at_us": self.observed_at_us,
        }


class MevBotClient(_BaseClient):
    """Chases observed swaps with a front-run + back-run pair.

    The bot reacts ``react_delay_us`` after observation (local processing)
    and closes the sandwich ``back_delay_us`` later — late enough that the
    back-run's honestly assigned timestamp lands after the victim's, which
    is exactly what a sandwich wants.  ``min_victim_amount`` filters for
    whale swaps worth chasing; ``max_attempts`` bounds adversarial volume
    so the bot stresses ordering fairness, not raw throughput.
    """

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        home: int,
        *,
        react_delay_us: int = 500,
        back_delay_us: int = 200_000,
        min_victim_amount: int = 0,
        max_attempts: int = 16,
        stop_at_us: Optional[int] = None,
    ) -> None:
        super().__init__(pid, sim, home)
        self.react_delay_us = max(0, int(react_delay_us))
        self.back_delay_us = max(1, int(back_delay_us))
        self.min_victim_amount = min_victim_amount
        self.max_attempts = max_attempts
        self.stop_at_us = stop_at_us
        self.attempts: List[SandwichAttempt] = []
        self._chased: Set[TxKey] = set()

    # -- observation ----------------------------------------------------
    def on_observed_batch(self, batch: Batch) -> None:
        """Cluster-wired tap: the colocated replica saw ``batch``'s content."""
        for tx in batch.txs:
            self.on_observed_tx(tx)

    def on_observed_tx(self, tx: Transaction) -> None:
        if self.crashed or len(self.attempts) >= self.max_attempts:
            return
        if tx.client_id == self.pid or tx.key() in self._chased:
            return
        if self.stop_at_us is not None and self.sim.now >= self.stop_at_us:
            return
        decoded = decode_swap(tx)
        if decoded is None:
            return
        direction, amount = decoded
        if amount < self.min_victim_amount:
            return
        self._chased.add(tx.key())
        attempt = SandwichAttempt(
            victim=tx.key(),
            observed_at_us=self.sim.now,
            direction=direction,
            amount_in=amount,
        )
        self.attempts.append(attempt)
        self.sim.schedule(self.react_delay_us, lambda: self._front(attempt))

    # -- the sandwich ---------------------------------------------------
    def _front(self, attempt: SandwichAttempt) -> None:
        if self.crashed:
            return
        tx = self._submit_one(
            body=encode_swap(attempt.direction, max(1, attempt.amount_in))
        )
        attempt.front = tx.key()
        attempt.front_at_us = self.sim.now
        self.sim.schedule(self.back_delay_us, lambda: self._back(attempt))

    def _back(self, attempt: SandwichAttempt) -> None:
        if self.crashed:
            return
        if self.stop_at_us is not None and self.sim.now >= self.stop_at_us:
            return  # run over: the sandwich stays half-open (not landed)
        reverse = SELL if attempt.direction == BUY else BUY
        tx = self._submit_one(
            body=encode_swap(reverse, max(1, attempt.amount_in))
        )
        attempt.back = tx.key()
        attempt.back_at_us = self.sim.now

    @classmethod
    def from_group(cls, pid, sim, home, group, ctx):
        return cls(
            pid,
            sim,
            home,
            react_delay_us=group.react_delay_us,
            back_delay_us=group.back_delay_us,
            min_victim_amount=group.min_victim_amount,
            max_attempts=group.max_attempts,
            stop_at_us=ctx.stop_at_us,
        )


register_client("mev", MevBotClient)


__all__ = ["MevBotClient", "SandwichAttempt"]
