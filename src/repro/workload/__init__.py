"""Workloads: the declarative traffic engine.

§VI-A: the paper's evaluation uses closed-loop clients submitting unique
32-byte transactions, with committed transactions written to a key-value
store.  On top of that rig, the open-loop traffic engine drives the
protocol with arrival-process-driven clients (Poisson / bursty / diurnal
/ trace), synthetic body mixes (raw, Zipf hot-key KV, AMM orders) and
adversarial MEV bots — all declared through :class:`WorkloadSpec` and
instantiated by :func:`build_workload` behind the client registry.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrivals_from_dict,
    available_arrivals,
    make_arrivals,
)
from repro.workload.clients import (
    ArrivalClient,
    ClientStats,
    ClosedLoopClient,
    OpenLoopClient,
    available_clients,
    client_class,
    register_client,
)
from repro.workload.generator import TxGenerator, make_body_sampler
from repro.workload.kvstore import KvStore
from repro.workload.mev import MevBotClient, SandwichAttempt
from repro.workload.spec import (
    ClientGroup,
    Workload,
    WorkloadSpec,
    build_workload,
    mev_node_classes,
)

__all__ = [
    "ArrivalClient",
    "ArrivalProcess",
    "BurstyArrivals",
    "ClientGroup",
    "ClientStats",
    "ClosedLoopClient",
    "DiurnalArrivals",
    "KvStore",
    "MevBotClient",
    "OpenLoopClient",
    "PoissonArrivals",
    "SandwichAttempt",
    "TraceArrivals",
    "TxGenerator",
    "Workload",
    "WorkloadSpec",
    "arrivals_from_dict",
    "available_arrivals",
    "available_clients",
    "build_workload",
    "client_class",
    "make_arrivals",
    "make_body_sampler",
    "mev_node_classes",
    "register_client",
]
