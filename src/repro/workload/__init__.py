"""Workloads: closed-loop clients, transaction generation, KV execution.

§VI-A: the paper's evaluation uses closed-loop clients submitting unique
32-byte transactions, with committed transactions written to a key-value
store.  :class:`ClosedLoopClient` keeps a configurable number of
transactions in flight, measures per-transaction commit latency, and
feeds the throughput/latency statistics of every benchmark.
"""

from repro.workload.clients import ClientStats, ClosedLoopClient, OpenLoopClient
from repro.workload.generator import TxGenerator
from repro.workload.kvstore import KvStore

__all__ = [
    "ClosedLoopClient",
    "OpenLoopClient",
    "ClientStats",
    "TxGenerator",
    "KvStore",
]
