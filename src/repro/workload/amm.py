"""A constant-product automated market maker (AMM).

The application that makes reordering *profitable*: a Uniswap-style x·y=k
pool where execution order determines prices.  Attack experiments replay a
committed transaction log through the pool and measure the attacker's
profit — the "miner extractable value" the paper's introduction quantifies
at hundreds of millions of dollars.

Transactions encode swaps in the 16-byte body:
``b"S" + direction(1) + amount(8)`` (see :func:`encode_swap`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import Transaction

#: Swap direction: buy asset Y with X, or sell Y for X.
BUY, SELL = 0, 1

_SWAP = struct.Struct(">cBQ")


def encode_swap(direction: int, amount_in: int) -> bytes:
    """Body bytes for a swap of ``amount_in`` units (input side)."""
    if direction not in (BUY, SELL):
        raise ValueError("direction must be BUY or SELL")
    if amount_in <= 0:
        raise ValueError("amount must be positive")
    return _SWAP.pack(b"S", direction, amount_in)


def decode_swap(tx: Transaction) -> Optional[Tuple[int, int]]:
    """Decode a swap body; None for non-swap transactions."""
    if len(tx.body) < _SWAP.size or not tx.body.startswith(b"S"):
        return None
    _, direction, amount = _SWAP.unpack(tx.body[: _SWAP.size])
    if direction not in (BUY, SELL):
        return None
    return direction, amount


@dataclass
class SwapResult:
    trader: int
    direction: int
    amount_in: int
    amount_out: int
    price_before: float
    price_after: float


class ConstantProductAmm:
    """An x·y = k pool with a fee, plus per-trader balance accounting."""

    def __init__(
        self,
        reserve_x: int = 1_000_000,
        reserve_y: int = 1_000_000,
        fee_bps: int = 30,
    ) -> None:
        if reserve_x <= 0 or reserve_y <= 0:
            raise ValueError("reserves must be positive")
        self.reserve_x = reserve_x
        self.reserve_y = reserve_y
        self.fee_bps = fee_bps
        self.trades: List[SwapResult] = []
        #: Net position per trader: +Y received / -Y paid, +X received / -X paid.
        self.balances: Dict[int, Dict[str, int]] = {}

    @property
    def price(self) -> float:
        """Price of Y in units of X."""
        return self.reserve_x / self.reserve_y

    def _credit(self, trader: int, asset: str, amount: int) -> None:
        account = self.balances.setdefault(trader, {"x": 0, "y": 0})
        account[asset] += amount

    def swap(self, trader: int, direction: int, amount_in: int) -> SwapResult:
        """Execute a swap at the current reserves (order matters!)."""
        if amount_in <= 0:
            raise ValueError("amount must be positive")
        price_before = self.price
        effective = amount_in * (10_000 - self.fee_bps) // 10_000
        if direction == BUY:
            # Pay X, receive Y.
            out = self.reserve_y * effective // (self.reserve_x + effective)
            self.reserve_x += amount_in
            self.reserve_y -= out
            self._credit(trader, "x", -amount_in)
            self._credit(trader, "y", out)
        elif direction == SELL:
            # Pay Y, receive X.
            out = self.reserve_x * effective // (self.reserve_y + effective)
            self.reserve_y += amount_in
            self.reserve_x -= out
            self._credit(trader, "y", -amount_in)
            self._credit(trader, "x", out)
        else:
            raise ValueError("unknown direction")
        result = SwapResult(
            trader, direction, amount_in, out, price_before, self.price
        )
        self.trades.append(result)
        return result

    def apply_transaction(self, tx: Transaction) -> Optional[SwapResult]:
        """Execute a committed transaction if it encodes a swap."""
        decoded = decode_swap(tx)
        if decoded is None:
            return None
        direction, amount = decoded
        return self.swap(tx.client_id, direction, amount)

    def apply_log(self, txs: Sequence[Transaction]) -> List[SwapResult]:
        return [r for r in (self.apply_transaction(tx) for tx in txs) if r]

    def net_value(self, trader: int) -> float:
        """Mark-to-market value of a trader's net position at the current
        pool price (in units of X)."""
        account = self.balances.get(trader, {"x": 0, "y": 0})
        return account["x"] + account["y"] * self.price


def sandwich_profit(
    pool_args: dict,
    victim: Transaction,
    front: Transaction,
    back: Transaction,
    attacked_order: Sequence[Transaction],
    honest_order: Sequence[Transaction],
) -> Tuple[float, float]:
    """Attacker mark-to-market value under the attacked vs honest order.

    Returns ``(attacked_value, honest_value)``; a positive gap is the MEV
    extracted by the reordering.
    """
    attacker = front.client_id
    attacked_pool = ConstantProductAmm(**pool_args)
    attacked_pool.apply_log(attacked_order)
    honest_pool = ConstantProductAmm(**pool_args)
    honest_pool.apply_log(honest_order)
    return attacked_pool.net_value(attacker), honest_pool.net_value(attacker)


__all__ = [
    "ConstantProductAmm",
    "SwapResult",
    "encode_swap",
    "decode_swap",
    "sandwich_profit",
    "BUY",
    "SELL",
]
