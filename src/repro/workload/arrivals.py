"""Open-loop arrival processes.

The paper's §VI evaluation drives the protocol with closed-loop probes —
clients that wait for a commit before submitting again — which by
construction can never push the system past its knee.  Measuring fairness
*under load* (reorder distance, sandwich exposure) needs open-loop
traffic: submission times drawn from an arrival process, independent of
protocol back-pressure.

Every process here yields absolute submission timestamps (virtual µs)
from a dedicated :class:`numpy.random.Generator`, so the arrival sequence
of a run is a pure function of ``(seed, spec)`` — identical across
repeats, worker counts, and wire-coalescing settings.  A million thin
per-user Poisson streams superpose into one Poisson stream at the
aggregate rate, which is how ``python -m repro workload --users 1000000``
simulates a million-user population without a million client processes:
the engine draws from the aggregate process and the capacity model
(:func:`repro.metrics.capacity.extrapolate_users`) scales the verdict
back to the user population.

Processes are registered by ``kind`` so :class:`~repro.workload.spec
.WorkloadSpec` can name them declaratively (mirroring the protocol and
client registries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Sequence, Tuple, Type

import numpy as np

SECOND_US = 1_000_000


class ArrivalProcess:
    """Base contract: a serialisable generator of submission timestamps."""

    kind: str = "base"

    def times(
        self, rng: np.random.Generator, start_us: int, horizon_us: int
    ) -> Iterator[int]:
        """Yield non-decreasing absolute timestamps in [start, horizon)."""
        raise NotImplementedError

    def mean_rate_tps(self) -> float:
        """Long-run mean offered rate (tx/s) — feeds the capacity model."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        data = {"kind": self.kind}
        data.update(self.__dict__ if not hasattr(self, "__dataclass_fields__")
                    else {f: getattr(self, f) for f in self.__dataclass_fields__})
        # Tuples serialize as lists; from_dict converts back.
        return {
            k: (list(v) if isinstance(v, tuple) else v) for k, v in data.items()
        }


_ARRIVALS: Dict[str, Type[ArrivalProcess]] = {}


def register_arrival(cls: Type[ArrivalProcess]) -> Type[ArrivalProcess]:
    """Register an arrival-process class under its ``kind`` name."""
    _ARRIVALS[cls.kind] = cls
    return cls


def available_arrivals() -> Tuple[str, ...]:
    return tuple(sorted(_ARRIVALS))


def make_arrivals(kind: str, **params: Any) -> ArrivalProcess:
    """Instantiate a registered process by name."""
    cls = _ARRIVALS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown arrival process {kind!r}; "
            f"available: {', '.join(available_arrivals())}"
        )
    return cls(**params)


def arrivals_from_dict(data: Dict[str, Any]) -> ArrivalProcess:
    """Inverse of :meth:`ArrivalProcess.to_dict`."""
    params = dict(data)
    kind = params.pop("kind")
    if kind == TraceArrivals.kind and "offsets_us" in params:
        params["offsets_us"] = tuple(int(x) for x in params["offsets_us"])
    return make_arrivals(kind, **params)


@register_arrival
@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process at ``rate_tps`` transactions/second."""

    rate_tps: float = 100.0
    kind = "poisson"

    def __post_init__(self) -> None:
        if self.rate_tps <= 0:
            raise ValueError("rate_tps must be positive")

    def mean_rate_tps(self) -> float:
        return self.rate_tps

    def times(self, rng, start_us, horizon_us):
        mean_gap_us = SECOND_US / self.rate_tps
        t = float(start_us)
        while True:
            t += rng.exponential(mean_gap_us)
            if t >= horizon_us:
                return
            yield int(t)


@register_arrival
@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson: bursts of ``burst_factor``× the quiet rate.

    Each ``period_us`` window spends ``duty`` of its span in the ON state;
    rates are chosen so the long-run mean is ``rate_tps``.  Implemented by
    thinning a homogeneous process at the ON rate, so one rng stream fully
    determines the sequence.
    """

    rate_tps: float = 100.0
    burst_factor: float = 8.0
    period_us: int = SECOND_US
    duty: float = 0.25
    kind = "bursty"

    def __post_init__(self) -> None:
        if self.rate_tps <= 0:
            raise ValueError("rate_tps must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not (0.0 < self.duty <= 1.0):
            raise ValueError("duty must be in (0, 1]")
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")

    def mean_rate_tps(self) -> float:
        return self.rate_tps

    def _rates(self) -> Tuple[float, float]:
        off = self.rate_tps / (
            self.duty * self.burst_factor + (1.0 - self.duty)
        )
        return self.burst_factor * off, off

    def times(self, rng, start_us, horizon_us):
        on_rate, off_rate = self._rates()
        accept_off = off_rate / on_rate
        mean_gap_us = SECOND_US / on_rate
        t = float(start_us)
        while True:
            t += rng.exponential(mean_gap_us)
            if t >= horizon_us:
                return
            in_burst = (t % self.period_us) < self.duty * self.period_us
            if in_burst or rng.random() < accept_off:
                yield int(t)


@register_arrival
@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson — a compressed day/night cycle.

    λ(t) = rate · (1 + amplitude · sin(2π(t/period + phase))), realised by
    thinning a homogeneous process at the peak rate.
    """

    rate_tps: float = 100.0
    amplitude: float = 0.8
    period_us: int = 60 * SECOND_US
    phase: float = 0.0
    kind = "diurnal"

    def __post_init__(self) -> None:
        if self.rate_tps <= 0:
            raise ValueError("rate_tps must be positive")
        if not (0.0 <= self.amplitude < 1.0):
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")

    def mean_rate_tps(self) -> float:
        return self.rate_tps

    def times(self, rng, start_us, horizon_us):
        peak = self.rate_tps * (1.0 + self.amplitude)
        mean_gap_us = SECOND_US / peak
        t = float(start_us)
        while True:
            t += rng.exponential(mean_gap_us)
            if t >= horizon_us:
                return
            lam = self.rate_tps * (
                1.0
                + self.amplitude
                * math.sin(2.0 * math.pi * (t / self.period_us + self.phase))
            )
            if rng.random() < lam / peak:
                yield int(t)


@register_arrival
@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay explicit submission offsets (µs after the client start).

    The replay is literal — no randomness is drawn — so recorded traces
    reproduce bit-identically regardless of seed.
    """

    offsets_us: Tuple[int, ...] = ()
    kind = "trace"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "offsets_us", tuple(int(x) for x in self.offsets_us)
        )
        if any(b < a for a, b in zip(self.offsets_us, self.offsets_us[1:])):
            raise ValueError("trace offsets must be non-decreasing")

    def mean_rate_tps(self) -> float:
        if len(self.offsets_us) < 2:
            return 0.0
        span = self.offsets_us[-1] - self.offsets_us[0]
        if span <= 0:
            return 0.0
        return (len(self.offsets_us) - 1) * SECOND_US / span

    def times(self, rng, start_us, horizon_us):
        for off in self.offsets_us:
            t = start_us + off
            if t >= horizon_us:
                return
            yield int(t)


__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "register_arrival",
    "available_arrivals",
    "make_arrivals",
    "arrivals_from_dict",
]
