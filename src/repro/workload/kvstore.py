"""The execution layer: an in-memory key-value store.

§VI-A: "during the benchmark, committed transactions are written in a
key-value store".  The store applies committed batches in log order; its
content is a deterministic function of the committed log, which the
integration tests use as an end-to-end determinism check (two replicas
with prefix-consistent logs must have consistent stores).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.types import Batch, Transaction
from repro.workload.generator import decode_kv_write


class KvStore:
    """Sequentially applied KV state."""

    def __init__(self) -> None:
        self._data: Dict[int, int] = {}
        self.applied_txs = 0
        self.applied_batches = 0

    def apply_batch(self, batch: Batch) -> None:
        self.applied_batches += 1
        for tx in batch.txs:
            self.apply(tx)

    def apply(self, tx: Transaction) -> None:
        self.applied_txs += 1
        kv = decode_kv_write(tx)
        if kv is not None:
            key, value = kv
            self._data[key] = value
        else:
            # Opaque payloads are recorded under their identity so the
            # store still reflects every committed transaction.
            self._data[hash(tx.key()) & 0x7FFFFFFFFFFFFFFF] = tx.nonce

    def get(self, key: int) -> Optional[int]:
        return self._data.get(key)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._data)

    def __len__(self) -> int:
        return len(self._data)


__all__ = ["KvStore"]
