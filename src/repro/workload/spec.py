"""Declarative workload specifications — the traffic-engine API.

A :class:`WorkloadSpec` describes *everything* a run submits: groups of
clients, each with a client type (resolved through the client registry),
an arrival process (for open-loop groups), a body mix, and placement.
It replaces the scattered ``clients_per_node`` / ``probe_clients`` /
``probe_window`` knobs with one composable, serialisable object that
plugs into every cluster builder via ``ExperimentConfig.workload``.

Design invariants:

- **Legacy identity.**  :meth:`WorkloadSpec.from_legacy` reproduces the
  pre-spec client rig *exactly*: same construction order, same
  constructor arguments, no extra rng draws — so runs with a legacy spec
  are bit-identical to the pre-refactor harness (the sweep cache and the
  coalescing determinism oracle both depend on this).
- **Determinism.**  All randomness used by workload clients flows
  through per-client named rng streams (``("workload", label, ...)``),
  so the submission schedule is a pure function of ``(seed, spec)`` and
  independent of protocol, coalescing, and every other random consumer.
- **A million users without a million processes.**  Independent thin
  Poisson user streams superpose into one Poisson stream, so a group
  carries a ``users`` population whose aggregate offered rate one
  :class:`~repro.workload.clients.ArrivalClient` submits; the capacity
  model (:func:`repro.metrics.capacity.extrapolate_users`) scales the
  sustained-load verdict back to the population.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.workload.arrivals import SECOND_US, arrivals_from_dict
from repro.workload.clients import (
    BuildContext,
    ClientStats,
    TxKey,
    _BaseClient,
    client_class,
)
from repro.workload.mev import MevBotClient, SandwichAttempt


@dataclass(frozen=True)
class ClientGroup:
    """One homogeneous set of clients inside a :class:`WorkloadSpec`.

    Placement: ``count_per_node`` clients per replica (in pid order),
    plus ``count`` extra clients — one per replica (``one_per_node``),
    all at ``home``, or round-robin over replicas.  Which constructor
    fields apply depends on ``client`` (see ``from_group`` of each
    registered client class); unused fields are ignored.
    """

    name: str = "clients"
    #: Registered client type: ``closed``, ``open``, ``arrival``, ``mev``.
    client: str = "closed"
    count: int = 0
    count_per_node: int = 0
    one_per_node: bool = False
    home: Optional[int] = None
    # Closed-loop.
    window: int = 50
    # Open-loop (fixed interval).
    interval_us: int = 10_000
    tx_count: Optional[int] = None
    #: Arrival-process spec (``ArrivalProcess.to_dict()`` form).
    arrival: Optional[Dict[str, Any]] = None
    #: Body mix: ``raw``, ``kv_zipf``, ``amm`` (see ``make_body_sampler``).
    body: str = "raw"
    body_params: Optional[Dict[str, Any]] = None
    #: Simulated user population this group stands in for (0 = the
    #: clients themselves).  Informational: feeds capacity extrapolation.
    users: int = 0
    # MEV bot knobs.
    react_delay_us: int = 500
    back_delay_us: int = 200_000
    min_victim_amount: int = 0
    max_attempts: int = 16
    #: MEV bots only: give the bot's home replica a Byzantine
    #: timestamp-biasing node class under Pompē (Fig. 1's colluding
    #: orderer).  Ignored by protocols without that attack surface.
    collude: bool = False

    # ------------------------------------------------------------------
    def homes(self, n: int) -> List[int]:
        """Home replica pids, in construction order."""
        out: List[int] = []
        for pid in range(n):
            out.extend([pid] * self.count_per_node)
        if self.one_per_node:
            out.extend(range(min(self.count, n)))
        elif self.home is not None:
            out.extend([self.home] * self.count)
        else:
            out.extend(i % n for i in range(self.count))
        return out

    def n_clients(self, n: int) -> int:
        return len(self.homes(n))

    def offered_tps(self, n: int) -> float:
        """Mean open-loop offered rate of the group (0 for closed loop /
        reactive clients, whose rate is set by back-pressure)."""
        count = self.n_clients(n)
        if self.client == "arrival":
            proc = (
                arrivals_from_dict(self.arrival)
                if self.arrival is not None
                else None
            )
            rate = proc.mean_rate_tps() if proc is not None else 100.0
            return rate * count
        if self.client == "open":
            return count * SECOND_US / max(1, self.interval_us)
        return 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Compact JSON form: only non-default fields are emitted."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = f.default
            if value != default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClientGroup":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ClientGroup fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class WorkloadSpec:
    """The complete traffic description of a run.

    ``fairness`` turns on submission-order recording, which the fairness
    report layer (:mod:`repro.metrics.fairness`) compares against the
    committed order.  ``users`` is the simulated population the spec
    stands in for (defaults to the sum of group populations).
    """

    groups: Tuple[ClientGroup, ...] = ()
    fairness: bool = True
    users: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        names = [g.name for g in self.groups]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate group names: {names}")

    # ------------------------------------------------------------------
    def n_clients(self, n: int) -> int:
        return sum(g.n_clients(n) for g in self.groups)

    def offered_tps(self, n: int) -> float:
        return sum(g.offered_tps(n) for g in self.groups)

    def resolved_users(self, n: int) -> int:
        """The simulated user population: explicit, summed from groups,
        or (fallback) the literal client count."""
        if self.users:
            return self.users
        by_group = sum(g.users for g in self.groups)
        return by_group if by_group else self.n_clients(n)

    # ------------------------------------------------------------------
    @classmethod
    def from_legacy(
        cls,
        *,
        clients_per_node: int = 1,
        client_window: int = 50,
        probe_clients: int = 0,
        probe_window: int = 1,
    ) -> "WorkloadSpec":
        """The spec equivalent of the deprecated knob set.

        Reproduces the historical client rig exactly (construction order
        and constructor arguments), with fairness recording off — legacy
        runs must stay bit-identical and zero-overhead.
        """
        groups: List[ClientGroup] = [
            ClientGroup(
                name="main",
                client="closed",
                count_per_node=clients_per_node,
                window=client_window,
            )
        ]
        if probe_clients > 0:
            groups.append(
                ClientGroup(
                    name="probes",
                    client="closed",
                    count=probe_clients,
                    one_per_node=True,
                    window=probe_window,
                )
            )
        return cls(groups=tuple(groups), fairness=False)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "groups": [g.to_dict() for g in self.groups],
            "fairness": self.fairness,
            "users": self.users,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown WorkloadSpec fields: {sorted(unknown)}")
        data = dict(data)
        data["groups"] = tuple(
            ClientGroup.from_dict(g) for g in data.get("groups", ())
        )
        return cls(**data)


class Workload:
    """The instantiated clients of a spec, plus consolidated accounting.

    Returned by :func:`build_workload`; cluster builders keep one and the
    runner calls :meth:`finalize` at the end of the run so in-flight
    transactions are counted as incomplete rather than silently dropped.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.clients: List[_BaseClient] = []
        self.by_group: Dict[str, List[_BaseClient]] = {}
        self.mev_bots: List[MevBotClient] = []

    # -- wiring helpers -------------------------------------------------
    def mev_bots_by_home(self) -> Dict[int, List[MevBotClient]]:
        out: Dict[int, List[MevBotClient]] = {}
        for bot in self.mev_bots:
            out.setdefault(bot.home, []).append(bot)
        return out

    # -- end-of-run accounting ------------------------------------------
    def finalize(self, now_us: int) -> None:
        for client in self.clients:
            client.finalize(now_us)

    def counts(self) -> Dict[str, int]:
        return {
            "clients": len(self.clients),
            "submitted": sum(c.stats.submitted for c in self.clients),
            "completed": sum(c.stats.completed for c in self.clients),
            "incomplete": sum(c.stats.incomplete for c in self.clients),
        }

    def submission_log(self) -> List[Tuple[int, TxKey]]:
        """All recorded submissions merged into one (time, key) order."""
        merged: List[Tuple[int, TxKey]] = []
        for client in self.clients:
            merged.extend(client.submit_log)
        merged.sort()
        return merged

    def submit_order(self) -> List[TxKey]:
        """Tx keys in global submission order (requires fairness on)."""
        return [key for _, key in self.submission_log()]

    def sandwich_attempts(self) -> List[SandwichAttempt]:
        return [a for bot in self.mev_bots for a in bot.attempts]

    def latencies_by_group(self) -> Dict[str, List[int]]:
        return {
            name: [
                lat
                for client in members
                for lat in client.stats.latencies_us
            ]
            for name, members in self.by_group.items()
        }

    def metrics_source(self) -> Dict[str, float]:
        """Flat scrape for the metrics registry (snapshot-time only)."""
        out: Dict[str, float] = dict(self.counts())
        attempts = self.sandwich_attempts()
        if self.mev_bots:
            out["mev_attempts"] = len(attempts)
            out["mev_launched"] = sum(1 for a in attempts if a.launched)
        for name, members in self.by_group.items():
            out[f"{name}.submitted"] = sum(
                c.stats.submitted for c in members
            )
            out[f"{name}.completed"] = sum(
                c.stats.completed for c in members
            )
        return out


def build_workload(
    spec: WorkloadSpec,
    *,
    sim,
    topology,
    rng,
    n: int,
    start_at_us: int,
    stop_at_us: Optional[int] = None,
) -> Workload:
    """Instantiate every client of ``spec`` into ``sim``.

    Clients are created group by group in spec order, each placed in its
    home replica's region; for legacy specs this reproduces the historic
    pid-assignment and event-scheduling order exactly.  The caller still
    registers the returned clients on the network.
    """
    workload = Workload(spec)
    for group in spec.groups:
        cls = client_class(group.client)
        members: List[_BaseClient] = []
        for index, home in enumerate(group.homes(n)):
            cpid = topology.place(topology.region_of(home))
            ctx = BuildContext(
                start_at_us=start_at_us,
                stop_at_us=stop_at_us,
                rng=rng,
                label=f"{group.name}/{index}",
            )
            client = cls.from_group(cpid, sim, home, group, ctx)
            if spec.fairness:
                client.record_submissions = True
            members.append(client)
            workload.clients.append(client)
            if isinstance(client, MevBotClient):
                workload.mev_bots.append(client)
        workload.by_group[group.name] = members
    return workload


def mev_node_classes(
    spec: WorkloadSpec, protocol: str, n: int
) -> Dict[int, type]:
    """Byzantine node classes implied by colluding MEV-bot groups.

    Under Pompē a colluding bot's home replica becomes a
    :class:`~repro.attacks.pompe_attacks.CherryPickingOrdererNode`, which
    biases the assigned timestamps of the batches it orders (the bot's
    front-runs) downward — protocol-legal for a Byzantine node.  Lyra has
    no cleartext ordering phase to exploit, so no classes are injected.
    """
    if protocol.lower() != "pompe":
        return {}
    classes: Dict[int, type] = {}
    for group in spec.groups:
        if group.client == "mev" and group.collude:
            from repro.attacks.pompe_attacks import CherryPickingOrdererNode

            for home in set(group.homes(n)):
                classes[home] = CherryPickingOrdererNode
    return classes


__all__ = [
    "ClientGroup",
    "WorkloadSpec",
    "Workload",
    "build_workload",
    "mev_node_classes",
]
