"""Transaction generation.

Every transaction is unique by construction (``client_id`` + per-client
nonce), matching §VI-A's "each transaction consists of a unique 32-byte
value".  Bodies can carry synthetic application data (e.g. KV writes or
the market orders the attack scenarios use).
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.core.types import Transaction

#: KV-write body layout: magic ``K`` + 7-byte key + 8-byte value = 16 bytes
#: (exactly the body budget of a 32-byte transaction payload).
_KV = struct.Struct(">c7sQ")


def encode_kv_body(key: int, value: int) -> bytes:
    """Body bytes encoding ``store[key] = value`` (key < 2^56)."""
    if not (0 <= key < 1 << 56):
        raise ValueError("KV keys must fit in 7 bytes")
    return _KV.pack(b"K", key.to_bytes(7, "big"), value & 0xFFFFFFFFFFFFFFFF)


class TxGenerator:
    """A per-client stream of unique transactions."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self._nonce = 0

    def next(self, body: bytes = b"", submitted_at: int = 0) -> Transaction:
        tx = Transaction(self.client_id, self._nonce, body[:16], submitted_at)
        self._nonce += 1
        return tx

    def kv_write(self, key: int, value: int, submitted_at: int = 0) -> Transaction:
        """A transaction encoding ``store[key] = value`` (key < 2^56)."""
        return self.next(encode_kv_body(key, value), submitted_at)

    @property
    def issued(self) -> int:
        return self._nonce


def decode_kv_write(tx: Transaction) -> Optional[Tuple[int, int]]:
    """Inverse of :meth:`TxGenerator.kv_write`; None for non-KV bodies."""
    if len(tx.body) != 16 or not tx.body.startswith(b"K"):
        return None
    _, key_bytes, value = _KV.unpack(tx.body)
    return int.from_bytes(key_bytes, "big"), value


# ----------------------------------------------------------------------
# Body samplers — the WorkloadSpec "body mix" vocabulary
# ----------------------------------------------------------------------
#: Cached bounded-Zipf CDFs keyed by (keyspace, skew); building one is
#: O(keyspace) so hot-key samplers across many clients share it.
_ZIPF_CDFS: dict = {}


def _zipf_cdf(keyspace: int, skew: float):
    import numpy as np

    cached = _ZIPF_CDFS.get((keyspace, skew))
    if cached is None:
        weights = 1.0 / np.arange(1, keyspace + 1, dtype=np.float64) ** skew
        cached = np.cumsum(weights)
        cached /= cached[-1]
        _ZIPF_CDFS[(keyspace, skew)] = cached
    return cached


def make_body_sampler(kind: str, params: Optional[dict], rng):
    """Build a per-arrival body sampler for an open-loop client.

    - ``raw`` — empty bodies (transactions stay unique 32-byte values).
    - ``kv_zipf`` — KV writes whose keys follow a bounded Zipf over
      ``keyspace`` keys with exponent ``skew``: the hot-key contention
      workload (a handful of keys absorb most writes).
    - ``amm`` — constant-product AMM swaps: direction BUY with
      probability ``buy_prob``, amounts uniform in
      [``amount_min``, ``amount_max``] — the traffic MEV bots chase.

    Returns ``None`` for ``raw`` (no sampling, no rng draws) or a
    zero-argument callable yielding body bytes, drawing only from ``rng``.
    """
    params = params or {}
    if kind == "raw":
        return None
    if kind == "kv_zipf":
        import numpy as np

        keyspace = int(params.get("keyspace", 100_000))
        skew = float(params.get("skew", 1.1))
        if keyspace <= 0:
            raise ValueError("keyspace must be positive")
        cdf = _zipf_cdf(keyspace, skew)
        counter = [0]

        def kv_sample() -> bytes:
            key = int(np.searchsorted(cdf, rng.random(), side="left"))
            counter[0] += 1
            return encode_kv_body(key, counter[0])

        return kv_sample
    if kind == "amm":
        from repro.workload.amm import BUY, SELL, encode_swap

        buy_prob = float(params.get("buy_prob", 0.5))
        amount_min = int(params.get("amount_min", 100))
        amount_max = int(params.get("amount_max", 10_000))
        if not (0 < amount_min <= amount_max):
            raise ValueError("need 0 < amount_min <= amount_max")

        def amm_sample() -> bytes:
            direction = BUY if rng.random() < buy_prob else SELL
            amount = int(rng.integers(amount_min, amount_max + 1))
            return encode_swap(direction, amount)

        return amm_sample
    raise ValueError(
        f"unknown body mix {kind!r}; available: raw, kv_zipf, amm"
    )


__all__ = [
    "TxGenerator",
    "decode_kv_write",
    "encode_kv_body",
    "make_body_sampler",
]
