"""Transaction generation.

Every transaction is unique by construction (``client_id`` + per-client
nonce), matching §VI-A's "each transaction consists of a unique 32-byte
value".  Bodies can carry synthetic application data (e.g. KV writes or
the market orders the attack scenarios use).
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.core.types import Transaction

#: KV-write body layout: magic ``K`` + 7-byte key + 8-byte value = 16 bytes
#: (exactly the body budget of a 32-byte transaction payload).
_KV = struct.Struct(">c7sQ")


class TxGenerator:
    """A per-client stream of unique transactions."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self._nonce = 0

    def next(self, body: bytes = b"", submitted_at: int = 0) -> Transaction:
        tx = Transaction(self.client_id, self._nonce, body[:16], submitted_at)
        self._nonce += 1
        return tx

    def kv_write(self, key: int, value: int, submitted_at: int = 0) -> Transaction:
        """A transaction encoding ``store[key] = value`` (key < 2^56)."""
        if not (0 <= key < 1 << 56):
            raise ValueError("KV keys must fit in 7 bytes")
        body = _KV.pack(b"K", key.to_bytes(7, "big"), value)
        return self.next(body, submitted_at)

    @property
    def issued(self) -> int:
        return self._nonce


def decode_kv_write(tx: Transaction) -> Optional[Tuple[int, int]]:
    """Inverse of :meth:`TxGenerator.kv_write`; None for non-KV bodies."""
    if len(tx.body) != 16 or not tx.body.startswith(b"K"):
        return None
    _, key_bytes, value = _KV.unpack(tx.body)
    return int.from_bytes(key_bytes, "big"), value


__all__ = ["TxGenerator", "decode_kv_write"]
