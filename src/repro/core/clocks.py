"""Ordering clocks and perceived sequence numbers (§II-D).

Each process owns a local :class:`OrderingClock` returning strictly
monotonically increasing sequence numbers.  We implement it as the node's
(skewed, possibly drifting) view of real time in microseconds, with a
tie-break increment guaranteeing strict monotonicity — the paper notes a
real-time clock or a counter both qualify.

Clocks are deliberately *not* synchronised (§II-D): each node has a constant
offset (skew) and an optional rate error (drift).  Constant skew cancels out
of the distance estimates ``d_ij = seq_j(t) - s_ref`` (§IV-B1); drift does
not, which the robustness tests exercise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator


class OrderingClock:
    """A strictly monotonic local sequence-number source."""

    def __init__(
        self,
        sim: Simulator,
        *,
        skew_us: int = 0,
        drift: float = 1.0,
    ) -> None:
        if drift <= 0:
            raise ValueError("clock drift factor must be positive")
        self._sim = sim
        self.skew_us = int(skew_us)
        self.drift = float(drift)
        self._last: Optional[int] = None

    def read(self) -> int:
        """Raw clock value (non-mutating; may repeat)."""
        return int(self._sim.now * self.drift) + self.skew_us

    def now(self) -> int:
        """Strictly monotonic sequence number: each call exceeds the last."""
        value = self.read()
        if self._last is not None and value <= self._last:
            value = self._last + 1
        self._last = value
        return value


def true_distance_us(
    observer: OrderingClock, peer: OrderingClock, base_latency_us: float
) -> float:
    """Ground-truth ``d_ij`` for estimator-error accounting.

    With drift-free clocks, ``d_ij = seq_j(t) - s_ref`` decomposes exactly
    into the one-way network latency plus the constant skew difference:

        d_ij = lat(i→j) + skew_j - skew_i

    so the jitter-free ``LatencyModel.base_us`` plus the harness-assigned
    skews IS the value a perfect estimator would learn — the reference the
    distance-error ablation measures against.  Under drift the "true"
    distance is time-varying and this constant is only the t=0 intercept,
    which is why the error metrics are reported for drift-1.0 runs.
    """
    return float(base_latency_us) + (peer.skew_us - observer.skew_us)


class PerceivedSequence:
    """Tracks ``seq_i(t)``: the clock value when a cipher first arrived.

    Definition 3 binds the perceived sequence number to the *first*
    reception; later duplicates must not move it.
    """

    def __init__(self, clock: OrderingClock) -> None:
        self._clock = clock
        self._perceived: Dict[bytes, int] = {}

    def observe(self, cipher_id: bytes) -> int:
        """Record (idempotently) and return ``seq_i`` for this cipher."""
        seq = self._perceived.get(cipher_id)
        if seq is None:
            seq = self._clock.now()
            self._perceived[cipher_id] = seq
        return seq

    def get(self, cipher_id: bytes) -> Optional[int]:
        return self._perceived.get(cipher_id)

    def forget(self, cipher_id: bytes) -> None:
        """Garbage-collect a committed/rejected cipher's record."""
        self._perceived.pop(cipher_id, None)

    def __len__(self) -> int:
        return len(self._perceived)


__all__ = ["OrderingClock", "PerceivedSequence", "true_distance_us"]
