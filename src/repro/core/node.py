"""The Lyra replica: Algorithms 1-4 wired into one node (§V).

A :class:`LyraNode` is a :class:`~repro.sim.process.SimProcess` that

- measures distances ``d_ij`` to its peers during a warm-up phase and keeps
  them fresh from the perceived-sequence piggybacks on VVB votes (§IV-B1);
- batches client transactions (§VI-B) and opens one BOC instance per batch
  (``ordered-propose``, Algorithm 2): VSS-encrypt, predict ``S_t``, request
  the ``(n-f)``-th predicted sequence number, run modified DBFT;
- participates in every peer's instances (validation per Equation 1);
- runs the Commit protocol (Algorithm 4) to derive locked/stable/committed
  prefixes from piggybacked state, outputs the committed log, broadcasts
  decryption shares, and executes transactions once revealed (Lemma 7);
- replies to the submitting client when its transaction executes, which is
  how closed-loop clients measure commit latency (§VI-A).

Every received message is charged CPU time through the node's serialised
core before processing (signature checks dominate), so compute contention
shapes latency exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.batching import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_BATCH_TIMEOUT_US,
    Mempool,
)
from repro.core.clocks import OrderingClock, PerceivedSequence
from repro.core.commit import (
    CommitConfig,
    CommitSnapshot,
    CommitState,
    DSHARE_KIND,
    PB_PULL_KIND,
    STATUS_KIND,
)
from repro.core.dbft import AUX_KIND, BinaryConsensus, COORD_KIND
from repro.core.bv_broadcast import BV_KIND
from repro.core.distance import DistanceEstimator
from repro.core.gossip_distance import (
    DEFAULT_GOSSIP_FANOUT,
    DEFAULT_GOSSIP_ROUNDS,
    GossipDistanceEstimator,
)
from repro.core.obfuscation import make_obfuscation
from repro.core.services import ProtocolServices
from repro.core.types import AcceptedEntry, Batch, InstanceId, Transaction
from repro.core.vvb import (
    DELIVER_KIND,
    FETCH_KIND,
    INIT_KIND,
    VOTE0_KIND,
    VOTE1_KIND,
)
from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS, ReceiveChargePlan
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.net.message import Message
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry

PROBE_KIND = "lyra.probe"
PROBE_ACK_KIND = "lyra.probe_ack"
GDIST_KIND = "lyra.gdist"
GDIST_ACK_KIND = "lyra.gdist_ack"
CLIENT_TX_KIND = "client.tx"
CLIENT_REPLY_KIND = "client.reply"
CATCHUP_REQ_KIND = "lyra.catchup_req"
CATCHUP_RSP_KIND = "lyra.catchup_rsp"

#: Cap on committed-log entries shipped per catch-up response.
CATCHUP_CHUNK = 512

#: Valid values of the ``distance_mode`` knob (``LyraConfig`` and
#: ``ExperimentConfig`` share it; the harness resolves it per node).
DISTANCE_MODES = ("probe", "gossip")

#: The warm-up defaults, defined ONCE.  ``ExperimentConfig`` imports these
#: so direct ``LyraConfig`` users and harness users agree on when the
#: warm-up ends and clients may start (they used to disagree: 150 ms here
#: vs 200 ms in the harness — a real divergence bug, now pinned by a
#: regression test).
DEFAULT_WARMUP_ROUNDS = 4
DEFAULT_WARMUP_SPACING_US = 200 * MILLISECONDS

#: Per-message wire overhead of a gossip distance exchange: reference
#: value, round number, incarnation, vector length.
GDIST_HEADER_BYTES = 16
#: Bytes per (peer, estimate, weight) vector entry.
GDIST_ENTRY_BYTES = 12


def warmup_duration_us(rounds: int, spacing_us: int) -> int:
    """When the distance warm-up is considered done (§IV-B1).

    The single source of truth for the formula: ``rounds`` probe/gossip
    rounds plus two spacings of slack for the last replies to land.  Both
    ``LyraConfig.warmup_duration_us`` and the harness's client start gate
    delegate here.
    """
    return rounds * spacing_us + 2 * spacing_us


@dataclass
class LyraConfig:
    """Per-node protocol configuration."""

    batch_size: int = DEFAULT_BATCH_SIZE
    batch_timeout_us: int = DEFAULT_BATCH_TIMEOUT_US
    #: Commit-protocol tunables (λ, acceptance window, dealing checks).
    commit: CommitConfig = field(default_factory=CommitConfig)
    #: Heartbeat period for STATUS broadcasts (commit progress when idle).
    status_interval_us: int = 25 * MILLISECONDS
    #: Warm-up probing: rounds and spacing (§IV-B1).
    warmup_rounds: int = DEFAULT_WARMUP_ROUNDS
    warmup_spacing_us: int = DEFAULT_WARMUP_SPACING_US
    #: Background distance re-probing period (0 disables); keeps the
    #: ``d_ij`` estimates fresh after GST even if warm-up was adversarial.
    probe_refresh_us: int = 1_000 * MILLISECONDS
    #: Distance learning: ``"probe"`` (§IV-B1 all-to-all warm-up, the
    #: default) or ``"gossip"`` (epidemic constant-fan-out estimation,
    #: ``repro.core.gossip_distance``).
    distance_mode: str = "probe"
    #: Peers contacted per gossip round (gossip mode only).
    gossip_fanout: int = DEFAULT_GOSSIP_FANOUT
    #: Scheduled warm-up gossip rounds (gossip mode only).
    gossip_rounds: int = DEFAULT_GOSSIP_ROUNDS
    #: Spacing between gossip rounds.  Shorter than the probe spacing:
    #: each round is fanout point-to-point exchanges, not a broadcast, so
    #: several rounds must fit inside the same warm-up window.
    gossip_spacing_us: int = 50 * MILLISECONDS
    #: Seed of the deterministic gossip peer selection (the harness passes
    #: the experiment seed so all nodes agree and runs stay reproducible).
    gossip_seed: int = 0
    #: ``"vss"`` (§II-B) or ``"hash"`` (the prototype's scheme, §VI-A).
    obfuscation: str = "vss"
    #: Crypto cost model.
    costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)
    #: Clock skew of this node in µs (assigned by the harness).
    clock_skew_us: int = 0
    clock_drift: float = 1.0

    def warmup_duration_us(self) -> int:
        return warmup_duration_us(self.warmup_rounds, self.warmup_spacing_us)


@dataclass
class NodeStats:
    """Counters the harness scrapes after a run."""

    batches_proposed: int = 0
    batches_committed_own: int = 0
    txs_executed: int = 0
    replayed_txs_dropped: int = 0
    own_batch_latencies_us: List[int] = field(default_factory=list)
    instances_joined: int = 0
    #: Delta-piggyback recovery: pull signals we sent (a peer's marker
    #: referenced a full report we never saw) and pulls we answered.
    pb_pulls_sent: int = 0
    pb_pulls_served: int = 0


class LyraNode(SimProcess):
    """One Lyra replica."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        *,
        n: int,
        f: int,
        registry: KeyRegistry,
        threshold: ThresholdScheme,
        obfuscation: Any,
        config: Optional[LyraConfig] = None,
        rng: Optional[RngRegistry] = None,
        cpu_speed: float = 1.0,
    ) -> None:
        super().__init__(pid, sim, cpu_speed=cpu_speed)
        self.n = n
        self.f = f
        self.registry = registry
        self.threshold_scheme = threshold
        self.obf = obfuscation
        self.config = config or LyraConfig()
        self.rng = (rng or RngRegistry(0)).get("node", str(pid))
        self.costs = self.config.costs
        # Batched charging for coalesced frames: one summed acquire.
        self._charge_plan = ReceiveChargePlan(self._RECEIVE_COSTS, self._receive_cost)

        self.clock = OrderingClock(
            sim,
            skew_us=self.config.clock_skew_us,
            drift=self.config.clock_drift,
        )
        self.perceived = PerceivedSequence(self.clock)
        if self.config.distance_mode not in DISTANCE_MODES:
            raise ValueError(
                f"unknown distance_mode {self.config.distance_mode!r}; "
                f"expected one of {DISTANCE_MODES}"
            )
        if self.config.distance_mode == "gossip":
            self.estimator: DistanceEstimator = GossipDistanceEstimator(
                n,
                pid,
                fanout=self.config.gossip_fanout,
                seed=self.config.gossip_seed,
            )
        else:
            self.estimator = DistanceEstimator(n, pid)
        #: Monotonic gossip round counter (never reused, so the seeded
        #: peer selection never repeats a round's peer set).
        self._gossip_round = 0
        self.mempool = Mempool(self.config.batch_size)
        self.stats = NodeStats()

        # Built at attach() time (needs the network's Δ).
        self.services: Optional[ProtocolServices] = None
        self.commit: Optional[CommitState] = None

        self._instances: Dict[InstanceId, BinaryConsensus] = {}
        self._batch_counter = 0
        self._s_ref: Dict[InstanceId, int] = {}
        self._proposed_at: Dict[InstanceId, int] = {}
        self._own_batches: Dict[InstanceId, List[Transaction]] = {}
        self._awaiting_message: Set[InstanceId] = set()
        self._preds: Dict[InstanceId, Tuple[int, ...]] = {}
        self._tx_origin: Dict[Tuple[int, int], int] = {}
        self._executed_tx_keys: Set[Tuple[int, int]] = set()
        # Instances fully resolved at this node (revealed or rejected):
        # their state can be garbage-collected after a linger, and late
        # messages for them are ignored.
        self._finished: Set[InstanceId] = set()
        # Subclasses overriding ``_dispatch_instance`` (attack nodes) must
        # see every instance message; the base class takes a direct route.
        self._dispatch_is_default = (
            type(self)._dispatch_instance is LyraNode._dispatch_instance
        )
        self._started = False
        # Crash recovery: the durable snapshot taken at crash time, and the
        # catch-up vote state ({log position -> {entry -> sender set}}).
        self._durable_snapshot: Optional[CommitSnapshot] = None
        self._catchup_votes: Dict[int, Dict[AcceptedEntry, Set[int]]] = {}
        self._catchup_material: Dict[Tuple[int, AcceptedEntry], Tuple[Any, Optional[bytes]]] = {}
        self._catchup_pt_votes: Dict[Tuple[int, AcceptedEntry, bytes], Set[int]] = {}
        self._catchup_totals: Dict[int, int] = {}
        self.recoveries = 0
        #: Optional hook: called as (entry, Batch) for every executed batch.
        self.on_executed: Optional[Callable[[AcceptedEntry, Batch], None]] = None
        #: Optional protocol tracer: (kind, iid, **detail) -> None
        #: (see repro.metrics.tracelog.install_lyra_tracing).
        self.tracer: Optional[Callable] = None
        # Metrics (see ``enable_metrics``): one bool guard on the hot
        # paths; phase timestamps only accumulate when enabled.
        self._metrics_on = False
        self._decided_at: Dict[InstanceId, int] = {}
        self._committed_at: Dict[InstanceId, int] = {}

    def _trace(self, kind: str, iid: Optional[InstanceId] = None, **detail) -> None:
        if self.tracer is not None:
            self.tracer(kind, iid, **detail)

    def enable_metrics(self, registry) -> None:
        """Emit into a :class:`~repro.metrics.registry.MetricsRegistry`.

        Creates push handles for the paper's phase decomposition — BOC
        decision time at the proposer, Commit-protocol lag and reveal
        time at every replica — plus accept/reject and commit-wave
        counters, and registers ``NodeStats`` (and commit-state depth)
        as a scrape source.  Call before ``start()``.  Never schedules
        events or draws randomness, so runs stay bit-identical.
        """
        pid = self.pid
        self._metrics_on = True
        self._m_decide_us = registry.histogram("boc", "decide_us", pid)
        self._m_commit_lag_us = registry.histogram("commit", "lag_us", pid)
        self._m_reveal_us = registry.histogram("reveal", "exec_us", pid)
        self._m_e2e_us = registry.histogram("commit", "e2e_us", pid)
        self._m_accepted = registry.counter("boc", "decided_accept", pid)
        self._m_rejected = registry.counter("boc", "decided_reject", pid)
        self._m_waves = registry.counter("commit", "waves", pid)
        self._m_dshares = registry.counter("reveal", "dshare_batches", pid)
        registry.add_source("node", self._metrics_source, pid)
        registry.add_source("distance", self._distance_metrics_source, pid)

    def _distance_metrics_source(self) -> Dict[str, float]:
        """Distance-estimation health: coverage, gossip convergence, and
        the λ-validation failure count (Equation-1 rejections are exactly
        the failures estimator error causes downstream)."""
        est = self.estimator
        out: Dict[str, float] = {
            "coverage": est.coverage(),
            "peers_measured": float(est.peers_measured()),
        }
        if isinstance(est, GossipDistanceEstimator):
            out.update(est.gossip_stats())
        if self.commit is not None:
            out["lambda_rejects"] = float(self.commit.lambda_rejects)
        return out

    def _metrics_source(self) -> Dict[str, float]:
        """Scraped at registry snapshot time, never on the hot path."""
        stats = self.stats
        out: Dict[str, float] = {
            "batches_proposed": stats.batches_proposed,
            "batches_committed_own": stats.batches_committed_own,
            "txs_executed": stats.txs_executed,
            "replayed_txs_dropped": stats.replayed_txs_dropped,
            "instances_joined": stats.instances_joined,
            "pb_pulls_sent": stats.pb_pulls_sent,
            "pb_pulls_served": stats.pb_pulls_served,
            "messages_received": self.messages_received,
            "recoveries": self.recoveries,
            "incarnation": self.incarnation,
        }
        if self.commit is not None:
            out["committed_log_len"] = len(self.commit.output_log)
            out["accepted_instances"] = self.commit.accepted_count
            out["rejected_instances"] = self.commit.rejected_count
        return out

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network) -> None:
        super().attach(network)
        self.services = ProtocolServices(
            pid=self.pid,
            n=self.n,
            f=self.f,
            sim=self.sim,
            delta_us=network.delta_us,
            signer=self.registry.signer(self.pid),
            registry=self.registry,
            threshold=self.threshold_scheme,
            costs=self.costs,
            send_fn=self._proto_send,
            broadcast_fn=self._proto_broadcast,
            timers=self.timers,
        )
        self.commit = CommitState(
            self.services,
            self.clock,
            self.perceived,
            self.obf,
            self.config.commit,
            on_commit=self._on_commit_wave,
            on_execute=self._on_execute,
        )

    def start(self) -> None:
        """Begin warm-up probing, heartbeats and the batch-flush timer."""
        if self._started:
            return
        self._started = True
        if self.config.distance_mode == "gossip":
            self._schedule_gossip_rounds(self.config.gossip_rounds)
        else:
            for round_no in range(self.config.warmup_rounds):
                self.sim.schedule(
                    round_no * self.config.warmup_spacing_us
                    + int(self.rng.integers(0, 5_000)),
                    self._send_probe,
                )
        self.timers.set(
            "status", self.config.status_interval_us, self._status_tick
        )
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._batch_flush_tick
        )
        if self.config.probe_refresh_us > 0:
            self.timers.set(
                "probe-refresh", self.config.probe_refresh_us, self._probe_refresh
            )

    def _probe_refresh(self) -> None:
        # Distances drift (and pre-GST measurements may be adversarially
        # biased): keep refreshing them in the background.  In gossip mode
        # the refresh is one extra gossip round — still O(fanout) egress.
        if self.config.distance_mode == "gossip":
            self._gossip_tick()
        else:
            self._send_probe()
        self.timers.set(
            "probe-refresh", self.config.probe_refresh_us, self._probe_refresh
        )

    # ------------------------------------------------------------------
    # Outgoing message wrappers
    # ------------------------------------------------------------------
    def _proto_send(self, dst: int, message: Message) -> None:
        self.send(dst, message)

    def _proto_broadcast(self, message: Message) -> None:
        """Algorithm 4, lines 74-78: piggyback commit state on broadcasts."""
        commit = self.commit
        if commit is not None:
            self._attach_piggyback(message, commit)
        self._charge_send_cost(message)
        self.broadcast(message)

    def _attach_piggyback(self, message: Message, commit: CommitState) -> None:
        """Attach this broadcast's commit-state report.

        Attack hook: forgery subclasses (``repro.attacks.corpus``) override
        this one method to ship stale/inflated/forged-marker reports
        without forking the broadcast path itself.
        """
        if commit.config.delta_piggyback:
            pbd = commit.piggyback_delta()
            message.payload["pbd"] = pbd
            message.size += commit.piggyback_delta_size(pbd)
        else:
            message.payload["pb"] = commit.piggyback()
            message.size += commit.piggyback_size()

    def _charge_send_cost(self, message: Message) -> None:
        kind = message.kind
        if kind == INIT_KIND:
            # Encryption + signing charged at propose time; forwarding free.
            return
        if kind == VOTE1_KIND:
            self.charge(self.costs.share_sign_us)
        elif kind == DELIVER_KIND:
            self.charge(self.costs.combine_us(2 * self.f + 1))
        elif kind == DSHARE_KIND:
            items = message.payload.get("items", ())
            self.charge(self.costs.vss_partial_decrypt_us * max(1, len(items)))

    # ------------------------------------------------------------------
    # Incoming messages: CPU queueing then dispatch
    # ------------------------------------------------------------------
    _RECEIVE_COSTS = {
        VOTE0_KIND: 2,
        BV_KIND: 2,
        COORD_KIND: 2,
        AUX_KIND: 2,
        STATUS_KIND: 3,
        FETCH_KIND: 1,
        PROBE_KIND: 1,
        PROBE_ACK_KIND: 1,
        GDIST_KIND: 2,
        GDIST_ACK_KIND: 2,
        CLIENT_TX_KIND: 2,
        PB_PULL_KIND: 1,
    }

    #: Consensus-instance message kinds mapped straight to their (unbound)
    #: handler — one dict probe replaces an eight-way string-compare chain
    #: on the single hottest dispatch in the simulator.
    _INSTANCE_HANDLERS = {
        INIT_KIND: BinaryConsensus.on_init,
        VOTE1_KIND: BinaryConsensus.on_vote1,
        VOTE0_KIND: BinaryConsensus.on_vote0,
        DELIVER_KIND: BinaryConsensus.on_deliver,
        FETCH_KIND: BinaryConsensus.on_fetch,
        BV_KIND: BinaryConsensus.on_bv,
        COORD_KIND: BinaryConsensus.on_coord,
        AUX_KIND: BinaryConsensus.on_aux,
    }

    def _receive_cost(self, message: Message) -> int:
        kind = message.kind
        cost = self._RECEIVE_COSTS.get(kind)
        if cost is not None:
            return cost
        if kind == INIT_KIND:
            cost = self.costs.verify_us + self.costs.hash_us(message.size)
            if self.config.commit.check_dealing:
                cost += self.costs.vss_check_dealing_us
            return cost
        if kind == VOTE1_KIND:
            return self.costs.share_verify_us
        if kind == DELIVER_KIND:
            return self.costs.threshold_verify_us
        if kind == DSHARE_KIND:
            return 2 * max(1, len(message.payload.get("items", ())))
        if kind == CATCHUP_REQ_KIND:
            return 2
        if kind == CATCHUP_RSP_KIND:
            return 2 * max(1, len(message.payload.get("items", ())))
        return 2

    def deliver(self, message: Message, sender: int) -> None:
        if self.crashed:
            return
        self.messages_received += 1
        cost = self._RECEIVE_COSTS.get(message.kind)
        if cost is None:
            cost = self._receive_cost(message)
        now = self.sim._now
        cpu = self.cpu
        if cpu._speed == 1.0:
            # ``CpuModel.acquire`` unrolled for the unit-speed common case
            # — this runs once per delivered message.
            free = cpu._free_at
            start = now if now > free else free
            done_at = start + cost
            cpu._free_at = done_at
            cpu.busy_time += cost
        else:
            done_at = cpu.acquire(cost)
        if done_at <= now:
            self._process(message, sender)
        else:
            # ``partial`` over a bound method beats a closure here: no cell
            # allocation, and the epoch guard lives in one shared function.
            # ``schedule_light``: the completion is never cancelled, so the
            # arena backend may skip the Event record.
            self.sim.schedule_light(
                done_at - now,
                partial(self._process_deferred, message, sender, self.incarnation),
            )

    def _process_deferred(self, message: Message, sender: int, epoch: int) -> None:
        # A crash between acquire and completion loses the work; it must
        # not leak into a recovered incarnation either.
        if self.crashed or self.incarnation != epoch:
            return
        self._process(message, sender)

    def deliver_batch(self, messages: List[Message], sender: int) -> None:
        """Deliver all messages of one coalesced frame: one CPU acquire and
        one deferred event cover the whole batch, preserving the serialised
        total cost of delivering them back to back."""
        if self.crashed:
            return
        self.messages_received += len(messages)
        cost = self._charge_plan.total_us(messages)
        now = self.sim._now
        cpu = self.cpu
        if cpu._speed == 1.0:
            free = cpu._free_at
            start = now if now > free else free
            done_at = start + cost
            cpu._free_at = done_at
            cpu.busy_time += cost
        else:
            done_at = cpu.acquire(cost)
        if done_at <= now:
            for message in messages:
                self._process(message, sender)
        else:
            self.sim.schedule_light(
                done_at - now,
                partial(
                    self._process_batch_deferred, messages, sender, self.incarnation
                ),
            )

    def _process_batch_deferred(
        self, messages: List[Message], sender: int, epoch: int
    ) -> None:
        if self.crashed or self.incarnation != epoch:
            return
        for message in messages:
            self._process(message, sender)

    def _process(self, message: Message, sender: int) -> None:
        if self.crashed:
            return
        payload = message.payload if isinstance(message.payload, dict) else {}
        pb = payload.get("pb")
        if pb is not None and self.commit is not None:
            self.commit.on_status(
                sender, pb.get("locked", 0), pb.get("minp", 0), pb.get("acc", ())
            )
        elif "pbd" in payload and self.commit is not None:
            if self.commit.on_status_delta(sender, payload["pbd"]):
                self.stats.pb_pulls_sent += 1
                self.send(sender, Message(PB_PULL_KIND, {}, 48))
        kind = message.kind
        handler = self._INSTANCE_HANDLERS.get(kind)
        if handler is not None:
            if self._dispatch_is_default:
                iid = payload.get("iid")
                if isinstance(iid, InstanceId) and iid not in self._finished:
                    handler(self._instance(iid), payload, sender)
            else:
                # Subclasses (attack nodes) hook instance dispatch.
                self._dispatch_instance(kind, payload, sender)
            return
        if kind == STATUS_KIND:
            return  # piggyback already consumed
        if kind == PROBE_KIND:
            self._on_probe(payload, sender)
        elif kind == PROBE_ACK_KIND:
            self._on_probe_ack(payload, sender)
        elif kind == GDIST_KIND:
            self._on_gdist(payload, sender)
        elif kind == GDIST_ACK_KIND:
            self._on_gdist_ack(payload, sender)
        elif kind == CLIENT_TX_KIND:
            self._on_client_tx(payload, sender)
        elif kind == DSHARE_KIND:
            self._on_dshare(payload, sender)
        elif kind == CATCHUP_REQ_KIND:
            self._on_catchup_req(payload, sender)
        elif kind == CATCHUP_RSP_KIND:
            self._on_catchup_rsp(payload, sender)
        elif kind == PB_PULL_KIND:
            self._on_pb_pull(sender)

    def _on_pb_pull(self, sender: int) -> None:
        """A peer missed our last full piggyback report and asks for one.

        Attack hook: a lying responder (``repro.attacks.corpus``) ignores
        the pull; the protocol tolerates that because the peer's cached
        report only degrades in freshness, never in safety.
        """
        if self.commit is not None:
            self.stats.pb_pulls_served += 1
            self.commit.force_full_piggyback()

    # ------------------------------------------------------------------
    # Warm-up distance probing (§IV-B1)
    # ------------------------------------------------------------------
    def _send_probe(self) -> None:
        ref = self.clock.now()
        self.services.broadcast(PROBE_KIND, {"ref": ref}, 8)

    def _on_probe(self, payload: dict, sender: int) -> None:
        ref = payload.get("ref")
        if isinstance(ref, int):
            self.send(
                sender,
                Message(PROBE_ACK_KIND, {"ref": ref, "seq": self.clock.now()}, 56),
            )

    def _on_probe_ack(self, payload: dict, sender: int) -> None:
        ref, seq = payload.get("ref"), payload.get("seq")
        if isinstance(ref, int) and isinstance(seq, int):
            self.estimator.record(sender, ref, seq)

    # ------------------------------------------------------------------
    # Epidemic distance estimation (``distance_mode="gossip"``)
    # ------------------------------------------------------------------
    def _schedule_gossip_rounds(self, rounds: int) -> None:
        """Schedule a burst of gossip rounds (warm-up, or post-recovery
        re-estimation).  Each tick reads and advances the monotonic round
        counter at fire time, so bursts never reuse a round number."""
        spacing = self.config.gossip_spacing_us
        for i in range(rounds):
            self.sim.schedule(
                i * spacing + int(self.rng.integers(0, 5_000)),
                self._gossip_tick,
            )

    def _gossip_vector_message(self, kind: str, extra: dict) -> Message:
        # A probe-mode node can still be asked (mixed fleets in tests):
        # it answers with the clock sample and an empty vector.
        vec = (
            self.estimator.summary()
            if isinstance(self.estimator, GossipDistanceEstimator)
            else ()
        )
        payload = {
            "round": self._gossip_round,
            "inc": self.incarnation,
            "vec": vec,
        }
        payload.update(extra)
        return Message(
            kind, payload, GDIST_HEADER_BYTES + GDIST_ENTRY_BYTES * len(vec)
        )

    def _gossip_tick(self) -> None:
        """One epidemic round: exchange summaries with ``fanout`` peers.

        Unlike ``_send_probe`` this is NOT a broadcast — egress is capped
        at ``gossip_fanout`` point-to-point requests, the O(n·fanout)
        per-round bound the wire-stats assertion pins.
        """
        if self.crashed or not isinstance(self.estimator, GossipDistanceEstimator):
            return
        round_no = self._gossip_round
        self._gossip_round += 1
        peers = self.estimator.begin_round(round_no, self.incarnation)
        if not peers:
            return
        message = self._gossip_vector_message(
            GDIST_KIND, {"ref": self.clock.now()}
        )
        for peer in peers:
            self.send(peer, message)

    def _on_gdist(self, payload: dict, sender: int) -> None:
        """A peer's gossip request: fold its vector in, answer with our
        clock reading (the direct ``d_ij`` sample for the requester) and
        our own vector (the pull half of push-pull averaging)."""
        ref = payload.get("ref")
        if not isinstance(ref, int):
            return
        inc = payload.get("inc", 0)
        if isinstance(self.estimator, GossipDistanceEstimator):
            self.estimator.merge(sender, payload.get("vec", ()), inc)
        self.send(
            sender,
            self._gossip_vector_message(
                GDIST_ACK_KIND, {"ref": ref, "seq": self.clock.now()}
            ),
        )

    def _on_gdist_ack(self, payload: dict, sender: int) -> None:
        ref, seq = payload.get("ref"), payload.get("seq")
        if isinstance(ref, int) and isinstance(seq, int):
            # Same direct sample a probe ack would have produced.
            self.estimator.record(sender, ref, seq)
        if isinstance(self.estimator, GossipDistanceEstimator):
            self.estimator.merge(
                sender, payload.get("vec", ()), payload.get("inc", 0)
            )

    # ------------------------------------------------------------------
    # Client path and batching
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction, client_pid: Optional[int] = None) -> None:
        """Accept a transaction for ordering (local API; clients use
        ``client.tx`` messages)."""
        if client_pid is not None:
            self._tx_origin[tx.key()] = client_pid
        if self.mempool.add(tx):
            self._maybe_propose()

    def _on_client_tx(self, payload: dict, sender: int) -> None:
        tx = payload.get("tx")
        if isinstance(tx, Transaction):
            self.submit(tx, client_pid=sender)

    def _batch_flush_tick(self) -> None:
        if len(self.mempool) > 0:
            self._propose_batch(self.mempool.take_batch())
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._batch_flush_tick
        )

    def _maybe_propose(self) -> None:
        while self.mempool.full:
            self._propose_batch(self.mempool.take_batch())

    # ------------------------------------------------------------------
    # ordered-propose (Algorithm 2)
    # ------------------------------------------------------------------
    def _propose_batch(self, txs: List[Transaction]) -> None:
        if not txs:
            return
        iid = InstanceId(self.pid, self._batch_counter)
        self._batch_counter += 1
        batch = Batch(self.pid, iid.batch_no, tuple(txs))
        plaintext = batch.serialize()
        # Line 29: obfuscate t.  Charge encryption + hashing to our CPU.
        self.charge(
            self.costs.vss_encrypt_us(self.n)
            + self.costs.hash_us(len(plaintext))
            + self.costs.sign_us
        )
        cipher = self.obf.encrypt(plaintext, self.rng, self.pid)
        # Lines 26-28: reference sequence number and predictions.
        s_ref = self.clock.now()
        self._s_ref[iid] = s_ref
        preds = self.estimator.predict(s_ref)
        self._proposed_at[iid] = self.sim.now
        self._own_batches[iid] = list(txs)
        self.stats.batches_proposed += 1
        self._trace("proposed", iid, txs=len(txs), s_ref=s_ref)
        instance = self._instance(iid)
        instance.propose(cipher, preds)

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def _instance(self, iid: InstanceId) -> BinaryConsensus:
        instance = self._instances.get(iid)
        if instance is None:
            self.stats.instances_joined += 1
            instance = BinaryConsensus(
                self.services,
                iid,
                validate=lambda cipher, preds, iid=iid: self.commit.validate(
                    iid, cipher, preds
                ),
                on_decide=lambda v, m, iid=iid: self._on_decide(iid, v, m),
                perceive=lambda cipher: self.perceived.observe(cipher.cipher_id),
                on_vote_seq=lambda sender, seq, iid=iid: self._on_vote_seq(
                    iid, sender, seq
                ),
                on_message=lambda m, iid=iid: self._on_instance_message(iid, m),
            )
            self._instances[iid] = instance
        return instance

    def _gc_instance(self, iid: InstanceId) -> None:
        """Drop a finished instance's state (memory hygiene for long runs;
        the linger before this is called keeps FETCH/recovery served)."""
        self._finished.add(iid)
        instance = self._instances.pop(iid, None)
        if instance is not None:
            instance.close()
        self._s_ref.pop(iid, None)
        self._proposed_at.pop(iid, None)
        self._preds.pop(iid, None)
        self._decided_at.pop(iid, None)
        self._committed_at.pop(iid, None)

    def _schedule_gc(self, iid: InstanceId) -> None:
        linger = 10 * self.services.delta_us
        self.sim.schedule(linger, lambda: self._gc_instance(iid))

    def _dispatch_instance(self, kind: str, payload: dict, sender: int) -> None:
        iid = payload.get("iid")
        if not isinstance(iid, InstanceId):
            return
        if iid in self._finished:
            return  # resolved and garbage-collected; late traffic
        handler = self._INSTANCE_HANDLERS.get(kind)
        if handler is not None:
            handler(self._instance(iid), payload, sender)

    def _on_vote_seq(self, iid: InstanceId, sender: int, seq_j: int) -> None:
        """Distance refresh: we are the broadcaster and ``sender`` told us
        its perceived sequence number for our transaction (§VI-B)."""
        s_ref = self._s_ref.get(iid)
        if s_ref is not None:
            self.estimator.record(sender, s_ref, seq_j)

    def _on_instance_message(self, iid: InstanceId, m: Tuple[Any, Tuple[int, ...]]) -> None:
        cipher, preds = m
        self._preds[iid] = preds
        self.commit.learn_cipher(iid, cipher)
        if iid in self._awaiting_message:
            self._awaiting_message.discard(iid)
            self.commit.on_accept(iid, cipher, preds)

    def _on_decide(
        self, iid: InstanceId, v: int, m: Optional[Tuple[Any, Tuple[int, ...]]]
    ) -> None:
        self._trace("decided", iid, value=v)
        if self._metrics_on:
            (self._m_accepted if v == 1 else self._m_rejected).inc()
            self._decided_at[iid] = self.sim.now
            proposed = self._proposed_at.get(iid)
            if proposed is not None:
                self._m_decide_us.observe(self.sim.now - proposed)
        if v == 1:
            self._own_batches.pop(iid, None)
            if m is None:
                self._awaiting_message.add(iid)
            else:
                self._preds[iid] = m[1]
                self.commit.on_accept(iid, m[0], m[1])
        else:
            self.commit.on_reject(iid)
            # SMR-Liveness: re-input our own rejected transactions; by the
            # time they are re-proposed the distance estimates will have
            # been refreshed by probe/vote piggybacks.
            txs = self._own_batches.pop(iid, None)
            if txs is not None:
                self.mempool.requeue(txs)
            self._schedule_gc(iid)

    # ------------------------------------------------------------------
    # Commit-reveal (Algorithm 4 lines 89-95)
    # ------------------------------------------------------------------
    def _on_commit_wave(self, wave: List[AcceptedEntry]) -> None:
        if self._metrics_on:
            self._m_waves.inc()
            now = self.sim.now
            for entry in wave:
                self._committed_at[entry.instance] = now
                decided = self._decided_at.get(entry.instance)
                if decided is not None:
                    self._m_commit_lag_us.observe(now - decided)
        for entry in wave:
            self._trace("committed", entry.instance, seq=entry.seq)
            if entry.instance.proposer == self.pid:
                self.stats.batches_committed_own += 1
                proposed = self._proposed_at.get(entry.instance)
                if proposed is not None:
                    self.stats.own_batch_latencies_us.append(self.sim.now - proposed)
        items = self.commit.decryption_shares_for(wave)
        if items:
            if self._metrics_on:
                self._m_dshares.inc()
            self._broadcast_decryption_shares(items)

    def _broadcast_decryption_shares(
        self, items: List[Tuple[InstanceId, Any]]
    ) -> None:
        """Commit-reveal, Lemma 7: publish our decryption shares.

        Attack hook: selective-reveal subclasses withhold, delay, or
        per-victim target this broadcast without touching the commit rule.
        """
        self.services.broadcast(
            DSHARE_KIND,
            {"items": tuple(items)},
            sum(s.wire_size() for _, s in items),
        )

    def _on_dshare(self, payload: dict, sender: int) -> None:
        for item in payload.get("items", ()):
            try:
                iid, share = item
            except (TypeError, ValueError):
                continue
            if isinstance(iid, InstanceId):
                self.commit.on_decryption_share(iid, share, sender)

    def _on_execute(self, entry: AcceptedEntry, plaintext: bytes) -> None:
        try:
            batch = Batch.deserialize(
                entry.instance.proposer, entry.instance.batch_no, plaintext
            )
        except ValueError:
            return  # a Byzantine proposer encrypted garbage
        # First-commit-wins execution dedup: a Byzantine replica can copy a
        # victim's opaque cipher into its own instance (cipher replay), but
        # since the payload still carries the victim's identity, the copy
        # merely executes the victim's intent once — re-executions are
        # dropped here, so replays gain the attacker nothing (§VI-D).
        fresh = tuple(
            tx for tx in batch.txs if tx.key() not in self._executed_tx_keys
        )
        self._executed_tx_keys.update(tx.key() for tx in fresh)
        if len(fresh) != len(batch.txs):
            self.stats.replayed_txs_dropped += len(batch.txs) - len(fresh)
        batch = Batch(batch.proposer, batch.batch_no, fresh)
        self._trace("executed", entry.instance, txs=len(batch), seq=entry.seq)
        if self._metrics_on:
            now = self.sim.now
            committed = self._committed_at.pop(entry.instance, None)
            if committed is not None:
                self._m_reveal_us.observe(now - committed)
            proposed = self._proposed_at.get(entry.instance)
            if proposed is not None:
                self._m_e2e_us.observe(now - proposed)
        self._schedule_gc(entry.instance)
        self.stats.txs_executed += len(batch)
        for tx in batch.txs:
            client = self._tx_origin.pop(tx.key(), None)
            if client is not None:
                self.send(
                    client,
                    Message(
                        CLIENT_REPLY_KIND,
                        {"key": tx.key(), "seq": entry.seq},
                        24,
                    ),
                )
        self.mempool.drop_committed(batch.txs)
        if self.on_executed is not None:
            self.on_executed(entry, batch)

    # ------------------------------------------------------------------
    # Crash–recovery with state transfer
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop.  The committed log (and its reveal material) is
        modelled as fsynced before every output, so it survives; all other
        protocol state is volatile and dies with the process."""
        if self.commit is not None:
            self._durable_snapshot = self.commit.snapshot()
        super().crash()

    def recover(self) -> None:
        """Come back as a fresh incarnation: restore the durable snapshot,
        wipe volatile state, and re-derive the committed prefix from peers
        before resuming normal commit processing."""
        if not self.crashed:
            return
        super().recover()
        self.recoveries += 1
        # Volatile protocol state is gone.
        for instance in self._instances.values():
            instance.close()
        self._instances.clear()
        self._awaiting_message.clear()
        self._s_ref.clear()
        self._proposed_at.clear()
        self._decided_at.clear()
        self._committed_at.clear()
        self._preds.clear()
        self._own_batches.clear()
        self._tx_origin.clear()
        self.mempool = Mempool(self.config.batch_size)
        # The perceived-sequence cache is volatile too.  Keeping it would
        # let retransmitted pre-crash INITs replay with their old (cached)
        # observation times, pass Equation 1, and wedge ``min_pending`` on
        # instances the rest of the cluster finished long ago.
        self.perceived = PerceivedSequence(self.clock)
        if self.commit is None:
            return
        self.commit.perceived = self.perceived
        if self._durable_snapshot is not None:
            self.commit.restore(self._durable_snapshot)
        self._trace("recovered", None, log_len=len(self.commit.output_log))
        # Re-arm the periodic machinery the crash cancelled.
        self.timers.set(
            "status", self.config.status_interval_us, self._status_tick
        )
        self.timers.set(
            "batch-flush", self.config.batch_timeout_us, self._batch_flush_tick
        )
        if self.config.probe_refresh_us > 0:
            self.timers.set(
                "probe-refresh", self.config.probe_refresh_us, self._probe_refresh
            )
        # Distance estimates are stale: probe mode re-broadcasts once;
        # gossip mode schedules a full re-estimation burst (peers that see
        # our bumped incarnation drop their stale entries for us too).
        if self.config.distance_mode == "gossip":
            self._schedule_gossip_rounds(self.config.gossip_rounds)
        else:
            self._send_probe()
        # State transfer: suspend the commit rule and pull the committed
        # prefix from peers until a quorum confirms we have caught up.
        self._catchup_votes.clear()
        self._catchup_material.clear()
        self._catchup_pt_votes.clear()
        self._catchup_totals.clear()
        self.commit.begin_catchup()
        self._request_catchup()

    def _request_catchup(self) -> None:
        if self.commit is None or not self.commit.catching_up:
            return
        self.services.broadcast(
            CATCHUP_REQ_KIND, {"have": len(self.commit.output_log)}, 16
        )
        # Keep asking until done: requests or responses may be lost.
        self.timers.set(
            "catchup-retry", 2 * self.config.status_interval_us, self._request_catchup
        )

    def _on_catchup_req(self, payload: dict, sender: int) -> None:
        have = payload.get("have")
        if not isinstance(have, int) or have < 0 or self.commit is None:
            return
        total, items = self.commit.catchup_items(have, CATCHUP_CHUNK)
        self.send(
            sender,
            Message(
                CATCHUP_RSP_KIND,
                {"total": total, "have": have, "items": items},
            ),
        )

    def _on_catchup_rsp(self, payload: dict, sender: int) -> None:
        if self.commit is None or not self.commit.catching_up:
            return
        total = payload.get("total")
        base = payload.get("have")
        items = payload.get("items", ())
        if not isinstance(total, int) or not isinstance(base, int):
            return
        self._catchup_totals[sender] = total
        for offset, item in enumerate(items):
            try:
                entry, cipher, plaintext = item
            except (TypeError, ValueError):
                continue
            if not isinstance(entry, AcceptedEntry):
                continue
            pos = base + offset
            if pos < len(self.commit.output_log):
                continue  # already adopted (or durably ours)
            self._catchup_votes.setdefault(pos, {}).setdefault(entry, set()).add(sender)
            if cipher is not None and (pos, entry) not in self._catchup_material:
                self._catchup_material[(pos, entry)] = (cipher, None)
            if plaintext is not None:
                self._catchup_pt_votes.setdefault(
                    (pos, entry, plaintext), set()
                ).add(sender)
        self._drain_catchup()

    def _drain_catchup(self) -> None:
        """Adopt quorum-confirmed log entries in order, then check whether
        a quorum says we have the whole log."""
        quorum = self.f + 1
        adopted = True
        while adopted:
            adopted = False
            pos = len(self.commit.output_log)
            candidates = self._catchup_votes.get(pos)
            if not candidates:
                break
            for entry, senders in candidates.items():
                if len(senders) < quorum:
                    continue
                # f+1 distinct replicas vouch for this entry at this
                # position, so at least one correct one does.
                cipher, _ = self._catchup_material.get((pos, entry), (None, None))
                plaintext = None
                for (p, e, pt), voters in self._catchup_pt_votes.items():
                    if p == pos and e == entry and len(voters) >= quorum:
                        plaintext = pt
                        break
                self.commit.adopt_entry(entry, cipher, plaintext)
                self._trace("catchup_adopt", entry.instance, seq=entry.seq, pos=pos)
                del self._catchup_votes[pos]
                adopted = True
                break
        caught_up = sum(
            1
            for total in self._catchup_totals.values()
            if total <= len(self.commit.output_log)
        )
        if caught_up >= quorum:
            self._finish_catchup()

    def _finish_catchup(self) -> None:
        self.timers.cancel("catchup-retry")
        self._catchup_votes.clear()
        self._catchup_material.clear()
        self._catchup_pt_votes.clear()
        self._catchup_totals.clear()
        self._trace("catchup_done", None, log_len=len(self.commit.output_log))
        self.commit.end_catchup()

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def _status_tick(self) -> None:
        self.services.broadcast(STATUS_KIND, {}, 8)
        self.timers.set(
            "status", self.config.status_interval_us, self._status_tick
        )

    # ------------------------------------------------------------------
    # Introspection for tests and experiments
    # ------------------------------------------------------------------
    def output_sequence(self) -> List[Tuple[int, bytes]]:
        return self.commit.output_sequence() if self.commit else []

    def executed_count(self) -> int:
        return self.commit.executed_count if self.commit else 0


__all__ = [
    "LyraNode",
    "LyraConfig",
    "NodeStats",
    "DISTANCE_MODES",
    "DEFAULT_WARMUP_ROUNDS",
    "DEFAULT_WARMUP_SPACING_US",
    "warmup_duration_us",
    "PROBE_KIND",
    "PROBE_ACK_KIND",
    "GDIST_KIND",
    "GDIST_ACK_KIND",
    "CLIENT_TX_KIND",
    "CLIENT_REPLY_KIND",
    "CATCHUP_REQ_KIND",
    "CATCHUP_RSP_KIND",
]
