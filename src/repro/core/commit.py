"""The Commit protocol — Algorithm 4 of the paper.

BOC instances decide *accept/reject* per transaction, but partial synchrony
means a process can accept a transaction whose sequence number is lower
than transactions it already holds.  The Commit protocol turns the stream
of accepted transactions into a totally ordered, prefix-stable output:

- every process piggybacks on its broadcasts (line 74):
  * ``seq_i - L`` — its locally locked prefix (acceptance window; ``L = 3Δ``
    is the maximum good-case duration of a BOC instance),
  * ``min-pending`` — the lowest requested sequence number among
    transactions it has validated but whose instances are still running,
  * ``A`` — its accepted set (piggybacked incrementally; a Merkle root
    stands in for older prefixes, §V-C);
- from the 2f+1 *highest* received values (so Byzantine low-balling cannot
  stall progress, see the remark after Lemma 5) each process derives
  ``locked`` (Lemma 4), ``stable`` (Lemma 5) and ``committed`` (Lemma 6)
  prefix bounds;
- transactions in a committed prefix are output in sequence-number order,
  and a VSS decryption share is broadcast for each (commit-reveal,
  Lemma 7): payloads become readable only after the order is immutable.

The validation function (lines 62-69) — Equation 1 plus the acceptance
window — also lives here because it owns the pending set ``P``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clocks import OrderingClock, PerceivedSequence
from repro.core.distance import requested_sequence
from repro.core.services import ProtocolServices
from repro.core.types import AcceptedEntry, InstanceId
from repro.crypto.vss_encryption import DecryptionShare, VssError, VssScheme

#: Sentinel for "no pending transaction" (min over the empty set).
NO_PENDING = 1 << 62

STATUS_KIND = "lyra.status"
DSHARE_KIND = "lyra.dshare"
#: Pull signal: "your last delta marker referenced a full report I never
#: saw — force a full one on your next broadcast".
PB_PULL_KIND = "lyra.pb_pull"


@dataclass
class CommitConfig:
    """Tunables of the validation function and commit protocol."""

    #: Security parameter λ of Equation 1, in µs (§VI-B: 5 ms on AWS).
    lambda_us: int = 5_000
    #: Maximum BOC latency L (acceptance window).  ``None`` → 3Δ (line 52).
    max_latency_us: Optional[int] = None
    #: Reject sequence numbers more than this far in the future — the
    #: §VI-D mitigation against memory-saturation attacks.  ``None`` = off.
    future_bound_us: Optional[int] = 30_000_000
    #: Verify the VSS dealing before validating (detects bad dealers early).
    check_dealing: bool = True
    #: §VI-D flooding mitigation ("allocate network resources fairly
    #: between processes"): refuse to validate more than this many
    #: instances per proposer per second.  ``None`` = off.
    max_proposer_rate_per_s: Optional[float] = None
    #: Delta-encode the piggybacked reports (§V-C): full
    #: min-pending/accepted reports travel only when that state changed
    #: since the last full report; otherwise broadcasts carry a cheap
    #: "no change since seq k" marker.  ``locked`` always travels — it
    #: advances with the local clock on every broadcast.
    delta_piggyback: bool = False
    #: Report quorum k for the min-of-top-k locked/min-pending selection
    #: (Algorithm 4 lines 83-85).  ``None`` = the safe 2f+1, for which
    #: Lemmas 4-6 hold: at least f+1 of the top 2f+1 reports are honest,
    #: so f forged reports can never push the derived bounds past every
    #: honest one.  Any smaller value is a *deliberately weakened*
    #: validation knob used by the attack corpus to prove the invariant
    #: oracle catches the resulting ordering corruption — never set it in
    #: a real experiment.
    report_quorum: Optional[int] = None

    def resolved_L(self, delta_us: int) -> int:
        return self.max_latency_us if self.max_latency_us is not None else 3 * delta_us


class CommitState:
    """Algorithm 4 at one process.

    Callbacks:

    - ``on_commit(entries)`` — a new wave of entries entered the committed
      prefix, in output order.  The host broadcasts decryption shares.
    - ``on_execute(entry, plaintext)`` — an output-log entry has been
      decrypted *and* every earlier entry already executed.
    """

    def __init__(
        self,
        services: ProtocolServices,
        clock: OrderingClock,
        perceived: PerceivedSequence,
        vss: VssScheme,
        config: Optional[CommitConfig] = None,
        *,
        on_commit: Optional[Callable[[List[AcceptedEntry]], None]] = None,
        on_execute: Optional[Callable[[AcceptedEntry, bytes], None]] = None,
    ) -> None:
        self.services = services
        self.clock = clock
        self.perceived = perceived
        self.vss = vss
        self.config = config or CommitConfig()
        self.L = self.config.resolved_L(services.delta_us)
        self._quorum_k = (
            self.config.report_quorum
            if self.config.report_quorum is not None
            else 2 * services.f + 1
        )
        if self._quorum_k < 1:
            raise ValueError("report_quorum must be >= 1")
        self.on_commit = on_commit
        self.on_execute = on_execute

        # Algorithm 4 state (lines 52-61).
        self.pending: Dict[InstanceId, int] = {}
        self.min_pending: int = NO_PENDING
        self.accepted: Dict[InstanceId, AcceptedEntry] = {}  # live (uncommitted) A
        self._accepted_ever: Set[InstanceId] = set()
        self.locked_reports: Dict[int, int] = {}  # R
        self.pending_reports: Dict[int, int] = {}  # S
        # Ascending sorted mirrors of the report values: selecting the
        # min-of-top-2f+1 becomes an O(log n) bisect update plus one index
        # instead of copying and sorting both dicts on every status message.
        self._locked_sorted: List[int] = []
        self._pending_sorted: List[int] = []
        self.locked: int = 0
        self.stable: int = 0
        self.committed: int = 0
        self.committed_ids: Set[InstanceId] = set()  # C
        # Dirty flags gating the committed-prefix rescan and try-commit:
        # both are pure functions of (stable, accepted, pending, committed),
        # so they only need to re-run after an input they read has changed.
        self._accepted_dirty = False
        self._commit_dirty = False

        # Delta piggybacking: ``_acc_version`` counts mutations of the
        # live accepted set; a full report snapshots (min_pending,
        # _acc_version) so later broadcasts can tell "nothing changed"
        # without comparing the sets themselves.
        self._acc_version = 0
        self._pb_seq = 0
        self._pb_sent_state: Optional[Tuple[int, int]] = None
        self._pb_force_full = False
        self._peer_pb: Dict[int, Tuple[int, int]] = {}  # sender -> (seq, minp)
        self._pull_pending: Set[int] = set()
        # Sender-side memo of the ``acc`` tuple and its summed wire size:
        # the accepted set mutates far less often than the node
        # broadcasts, so consecutive piggybacks share one tuple object.
        # Keyed on ``_acc_version``; restore()/adopt_entry() mutate
        # ``accepted`` without bumping the version (bumping would change
        # the delta-report cadence), so they reset the key instead.
        self._pb_acc_cache: Tuple[AcceptedEntry, ...] = ()
        self._pb_acc_size = 0
        self._pb_acc_key: Optional[int] = None
        # Receiver-side twin: the exact accepted tuple last scanned per
        # sender.  Re-scanning the same object is a guaranteed no-op
        # (``_accepted_ever``/``committed_ids`` only grow between
        # restores), so identity lets us skip the loop entirely.
        self._seen_acc: Dict[int, Sequence[AcceptedEntry]] = {}

        # Commit-reveal machinery.
        self.ciphers: Dict[InstanceId, Any] = {}
        self._dshares: Dict[bytes, Dict[int, DecryptionShare]] = {}
        self._plaintexts: Dict[InstanceId, bytes] = {}

        # SMR output: the totally ordered committed log, and the execution
        # pointer enforcing in-order execution as decryptions complete.
        self.output_log: List[AcceptedEntry] = []
        self._executed_upto: int = 0

        # Crash recovery: while catching up from peers the commit rule is
        # suspended so gap-filling adoptions cannot interleave with new
        # out-of-order local commits.
        self.catching_up = False

        # Statistics for experiments.
        self.rejected_count = 0
        self.accepted_count = 0
        self.rate_limited_count = 0
        # Equation-1 failures: the broadcaster's prediction for our clock
        # missed by more than λ.  This is the precise downstream symptom
        # of distance-estimator error, scraped by the distance-error
        # ablation and the metrics registry.
        self.lambda_rejects = 0
        self.validations = 0
        # Flooding mitigation: token bucket per proposer (tokens = spare
        # validation budget, refilled at max_proposer_rate_per_s).
        self._rate_tokens: Dict[int, float] = {}
        self._rate_last_us: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Validation function (lines 62-69)
    # ------------------------------------------------------------------
    def _rate_limit_ok(self, proposer: int) -> bool:
        """Token-bucket fairness check (§VI-D flooding mitigation)."""
        rate = self.config.max_proposer_rate_per_s
        if rate is None:
            return True
        now = self.services.sim.now
        last = self._rate_last_us.get(proposer, now)
        tokens = self._rate_tokens.get(proposer, 2.0)  # small initial burst
        tokens = min(2.0 * rate, tokens + (now - last) * rate / 1_000_000.0)
        self._rate_last_us[proposer] = now
        if tokens < 1.0:
            self._rate_tokens[proposer] = tokens
            self.rate_limited_count += 1
            return False
        self._rate_tokens[proposer] = tokens - 1.0
        return True

    def validate(self, iid: InstanceId, cipher: Any, preds: Tuple[int, ...]) -> bool:
        if len(preds) != self.services.n:
            return False
        if not self._rate_limit_ok(iid.proposer):
            return False
        s = requested_sequence(preds, self.services.f)
        seq_i = self.perceived.observe(cipher.cipher_id)
        self.validations += 1
        # Equation 1: the broadcaster predicted our clock within λ.
        if abs(seq_i - preds[self.services.pid]) > self.config.lambda_us:
            self.lambda_rejects += 1
            return False
        # Acceptance window: the prefix of s is not locally locked.
        if s <= seq_i - self.L:
            return False
        # §VI-D mitigation: refuse sequence numbers in the distant future.
        if (
            self.config.future_bound_us is not None
            and s > seq_i + self.config.future_bound_us
        ):
            return False
        if self.config.check_dealing and not self.vss.check_dealing(
            cipher, self.services.pid
        ):
            return False
        # Track as pending (line 65-66).
        self.pending[iid] = s
        if s < self.min_pending:
            self.min_pending = s
        return True

    def _recompute_min_pending(self) -> None:
        self.min_pending = min(self.pending.values()) if self.pending else NO_PENDING

    # ------------------------------------------------------------------
    # BOC outcomes (lines 70-73)
    # ------------------------------------------------------------------
    def on_accept(self, iid: InstanceId, cipher: Any, preds: Tuple[int, ...]) -> None:
        """The BOC instance for ``iid`` decided 1."""
        first_cipher = iid not in self.ciphers
        self.ciphers[iid] = cipher
        if self.pending.pop(iid, None) is not None:
            self._recompute_min_pending()
            self._commit_dirty = True
        if iid in self._accepted_ever or iid in self.committed_ids:
            # Already learned through a piggyback; we may still have been
            # missing the cipher for the reveal phase.
            if first_cipher:
                self._maybe_reveal(iid)
            self._try_commit()
            return
        s = requested_sequence(preds, self.services.f)
        entry = AcceptedEntry(iid, cipher.cipher_id, s)
        self._accepted_ever.add(iid)
        self.accepted[iid] = entry
        self._acc_version += 1
        self.accepted_count += 1
        self._accepted_dirty = True
        self._commit_dirty = True
        self._recompute_prefixes()

    def on_reject(self, iid: InstanceId) -> None:
        """The BOC instance for ``iid`` decided 0."""
        self.rejected_count += 1
        if self.pending.pop(iid, None) is not None:
            self._recompute_min_pending()
            self._commit_dirty = True
        self._try_commit()

    def learn_cipher(self, iid: InstanceId, cipher: Any) -> None:
        """A cipher recovered after the fact (fetch path / piggyback)."""
        if iid not in self.ciphers:
            self.ciphers[iid] = cipher
            self._maybe_reveal(iid)

    # ------------------------------------------------------------------
    # Piggybacking (lines 74-78)
    # ------------------------------------------------------------------
    def _acc_tuple(self) -> Tuple[AcceptedEntry, ...]:
        """``tuple(self.accepted.values())``, memoised until the set mutates."""
        if self._pb_acc_key != self._acc_version:
            self._pb_acc_cache = tuple(self.accepted.values())
            self._pb_acc_size = sum(e.wire_size() for e in self._pb_acc_cache)
            self._pb_acc_key = self._acc_version
        return self._pb_acc_cache

    def piggyback(self) -> dict:
        """The three fields attached to every broadcast."""
        return {
            "locked": self.clock.read() - self.L,
            "minp": self.min_pending,
            "acc": self._acc_tuple(),
        }

    def piggyback_size(self) -> int:
        # locked + minp + Merkle root standing in for older prefixes +
        # the incremental accepted entries.
        self._acc_tuple()
        return 8 + 8 + 32 + self._pb_acc_size

    def piggyback_delta(self) -> dict:
        """Delta-encoded piggyback (§V-C): ``l`` (locked) always travels;
        ``m``/``a`` (min-pending, accepted) only when they changed since
        the last full report, which carries a fresh sequence number ``s``.
        Unchanged state compresses to a marker ``{"l", "k"}`` referencing
        the last full report."""
        locked = self.clock.read() - self.L
        state = (self.min_pending, self._acc_version)
        if state == self._pb_sent_state and not self._pb_force_full:
            return {"l": locked, "k": self._pb_seq}
        self._pb_seq += 1
        self._pb_sent_state = state
        self._pb_force_full = False
        return {
            "l": locked,
            "m": self.min_pending,
            "a": self._acc_tuple(),
            "s": self._pb_seq,
        }

    @staticmethod
    def piggyback_delta_size(pbd: dict) -> int:
        """Wire cost of a delta piggyback produced by :meth:`piggyback_delta`."""
        acc = pbd.get("a")
        if acc is None:
            return 16  # marker: locked + referenced seq
        # Full report: classic layout plus the sequence number.
        return 8 + 8 + 8 + 32 + sum(e.wire_size() for e in acc)

    def force_full_piggyback(self) -> None:
        """Pull signal: a peer missed our last full report — the next
        broadcast must carry one regardless of whether state changed."""
        self._pb_force_full = True

    # ------------------------------------------------------------------
    # Receiving piggybacked state (lines 79-88)
    # ------------------------------------------------------------------
    def on_status(
        self,
        sender: int,
        locked_j: int,
        min_j: int,
        accepted_j: Sequence[AcceptedEntry],
    ) -> None:
        # Fused report-update + prefix-recompute: the locked/stable bounds
        # are pure functions of the sorted report mirrors (and each other),
        # so they only need re-evaluating for the mirror a report actually
        # moved — this handler runs once per delivered broadcast, making it
        # the single hottest protocol function in a run.
        locked_j = int(locked_j)
        min_j = int(min_j)
        changed = False
        reports = self.locked_reports
        old = reports.get(sender)
        if old != locked_j:
            ls = self._locked_sorted
            if old is not None:
                del ls[bisect_left(ls, old)]
            insort(ls, locked_j)
            reports[sender] = locked_j
            k = self._quorum_k
            if len(ls) >= k:
                locked = ls[-k]
                if locked > self.locked:
                    self.locked = locked
                    changed = True
        reports = self.pending_reports
        old = reports.get(sender)
        if old != min_j:
            ps = self._pending_sorted
            if old is not None:
                del ps[bisect_left(ps, old)]
            insort(ps, min_j)
            reports[sender] = min_j
            changed = True
        if accepted_j and self._seen_acc.get(sender) is not accepted_j:
            self._seen_acc[sender] = accepted_j
            accepted_ever = self._accepted_ever
            committed_ids = self.committed_ids
            for entry in accepted_j:
                iid = entry.instance
                if iid not in accepted_ever and iid not in committed_ids:
                    accepted_ever.add(iid)
                    self.accepted[iid] = entry
                    self._acc_version += 1
                    self._accepted_dirty = True
                    self._commit_dirty = True
        if changed or self._accepted_dirty:
            self._update_prefixes()
        elif self._commit_dirty:
            self._try_commit()

    def on_status_delta(self, sender: int, pbd: dict) -> bool:
        """Consume a delta-encoded piggyback.

        Returns True when ``pbd`` is a marker referencing a full report
        this process never saw (loss, reordering, or a restart on either
        side) — the caller should signal ``sender`` to force a full
        report.  Until that arrives the sender's locked report still
        updates (it rides every piggyback), so only the freshness of its
        min-pending report degrades — a liveness matter, never safety."""
        locked = pbd.get("l", 0)
        seq = pbd.get("s")
        if seq is not None:  # full report
            minp = pbd.get("m", NO_PENDING)
            self._peer_pb[sender] = (seq, minp)
            self._pull_pending.discard(sender)
            self.on_status(sender, locked, minp, pbd.get("a", ()))
            return False
        cached = self._peer_pb.get(sender)
        if cached is not None and cached[0] == pbd.get("k"):
            # Marker: re-assert the cached min-pending under the new
            # locked bound.  Accepted entries were adopted with the full
            # report (adoption is cumulative), so none travel here.
            self.on_status(sender, locked, cached[1], ())
            return False
        self._status_locked_only(sender, locked)
        if sender in self._pull_pending:
            return False
        self._pull_pending.add(sender)
        return True

    def _status_locked_only(self, sender: int, locked_j: int) -> None:
        """Update only the locked report of ``sender`` (marker whose full
        report is missing: its min-pending value is unknown)."""
        locked_j = int(locked_j)
        reports = self.locked_reports
        old = reports.get(sender)
        if old == locked_j:
            return
        ls = self._locked_sorted
        if old is not None:
            del ls[bisect_left(ls, old)]
        insort(ls, locked_j)
        reports[sender] = locked_j
        k = self._quorum_k
        if len(ls) >= k:
            locked = ls[-k]
            if locked > self.locked:
                self.locked = locked
                self._update_prefixes()

    @staticmethod
    def _min_of_top(values: List[int], k: int) -> Optional[int]:
        """``min`` of the ``k`` highest values, or None if fewer than k."""
        if len(values) < k:
            return None
        return sorted(values, reverse=True)[k - 1]

    def _recompute_prefixes(self) -> None:
        k = self._quorum_k
        # min of the k highest reports == k-th element from the top of the
        # ascending mirror; equivalent to _min_of_top over the dict values.
        ls = self._locked_sorted
        if len(ls) >= k:
            locked = ls[-k]
            if locked > self.locked:
                self.locked = locked
        self._update_prefixes()

    def _update_prefixes(self) -> None:
        """Re-derive stable/committed from the current locked bound and
        pending mirror, then run try-commit.  Callers must have already
        refreshed ``self.locked`` (or know it is current)."""
        k = self._quorum_k
        ps = self._pending_sorted
        if len(ps) >= k:
            pend = ps[-k]
            stable = self.locked if pend > self.locked else pend
            if stable > self.stable:
                self.stable = stable
                self._accepted_dirty = True
        # committed = max accepted sequence ≤ stable (line 87); monotone.
        # Pure in (stable, accepted): rescan only after either changed.
        if self._accepted_dirty:
            self._accepted_dirty = False
            best = self.committed
            stable_bound = self.stable
            for entry in self.accepted.values():
                seq = entry.seq
                if seq <= stable_bound and seq > best:
                    best = seq
            if best > self.committed:
                self.committed = best
                self._commit_dirty = True
        if self._commit_dirty:
            self._try_commit()

    # ------------------------------------------------------------------
    # try-commit (lines 89-95)
    # ------------------------------------------------------------------
    def _try_commit(self) -> None:
        if self.catching_up:
            # Suspended during recovery: adopting peers' log entries and
            # committing new ones concurrently could append out of order.
            # The dirty flag survives so end_catchup re-evaluates.
            return
        if not self._commit_dirty:
            # No input (accepted, committed, pending) changed since the
            # last evaluation, so the wave below would be empty again.
            return
        self._commit_dirty = False
        # wait-pending: never commit past a still-running local instance
        # whose requested sequence number is in the committed prefix.
        bound = self.committed
        if self.pending:
            bound = min(bound, min(self.pending.values()) - 1)
        wave = [
            entry
            for entry in self.accepted.values()
            if entry.seq <= bound
        ]
        if not wave:
            return
        wave.sort(key=AcceptedEntry.order_key)
        for entry in wave:
            del self.accepted[entry.instance]
            self.committed_ids.add(entry.instance)
            self.output_log.append(entry)
        self._acc_version += 1
        if self.on_commit is not None:
            self.on_commit(wave)
        for entry in wave:
            self._maybe_reveal(entry.instance)

    # ------------------------------------------------------------------
    # Commit-reveal (lines 93-95 + Lemma 7)
    # ------------------------------------------------------------------
    def decryption_shares_for(
        self, entries: Sequence[AcceptedEntry]
    ) -> List[Tuple[InstanceId, DecryptionShare]]:
        """Produce our decryption share for each committed cipher we hold."""
        out = []
        for entry in entries:
            cipher = self.ciphers.get(entry.instance)
            if cipher is None:
                continue
            try:
                share = self.vss.partial_decrypt(cipher, self.services.pid)
            except VssError:
                continue  # bad dealer: our share is unusable
            out.append((entry.instance, share))
        return out

    def on_decryption_share(
        self, iid: InstanceId, share: DecryptionShare, sender: int
    ) -> None:
        if iid in self._plaintexts:
            return
        bucket = self._dshares.setdefault(share.cipher_id, {})
        if sender in bucket:
            return
        bucket[sender] = share
        self._maybe_reveal(iid)

    def _maybe_reveal(self, iid: InstanceId) -> None:
        if iid in self._plaintexts or iid not in self.committed_ids:
            return
        cipher = self.ciphers.get(iid)
        if cipher is None:
            return
        bucket = self._dshares.get(cipher.cipher_id)
        if bucket is None or len(bucket) < self.vss.threshold:
            return
        try:
            plaintext = self.vss.decrypt(cipher, list(bucket.values()))
        except VssError:
            return  # wait for more (valid) shares
        self._plaintexts[iid] = plaintext
        self._drain_executions()

    def _drain_executions(self) -> None:
        """Execute output-log entries in order as plaintexts arrive."""
        while self._executed_upto < len(self.output_log):
            entry = self.output_log[self._executed_upto]
            plaintext = self._plaintexts.get(entry.instance)
            if plaintext is None:
                return
            self._executed_upto += 1
            if self.on_execute is not None:
                self.on_execute(entry, plaintext)

    # ------------------------------------------------------------------
    @property
    def executed_count(self) -> int:
        return self._executed_upto

    def output_sequence(self) -> List[Tuple[int, bytes]]:
        """The committed log as ``(seq, cipher_id)`` pairs (for checkers)."""
        return [(e.seq, e.cipher_id) for e in self.output_log]

    # ------------------------------------------------------------------
    # Crash recovery: snapshot / restore / catch-up (state transfer)
    # ------------------------------------------------------------------
    def snapshot(self) -> "CommitSnapshot":
        """The durable slice of this state: the committed log and its
        reveal material.  Everything else (pending instances, peer
        reports, the accepted set) is volatile and lost in a crash."""
        committed = self.committed_ids
        return CommitSnapshot(
            output_log=tuple(self.output_log),
            committed=self.committed,
            executed_upto=self._executed_upto,
            ciphers={i: c for i, c in self.ciphers.items() if i in committed},
            plaintexts={i: p for i, p in self._plaintexts.items() if i in committed},
        )

    def restore(self, snap: "CommitSnapshot") -> None:
        """Reset to the durable snapshot, wiping all volatile state."""
        self.pending.clear()
        self.min_pending = NO_PENDING
        self.accepted.clear()
        self.locked_reports.clear()
        self.pending_reports.clear()
        self._locked_sorted.clear()
        self._pending_sorted.clear()
        self._accepted_dirty = True
        self._commit_dirty = True
        self.locked = 0
        self.stable = 0
        self._dshares.clear()
        self._rate_tokens.clear()
        self._rate_last_us.clear()
        self.output_log = list(snap.output_log)
        self.committed = snap.committed
        self._executed_upto = snap.executed_upto
        self.ciphers = dict(snap.ciphers)
        self._plaintexts = dict(snap.plaintexts)
        self.committed_ids = {e.instance for e in self.output_log}
        self._accepted_ever = set(self.committed_ids)
        # ``accepted`` changed without an _acc_version bump, and
        # ``_accepted_ever`` shrank: drop both piggyback memos.
        self._pb_acc_key = None
        self._seen_acc.clear()

    def begin_catchup(self) -> None:
        self.catching_up = True

    def end_catchup(self) -> None:
        self.catching_up = False
        self._try_commit()
        self._drain_executions()

    def adopt_entry(
        self,
        entry: AcceptedEntry,
        cipher: Any = None,
        plaintext: Optional[bytes] = None,
    ) -> bool:
        """Append a peer-supplied committed-log entry during catch-up.

        The caller is responsible for ordering (entries must arrive in log
        order) and for quorum-validating the entry first.  Returns False
        when the instance is already in our committed prefix.
        """
        if entry.instance in self.committed_ids:
            return False
        self.committed_ids.add(entry.instance)
        self._accepted_ever.add(entry.instance)
        if self.accepted.pop(entry.instance, None) is not None:
            # Mutation without an _acc_version bump — drop the acc memo.
            self._pb_acc_key = None
        if self.pending.pop(entry.instance, None) is not None:
            self._recompute_min_pending()
        self._commit_dirty = True
        self.output_log.append(entry)
        if entry.seq > self.committed:
            self.committed = entry.seq
        if cipher is not None and entry.instance not in self.ciphers:
            self.ciphers[entry.instance] = cipher
        if plaintext is not None:
            self._plaintexts.setdefault(entry.instance, plaintext)
        self._drain_executions()
        return True

    def install_plaintext(self, iid: InstanceId, plaintext: bytes) -> None:
        """Accept a quorum-validated plaintext for a committed instance."""
        if iid not in self.committed_ids or iid in self._plaintexts:
            return
        self._plaintexts[iid] = plaintext
        self._drain_executions()

    def catchup_items(
        self, have: int, limit: int
    ) -> Tuple[int, Tuple[Tuple[AcceptedEntry, Any, Optional[bytes]], ...]]:
        """Our committed-log suffix from position ``have``, with reveal
        material, for a recovering peer: ``(total_log_length, items)``."""
        items = tuple(
            (entry, self.ciphers.get(entry.instance), self._plaintexts.get(entry.instance))
            for entry in self.output_log[have : have + limit]
        )
        return len(self.output_log), items

    # ------------------------------------------------------------------
    # Prefix summaries ("hash trees are used in lieu of older prefixes to
    # reduce message size", §V-C): a 32-byte root stands in for the whole
    # committed prefix, and membership proofs let peers audit that a
    # specific transaction is part of a summarised prefix.
    # ------------------------------------------------------------------
    def committed_prefix_root(self) -> bytes:
        from repro.crypto.merkle import MerkleTree

        return MerkleTree([e.canonical() for e in self.output_log]).root

    def committed_prefix_proof(self, iid: InstanceId):
        """``(root, leaf, proof, leaf_count)`` for a committed instance, or
        None if it is not in the committed prefix."""
        from repro.crypto.merkle import MerkleTree

        for index, entry in enumerate(self.output_log):
            if entry.instance == iid:
                tree = MerkleTree([e.canonical() for e in self.output_log])
                return (
                    tree.root,
                    entry.canonical(),
                    tree.proof(index),
                    len(self.output_log),
                )
        return None


@dataclass(frozen=True)
class CommitSnapshot:
    """What survives a crash: the fsynced committed log plus the reveal
    material needed to finish executing it."""

    output_log: Tuple[AcceptedEntry, ...]
    committed: int
    executed_upto: int
    ciphers: Dict[InstanceId, Any]
    plaintexts: Dict[InstanceId, bytes]


__all__ = [
    "CommitState",
    "CommitSnapshot",
    "CommitConfig",
    "NO_PENDING",
    "STATUS_KIND",
    "DSHARE_KIND",
    "PB_PULL_KIND",
]
