"""Binary Value Broadcast (Mostéfaoui, Moumen & Raynal [25]).

The reliable broadcast abstraction for *binary* values used by DBFT rounds
after the first (round 1 is handled by the richer VVB, Algorithm 1).  For
each (instance, round):

- a process broadcasts a vote for its estimate ``b``;
- on receiving ``f+1`` votes for a value it has not voted, it relays that
  value (so a value supported by one correct process reaches all);
- on receiving ``2f+1`` votes for a value, it *delivers* the value into
  ``bin_values``.

Guarantees (with ``f < n/3``): every delivered value was voted by a correct
process (BV-Justification), correct processes eventually deliver the same
set (BV-Uniformity), and at least one value is delivered (BV-Obligation).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set

from repro.core.services import ProtocolServices

#: Message kind for BV votes.  Payload: {iid, round, b}.
BV_KIND = "lyra.bv"


class BinaryValueBroadcast:
    """One (instance, round) endpoint of BV-broadcast at one process."""

    def __init__(
        self,
        services: ProtocolServices,
        iid: Any,
        round_no: int,
        on_deliver: Callable[[int], None],
    ) -> None:
        self.services = services
        self.iid = iid
        self.round_no = round_no
        self.on_deliver = on_deliver
        self._votes: Dict[int, Set[int]] = {0: set(), 1: set()}
        self._voted: Set[int] = set()
        self.delivered: Set[int] = set()

    # ------------------------------------------------------------------
    def broadcast_estimate(self, b: int) -> None:
        """Vote for our estimate (idempotent per value)."""
        self._vote(b)

    def _vote(self, b: int) -> None:
        if b in self._voted:
            return
        self._voted.add(b)
        self.services.broadcast(
            BV_KIND, {"iid": self.iid, "round": self.round_no, "b": b}
        )
        # Our own vote counts: the network echoes broadcasts back to self,
        # but counting here too keeps the primitive usable without echo.
        self._record(b, self.services.pid)

    def on_vote(self, b: int, sender: int) -> None:
        """Handle a BV vote from ``sender``."""
        if b not in (0, 1):
            return  # malformed (Byzantine) vote
        self._record(b, sender)

    def _record(self, b: int, sender: int) -> None:
        votes = self._votes[b]
        if sender in votes:
            return
        votes.add(sender)
        if len(votes) >= self.services.small_quorum and b not in self._voted:
            self._vote(b)
        if len(votes) >= self.services.quorum and b not in self.delivered:
            self.delivered.add(b)
            self.on_deliver(b)


__all__ = ["BinaryValueBroadcast", "BV_KIND"]
