"""Shared datatypes of the Lyra protocol stack.

Transactions are opaque fixed-size payloads (the paper uses unique 32-byte
values, §VI-A); batches amortise consensus costs (§VI-B, batch size 800);
an :class:`InstanceId` names one BOC instance (a proposer and its local
batch counter); an :class:`AcceptedEntry` is an element of the accepted set
``A`` of Algorithm 4.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

TX_PAYLOAD_BYTES = 32

_TX_PACK = struct.Struct(">QQ16s")


@dataclass(frozen=True)
class Transaction:
    """A client transaction: a unique 32-byte payload.

    The payload encodes ``(client_id, nonce, body)`` so uniqueness holds by
    construction and executed outputs can be traced back to submitters.
    """

    client_id: int
    nonce: int
    body: bytes = b"\x00" * 16
    submitted_at: int = 0  # client-side submission time (metrics only)

    def payload(self) -> bytes:
        """The canonical 32-byte wire payload."""
        return _TX_PACK.pack(self.client_id, self.nonce, self.body[:16].ljust(16, b"\x00"))

    @classmethod
    def from_payload(cls, data: bytes, submitted_at: int = 0) -> "Transaction":
        client_id, nonce, body = _TX_PACK.unpack(data)
        return cls(client_id, nonce, body, submitted_at)

    def key(self) -> Tuple[int, int]:
        return (self.client_id, self.nonce)

    def wire_size(self) -> int:
        return TX_PAYLOAD_BYTES

    def canonical(self) -> tuple:
        return (self.client_id, self.nonce, self.body)


@dataclass(frozen=True)
class Batch:
    """A proposer-local batch of transactions, the unit of one BOC instance."""

    proposer: int
    batch_no: int
    txs: Tuple[Transaction, ...]

    def serialize(self) -> bytes:
        """Concatenated canonical payloads — the plaintext that gets
        VSS-encrypted for commit-reveal."""
        return b"".join(tx.payload() for tx in self.txs)

    @classmethod
    def deserialize(
        cls, proposer: int, batch_no: int, data: bytes
    ) -> "Batch":
        if len(data) % TX_PAYLOAD_BYTES != 0:
            raise ValueError("batch plaintext is not a whole number of txs")
        txs = tuple(
            Transaction.from_payload(data[i : i + TX_PAYLOAD_BYTES])
            for i in range(0, len(data), TX_PAYLOAD_BYTES)
        )
        return cls(proposer, batch_no, txs)

    def wire_size(self) -> int:
        return TX_PAYLOAD_BYTES * len(self.txs)

    def canonical(self) -> tuple:
        return (self.proposer, self.batch_no, tuple(tx.canonical() for tx in self.txs))

    def __len__(self) -> int:
        return len(self.txs)


@dataclass(frozen=True, order=True)
class InstanceId:
    """Identity of one BOC instance: ``(proposer, batch_no)``."""

    proposer: int
    batch_no: int

    def __post_init__(self) -> None:
        # Instance ids key every hot dict in the protocol; precomputing the
        # hash once beats re-hashing the field tuple on each lookup.
        object.__setattr__(self, "_hash", hash((self.proposer, self.batch_no)))

    def __hash__(self) -> int:
        return self._hash

    def wire_size(self) -> int:
        return 8

    def canonical(self) -> tuple:
        return (self.proposer, self.batch_no)


@dataclass(frozen=True)
class AcceptedEntry:
    """An element of the accepted set ``A``: an instance that decided 1,
    its cipher id, and its decided sequence number."""

    instance: InstanceId
    cipher_id: bytes
    seq: int

    def order_key(self) -> tuple:
        """Total order on committed transactions: decided sequence number,
        ties broken deterministically by cipher id (sub-µs collisions)."""
        return (self.seq, self.cipher_id)

    def wire_size(self) -> int:
        return 8 + 32 + 8

    def canonical(self) -> tuple:
        return (self.instance.canonical(), self.cipher_id, self.seq)


__all__ = [
    "Transaction",
    "Batch",
    "InstanceId",
    "AcceptedEntry",
    "TX_PAYLOAD_BYTES",
]
