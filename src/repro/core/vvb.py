"""Validating Value Broadcast — Algorithm 1 of the paper.

VVB extends Binary Value Broadcast with three things:

1. **Value delivery**: along with the binary value 1 it reliably delivers
   the broadcaster's message ``m`` (here: the transaction cipher and the
   predicted sequence numbers ``S_t``).
2. **Quorum validation**: a process votes 1 only if its configurable
   ``validation-function`` accepts ``m`` (Equation 1 + acceptance window);
   delivery of 1 therefore proves ≥ 2f+1 validations (VVB-Supermajority).
3. **Anti-equivocation**: the INIT is signed by the broadcaster, correct
   processes validate only their *first* INIT per instance, and votes for 1
   carry threshold-signature shares over the message digest, so a combined
   DELIVER proof pins a unique ``m`` (VVB-Unicity).

Message kinds (payloads are dicts; ``iid`` scopes them to one instance):

- ``lyra.init``    — broadcaster's {cipher, preds, sigma}
- ``lyra.vote1``   — {digest, share, seq} (seq piggybacks the voter's
  perceived sequence number for distance estimation, §VI-B)
- ``lyra.vote0``   — {}
- ``lyra.deliver`` — {digest, proof}
- ``lyra.fetch`` / ``lyra.init`` reply — recovery path for processes that
  obtained a delivery proof before the INIT itself (Byzantine broadcaster
  that sent ``m`` to only part of the network).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.services import ProtocolServices
from repro.crypto.hashing import digest_of
from repro.crypto.signatures import Signature
from repro.crypto.threshold import SignatureShare, ThresholdError, ThresholdSignature

INIT_KIND = "lyra.init"
VOTE1_KIND = "lyra.vote1"
VOTE0_KIND = "lyra.vote0"
DELIVER_KIND = "lyra.deliver"
FETCH_KIND = "lyra.fetch"

#: Per-message byte-size hints (see DESIGN.md §5).
_PREDS_BYTES_PER_NODE = 8


_digest_memo: Dict[Tuple[Any, bytes, Tuple[int, ...]], bytes] = {}


def message_digest(iid: Any, cipher_id: bytes, preds: Tuple[int, ...]) -> bytes:
    """The digest shares and proofs are bound to: H(iid, c_t, S_t).

    Memoized: every replica hashes the same (iid, c_t, S_t) triple on
    INIT receipt, and zero-copy broadcast shares the very ``cipher_id``/
    ``preds`` objects cluster-wide, so the key hashes cheaply and one
    SHA-256 serves the whole cluster."""
    key = (iid, cipher_id, preds)
    digest = _digest_memo.get(key)
    if digest is None:
        if len(_digest_memo) >= (1 << 15):
            _digest_memo.clear()
        digest = digest_of(
            (getattr(iid, "canonical", lambda: iid)(), cipher_id, preds)
        )
        _digest_memo[key] = digest
    return digest


class VvbInstance:
    """One instance of Algorithm 1 at one process.

    Callbacks:

    - ``validate(cipher, preds) -> bool`` — the validation-function.
    - ``on_deliver(b, m)`` — VVB delivery into the consensus layer;
      ``m`` is ``(cipher, preds)`` for ``b = 1`` and ``None`` for ``b = 0``.
    - ``on_vote_seq(sender, seq_j)`` — perceived-sequence piggyback, used
      by the broadcaster to refresh its distance estimates.
    """

    def __init__(
        self,
        services: ProtocolServices,
        iid: Any,
        *,
        validate: Callable[[Any, Tuple[int, ...]], bool],
        on_deliver: Callable[[int, Optional[Tuple[Any, Tuple[int, ...]]]], None],
        on_vote_seq: Optional[Callable[[int, int], None]] = None,
        perceive: Optional[Callable[[Any], int]] = None,
    ) -> None:
        self.services = services
        self.iid = iid
        self._validate = validate
        self._on_deliver = on_deliver
        self._on_vote_seq = on_vote_seq
        self._perceive = perceive
        # Broadcaster's message, locked to the first correctly-signed INIT.
        self.message: Optional[Tuple[Any, Tuple[int, ...]]] = None
        self.message_digest: Optional[bytes] = None
        self._init_raw: Optional[dict] = None  # for forwarding / FETCH replies
        self.equivocation_detected = False
        # Vote bookkeeping: shares for 1 are keyed by the digest they sign.
        self._shares: Dict[bytes, Dict[int, SignatureShare]] = {}
        self._zero_votes: Set[int] = set()
        self._sent_zero = False
        self._validated = False  # we only ever share-sign once per instance
        self.delivered: Set[int] = set()
        self._proof: Optional[Tuple[bytes, ThresholdSignature]] = None
        self._proof_rebroadcast = False
        self._timer_started = False
        self._fetched_from: Set[int] = set()

    # ------------------------------------------------------------------
    # Broadcaster side
    # ------------------------------------------------------------------
    def start(self, cipher: Any, preds: Tuple[int, ...]) -> None:
        """``vv-broadcast(m)``: sign and broadcast the INIT (lines 1-3)."""
        digest = message_digest(self.iid, cipher.cipher_id, preds)
        sigma = self.services.signer.sign(digest)
        payload = {
            "iid": self.iid,
            "cipher": cipher,
            "preds": preds,
            "sigma": sigma,
        }
        size = (
            cipher.wire_size()
            + _PREDS_BYTES_PER_NODE * len(preds)
            + sigma.wire_size()
        )
        self.services.broadcast(INIT_KIND, payload, size)

    # ------------------------------------------------------------------
    # INIT handling (lines 4-10)
    # ------------------------------------------------------------------
    def on_init(self, payload: dict, sender: int) -> None:
        cipher = payload.get("cipher")
        preds = payload.get("preds")
        sigma = payload.get("sigma")
        if cipher is None or preds is None or not isinstance(sigma, Signature):
            return
        digest = message_digest(self.iid, cipher.cipher_id, tuple(preds))
        # Authentication: the INIT must be signed by the instance's
        # broadcaster (forwarded copies keep the original signature).
        if not self.services.registry.verify(digest, sigma, self.iid.proposer):
            return
        if self.message is not None:
            if digest != self.message_digest:
                # A second, different correctly-signed INIT: equivocation.
                self.equivocation_detected = True
            return
        self.message = (cipher, tuple(preds))
        self.message_digest = digest
        self._init_raw = payload
        if self._perceive is not None:
            self._perceive(cipher)
        self._start_expiration_timer()
        if not self._validated and self._validate(cipher, tuple(preds)):
            self._validated = True
            self._broadcast_vote1(digest)
        else:
            self._broadcast_vote0()
        # A proof may have arrived before the INIT (fetch path): deliver now.
        self._maybe_deliver_with_proof()
        self._check_one_quorum(digest)

    def _broadcast_vote1(self, digest: bytes) -> None:
        share = self.services.threshold_signer.share_sign(digest)
        seq = 0
        if self._perceive is not None and self.message is not None:
            seq = self._perceive(self.message[0])
        self.services.broadcast(
            VOTE1_KIND,
            {"iid": self.iid, "digest": digest, "share": share, "seq": seq},
            share.wire_size() + 32 + 8,
        )

    def _broadcast_vote0(self) -> None:
        if self._sent_zero:
            return
        self._sent_zero = True
        seq = 0
        if self._perceive is not None and self.message is not None:
            seq = self._perceive(self.message[0])
        self.services.broadcast(VOTE0_KIND, {"iid": self.iid, "seq": seq}, 16)

    def _start_expiration_timer(self) -> None:
        """Expiration timer ``E = 2Δ`` (line 6), for VVB-Obligation."""
        if self._timer_started:
            return
        self._timer_started = True
        assert self.services.timers is not None
        self.services.timers.set(
            f"vvb-expire-{self.iid}", 2 * self.services.delta_us, self._on_timeout
        )

    # ------------------------------------------------------------------
    # VOTE handling (lines 11-22)
    # ------------------------------------------------------------------
    def on_vote1(self, payload: dict, sender: int) -> None:
        digest = payload.get("digest")
        share = payload.get("share")
        seq = payload.get("seq", 0)
        if not isinstance(digest, bytes) or not isinstance(share, SignatureShare):
            return
        if share.signer != sender:
            return  # relayed shares must carry their true signer
        if not self.services.threshold.share_verify(digest, share, sender):
            return
        if self._on_vote_seq is not None:
            self._on_vote_seq(sender, int(seq))
        bucket = self._shares.setdefault(digest, {})
        if sender in bucket:
            return
        bucket[sender] = share
        # Seeing votes means the instance is live: arm the obligation timer
        # even if the INIT has not reached us yet.
        self._start_expiration_timer()
        self._check_one_quorum(digest)

    def _check_one_quorum(self, digest: bytes) -> None:
        if 1 in self.delivered:
            return
        bucket = self._shares.get(digest)
        if bucket is None or len(bucket) < self.services.quorum:
            return
        try:
            proof = self.services.threshold.combine(digest, bucket.values())
        except ThresholdError:  # pragma: no cover - shares pre-verified
            return
        self._proof = (digest, proof)
        self.services.broadcast(
            DELIVER_KIND,
            {"iid": self.iid, "digest": digest, "proof": proof},
            proof.wire_size() + 32,
        )
        self._proof_rebroadcast = True
        self._deliver_one(digest)

    def on_vote0(self, payload: dict, sender: int) -> None:
        if sender in self._zero_votes:
            return
        seq = payload.get("seq")
        if self._on_vote_seq is not None and isinstance(seq, int) and seq > 0:
            self._on_vote_seq(sender, seq)
        self._zero_votes.add(sender)
        self._start_expiration_timer()
        if (
            len(self._zero_votes) >= self.services.small_quorum
            and not self._sent_zero
        ):
            self._broadcast_vote0()  # relay (lines 19-20)
        if len(self._zero_votes) >= self.services.quorum and 0 not in self.delivered:
            self.delivered.add(0)  # lines 21-22
            self._on_deliver(0, None)

    # ------------------------------------------------------------------
    # DELIVER proofs (lines 15-18)
    # ------------------------------------------------------------------
    def on_deliver(self, payload: dict, sender: int) -> None:
        digest = payload.get("digest")
        proof = payload.get("proof")
        if not isinstance(digest, bytes) or not isinstance(proof, ThresholdSignature):
            return
        if not self.services.threshold.verify_full(proof, digest):
            return
        if self._proof is None:
            self._proof = (digest, proof)
        self._start_expiration_timer()
        self._maybe_deliver_with_proof(sender)

    def _maybe_deliver_with_proof(self, proof_sender: Optional[int] = None) -> None:
        if self._proof is None or 1 in self.delivered:
            return
        digest, proof = self._proof
        if self.message is None or self.message_digest != digest:
            # We hold a proof for an m we do not have: recover it from a
            # process that demonstrably has it — a share signer (it
            # validated m) or the proof's forwarder.  Never ourselves, and
            # retry a different holder on each new lead.
            candidates = list(self._shares.get(digest, {}))
            if proof_sender is not None:
                candidates.append(proof_sender)
            for target in candidates:
                if target == self.services.pid or target in self._fetched_from:
                    continue
                self._fetched_from.add(target)
                self.services.send(target, FETCH_KIND, {"iid": self.iid}, 8)
                break
            return
        if not self._proof_rebroadcast:
            self._proof_rebroadcast = True
            self.services.broadcast(
                DELIVER_KIND,
                {"iid": self.iid, "digest": digest, "proof": proof},
                proof.wire_size() + 32,
            )
        self._deliver_one(digest)

    def _deliver_one(self, digest: bytes) -> None:
        if 1 in self.delivered or self.message is None:
            return
        self.delivered.add(1)
        self._on_deliver(1, self.message)

    def on_fetch(self, payload: dict, sender: int) -> None:
        """Serve a stored INIT to a process recovering the message."""
        if self._init_raw is not None:
            cipher = self._init_raw["cipher"]
            size = (
                cipher.wire_size()
                + _PREDS_BYTES_PER_NODE * len(self._init_raw["preds"])
                + 64
            )
            self.services.send(sender, INIT_KIND, self._init_raw, size)

    # ------------------------------------------------------------------
    # Timeout (lines 23-24)
    # ------------------------------------------------------------------
    def _on_timeout(self) -> None:
        if self.delivered:
            return
        # Broadcast 0 (even if we voted 1) so the instance cannot hang, and
        # forward the broadcaster's message for VVB-Obligation.
        self._sent_zero = False
        self._broadcast_vote0()
        if self._init_raw is not None:
            cipher = self._init_raw["cipher"]
            size = (
                cipher.wire_size()
                + _PREDS_BYTES_PER_NODE * len(self._init_raw["preds"])
                + 64
            )
            self.services.broadcast(INIT_KIND, self._init_raw, size)


__all__ = [
    "VvbInstance",
    "message_digest",
    "INIT_KIND",
    "VOTE1_KIND",
    "VOTE0_KIND",
    "DELIVER_KIND",
    "FETCH_KIND",
]
