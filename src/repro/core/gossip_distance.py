"""Epidemic distance estimation for open-membership scale (ROADMAP item 5).

The probe warm-up of §IV-B1 is all-to-all: every node broadcasts a probe
per round, so one round costs O(n²) messages — fine at n=32, a production
blocker at thousands of nodes.  :class:`GossipDistanceEstimator` replaces
it with flow-updating-style epidemic averaging: each round, every node
exchanges a compact (distance-vector, weight) summary with ``fanout``
seeded-random peers, so a round costs O(n·fanout) messages while estimates
of *every* ``d_ij`` still converge network-wide.

Direct samples stay exactly what they are in the probe design — node ``i``
pairs its reference clock value with the peer's sequence reading and folds
``d_ij = seq_j - s_ref`` into the median window (the parent class).  What
gossip adds is a second, relayed layer: when ``i`` has a direct estimate
to relay ``j`` and ``j``'s summary carries ``d_jk``, then

    d_ik = lat(i,k) + skew_k - skew_i
         ≈ (lat(i,j) + skew_j - skew_i) + (lat(j,k) + skew_k - skew_j)
         = d_ij + d_jk

— the clock-offset components compose *exactly* (they telescope), and the
latency component over-estimates by the triangle-inequality slack of the
detour through ``j``.  That slack is the estimator's intrinsic error, the
quantity the ``ablation_distance_error`` experiment sweeps against
λ-validation failures.  Relayed entries carry a weight that decays per
hop; weighted averaging across independently-routed copies pulls the
estimate toward the best available path, and a direct sample (weight 1.0,
no slack) always supersedes the gossip layer.

Peer choice per round is a pure function of ``(seed, pid, incarnation,
round)`` via :func:`repro.net.dissemination.seeded_sample` — no shared RNG
stream is consumed, so gossip runs stay bit-deterministic and
shard-invariant, the same property the gossip *dissemination* strategy
relies on.

Churn: crash/recovery bumps a node's incarnation.  Peers that see a
higher incarnation in a gossip exchange drop their (possibly stale)
entries for that node and re-converge from the recovering node's fresh
re-estimation burst — no operator action, no global restart.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.distance import DEFAULT_WINDOW, DistanceEstimator
from repro.net.dissemination import seeded_sample

#: Default peers contacted per gossip round (constant, NOT a function of n).
DEFAULT_GOSSIP_FANOUT = 3

#: Default number of scheduled warm-up gossip rounds.
DEFAULT_GOSSIP_ROUNDS = 6

#: Weight multiplier per relay hop: a relayed estimate is worth half the
#: relay's own confidence in it, so multi-hop detours fade geometrically.
HOP_DECAY = 0.5

#: Gossip-layer weights saturate here; direct medians implicitly carry 1.0.
MAX_WEIGHT = 1.0


class GossipDistanceEstimator(DistanceEstimator):
    """Constant-fan-out epidemic ``d_ij`` estimation.

    Drop-in replacement for :class:`DistanceEstimator`: ``record`` /
    ``predict`` / ``distance`` keep their contracts (vote piggybacks keep
    refreshing direct samples unchanged), so ``requested_sequence`` and
    λ-validation never see the difference.  The node drives the epidemic
    part: :meth:`begin_round` names this round's peers, :meth:`summary`
    builds the wire vector, :meth:`merge` folds a peer's vector in.
    """

    def __init__(
        self,
        n: int,
        self_pid: int,
        *,
        window: int = DEFAULT_WINDOW,
        fanout: int = DEFAULT_GOSSIP_FANOUT,
        seed: int = 0,
    ) -> None:
        super().__init__(n, self_pid, window=window)
        if fanout < 1:
            raise ValueError("gossip fanout must be >= 1")
        self.fanout = fanout
        self.seed = seed
        #: Relayed estimates: peer -> (estimate_us, weight in (0, 1]).
        self._gossip: Dict[int, Tuple[float, float]] = {}
        #: Highest incarnation seen per peer (crash/recovery epochs).
        self._incarnations: Dict[int, int] = {}
        # Wire accounting for the O(n·fanout) bound and convergence metric.
        self.rounds_started = 0
        self.requests_sent = 0
        self.max_requests_per_round = 0
        self.samples_recorded = 0
        self.vectors_merged = 0
        self.entries_merged = 0
        self.stale_entries_dropped = 0
        #: Number of rounds this node had started when it first reached
        #: full coverage (every peer estimated); ``None`` until then.
        self.converged_round: Optional[int] = None

    # ------------------------------------------------------------------
    # Round-driving surface (called by the node)
    # ------------------------------------------------------------------
    def peers_for_round(self, round_no: int, incarnation: int = 0) -> List[int]:
        """The ``fanout`` peers this node contacts in ``round_no``.

        A pure function of (seed, pid, incarnation, round): every shard
        worker computes the same sets without any shared RNG stream, and a
        recovered incarnation walks a fresh peer sequence.
        """
        pool = [p for p in range(self.n) if p != self.self_pid]
        token = f"gdist|{self.seed}|{self.self_pid}|{incarnation}|{round_no}"
        return seeded_sample(token.encode(), pool, self.fanout)

    def begin_round(self, round_no: int, incarnation: int = 0) -> List[int]:
        """Account one round and return its peer set."""
        peers = self.peers_for_round(round_no, incarnation)
        self.rounds_started += 1
        self.requests_sent += len(peers)
        if len(peers) > self.max_requests_per_round:
            self.max_requests_per_round = len(peers)
        return peers

    # ------------------------------------------------------------------
    # Wire vector
    # ------------------------------------------------------------------
    def summary(self) -> Tuple[Tuple[int, float, float], ...]:
        """This node's (peer, estimate, weight) vector for the wire.

        Direct medians ship at full weight; gossip-layer entries ship at
        their decayed weight.  The self entry (0.0 anchor) is omitted —
        the receiver adds its own distance to us when composing.
        """
        out: List[Tuple[int, float, float]] = []
        for peer in range(self.n):
            if peer == self.self_pid:
                continue
            history = self._history.get(peer)
            if history:
                out.append((peer, self._median(history), MAX_WEIGHT))
            else:
                entry = self._gossip.get(peer)
                if entry is not None:
                    out.append((peer, entry[0], entry[1]))
        return tuple(out)

    def merge(
        self, via: int, vector: Iterable[Sequence], incarnation: int = 0
    ) -> int:
        """Fold ``via``'s summary in; returns the number of entries used.

        Every relayed ``d_{via,k}`` composes with our ``d_{self,via}``
        into a candidate ``d_{self,k}`` (offsets telescope; latency picks
        up the triangle slack of the detour) and is averaged into the
        gossip layer under its hop-decayed weight.  Entries for peers we
        measure directly are skipped — a direct median is strictly better.
        """
        self.note_incarnation(via, incarnation)
        d_via = self.distance(via)
        if d_via is None:
            return 0
        merged = 0
        for item in vector:
            try:
                peer, est, weight = item
            except (TypeError, ValueError):
                continue
            if (
                not isinstance(peer, int)
                or peer == self.self_pid
                or peer == via
                or not (0 <= peer < self.n)
                or not weight > 0.0
            ):
                continue
            if self._history.get(peer):
                continue
            cand_v = d_via + float(est)
            cand_w = min(float(weight), MAX_WEIGHT) * HOP_DECAY
            old = self._gossip.get(peer)
            if old is None:
                self._gossip[peer] = (cand_v, cand_w)
            else:
                old_v, old_w = old
                total = old_w + cand_w
                self._gossip[peer] = (
                    (old_v * old_w + cand_v * cand_w) / total,
                    min(total, MAX_WEIGHT),
                )
            merged += 1
        if merged:
            self.vectors_merged += 1
            self.entries_merged += merged
            self._check_converged()
        return merged

    def note_incarnation(self, peer: int, incarnation: int) -> None:
        """Churn handling: a peer speaking with a higher incarnation just
        recovered from a crash — drop our stale direct and relayed
        estimates for it so its re-estimation burst rebuilds them fresh."""
        if peer == self.self_pid or not (0 <= peer < self.n):
            return
        seen = self._incarnations.get(peer, 0)
        if incarnation <= seen:
            return
        self._incarnations[peer] = incarnation
        dropped = False
        if self._history.pop(peer, None) is not None:
            self._samples.pop(peer, None)
            dropped = True
        if self._gossip.pop(peer, None) is not None:
            dropped = True
        if dropped:
            self.stale_entries_dropped += 1

    # ------------------------------------------------------------------
    # DistanceEstimator surface, extended with the gossip fallback
    # ------------------------------------------------------------------
    def record(self, peer: int, s_ref: int, seq_j: int) -> None:
        super().record(peer, s_ref, seq_j)
        self.samples_recorded += 1
        self._check_converged()

    def distance(self, peer: int) -> Optional[float]:
        direct = super().distance(peer)
        if direct is not None:
            return direct
        entry = self._gossip.get(peer)
        if entry is not None:
            return entry[0]
        return None

    def peers_measured(self) -> int:
        """Peers with *any* estimate — direct median or relayed."""
        covered = {
            pid
            for pid, history in self._history.items()
            if pid != self.self_pid and history
        }
        covered.update(self._gossip)
        covered.discard(self.self_pid)
        return len(covered)

    def _check_converged(self) -> None:
        if self.converged_round is None and self.peers_measured() >= self.n - 1:
            self.converged_round = self.rounds_started

    # ------------------------------------------------------------------
    # Introspection for metrics / wire-stat assertions
    # ------------------------------------------------------------------
    def gossip_stats(self) -> Dict[str, float]:
        return {
            "fanout": self.fanout,
            "rounds_started": self.rounds_started,
            "requests_sent": self.requests_sent,
            "max_requests_per_round": self.max_requests_per_round,
            "samples_recorded": self.samples_recorded,
            "vectors_merged": self.vectors_merged,
            "entries_merged": self.entries_merged,
            "stale_entries_dropped": self.stale_entries_dropped,
            "converged_round": (
                -1 if self.converged_round is None else self.converged_round
            ),
            "coverage": self.coverage(),
        }


__all__ = [
    "GossipDistanceEstimator",
    "DEFAULT_GOSSIP_FANOUT",
    "DEFAULT_GOSSIP_ROUNDS",
    "HOP_DECAY",
    "MAX_WEIGHT",
]
