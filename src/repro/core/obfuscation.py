"""Transaction-obfuscation schemes for commit-reveal.

Two interchangeable implementations behind one interface:

- :class:`VssObfuscation` — the full (2f+1, n) VSS scheme of §II-B: any
  quorum of committers can reveal, no trust in the proposer.
- :class:`HashCommitObfuscation` — the hash-based commitment scheme the
  Rust prototype uses (§VI-A, Halevi–Micali [13]): cheap, but the reveal
  key is held by the proposer, who broadcasts it at commit time.  A crashed
  or malicious proposer delays (never forges) the reveal — the trade-off
  the paper accepts for performance and that our ablation bench quantifies.

Both produce cipher objects exposing ``cipher_id`` / ``wire_size`` /
``canonical`` so the rest of the stack is scheme-agnostic.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

from repro.crypto.hashing import digest_of, sha256_bytes
from repro.crypto.vss_encryption import (
    DecryptionShare,
    VssCipher,
    VssError,
    VssScheme,
)
from repro.crypto.shamir import ShamirShare
from repro.sim.rng import derive_seed


class VssObfuscation:
    """The §II-B scheme: a thin, proposer-aware façade over VssScheme."""

    name = "vss"

    def __init__(self, threshold: int, n: int, *, seed: int = 0) -> None:
        self._scheme = VssScheme(threshold, n, seed=seed)

    @property
    def threshold(self) -> int:
        return self._scheme.threshold

    def encrypt(self, plaintext: bytes, rng, proposer: int = 0) -> VssCipher:
        # VSS ciphers are proposer-agnostic: any 2f+1 holders can reveal.
        return self._scheme.encrypt(plaintext, rng)

    def check_dealing(self, cipher: VssCipher, pid: int) -> bool:
        return self._scheme.check_dealing(cipher, pid)

    def partial_decrypt(self, cipher: VssCipher, pid: int) -> DecryptionShare:
        return self._scheme.partial_decrypt(cipher, pid)

    def verify_decryption_share(self, cipher, share) -> bool:
        return self._scheme.verify_decryption_share(cipher, share)

    def decrypt(self, cipher: VssCipher, shares: Iterable[DecryptionShare]) -> bytes:
        return self._scheme.decrypt(cipher, shares)


@dataclass(frozen=True)
class HashCommitCipher:
    """Commitment + proposer-keyed body; id binds both."""

    cipher_id: bytes
    body: bytes
    commitment: bytes
    proposer: int

    def wire_size(self) -> int:
        return 32 + len(self.body) + 32

    def canonical(self) -> tuple:
        return (self.cipher_id,)


@dataclass(frozen=True)
class HashRevealShare:
    """The proposer's reveal: the symmetric key and commitment nonce."""

    cipher_id: bytes
    key: bytes
    nonce: bytes

    def wire_size(self) -> int:
        return 32 + 32 + 32

    def canonical(self) -> tuple:
        return (self.cipher_id, self.key, self.nonce)


def _stream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(sha256_bytes(key + counter.to_bytes(8, "big")))
        counter += 1
    return bytes(out[:length])


class HashCommitObfuscation:
    """Prototype-style commit-reveal: proposer-held key, threshold = 1.

    The proposer keeps its opening material (key + commitment nonce) in a
    local table until reveal time — exactly the state a real proposer must
    hold between propose and commit.
    """

    name = "hash"

    def __init__(self, threshold: int, n: int, *, seed: int = 0) -> None:
        self.n = n
        self.threshold = 1  # a single (proposer) share reveals
        self._root = hashlib.sha256(
            derive_seed(seed, "hash-commit").to_bytes(8, "big")
        ).digest()
        # Proposer-side opening material: cipher_id -> (proposer, key, nonce).
        self._openings: dict = {}

    def encrypt(self, plaintext: bytes, rng, proposer: int) -> HashCommitCipher:
        raw = bytes(int(b) for b in rng.integers(0, 256, size=32))
        key = hmac.new(self._root, raw, hashlib.sha256).digest()
        nonce = hmac.new(key, b"nonce", hashlib.sha256).digest()
        body = bytes(a ^ b for a, b in zip(plaintext, _stream(key, len(plaintext))))
        commitment = sha256_bytes(plaintext + nonce)
        cipher_id = digest_of((body, commitment, proposer))
        self._openings[cipher_id] = (proposer, key, nonce)
        return HashCommitCipher(cipher_id, body, commitment, proposer)

    def check_dealing(self, cipher: HashCommitCipher, pid: int) -> bool:
        # Nothing verifiable before reveal; binding is checked at reveal.
        return isinstance(cipher, HashCommitCipher)

    def partial_decrypt(self, cipher: HashCommitCipher, pid: int) -> HashRevealShare:
        opening = self._openings.get(cipher.cipher_id)
        if opening is None or pid != opening[0] or pid != cipher.proposer:
            raise VssError("only the proposer holds the hash-commit key")
        _, key, nonce = opening
        return HashRevealShare(cipher.cipher_id, key, nonce)

    def verify_decryption_share(self, cipher, share) -> bool:
        if not isinstance(share, HashRevealShare):
            return False
        if share.cipher_id != cipher.cipher_id:
            return False
        plaintext = bytes(
            a ^ b for a, b in zip(cipher.body, _stream(share.key, len(cipher.body)))
        )
        return sha256_bytes(plaintext + share.nonce) == cipher.commitment

    def decrypt(self, cipher: HashCommitCipher, shares: Iterable[Any]) -> bytes:
        for share in shares:
            if self.verify_decryption_share(cipher, share):
                return bytes(
                    a ^ b
                    for a, b in zip(cipher.body, _stream(share.key, len(cipher.body)))
                )
        raise VssError("no valid reveal share for hash-commit cipher")


def make_obfuscation(
    scheme: str, threshold: int, n: int, *, seed: int = 0
):
    """Factory: ``"vss"`` or ``"hash"``."""
    if scheme == "vss":
        return VssObfuscation(threshold, n, seed=seed)
    if scheme == "hash":
        return HashCommitObfuscation(threshold, n, seed=seed)
    raise ValueError(f"unknown obfuscation scheme {scheme!r}")


__all__ = [
    "VssObfuscation",
    "HashCommitObfuscation",
    "HashCommitCipher",
    "HashRevealShare",
    "make_obfuscation",
]
