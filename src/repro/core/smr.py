"""SMR correctness oracles (Definition 1 and Definition 6).

These checkers run over finished simulations and verify the paper's
guarantees hold *in the implementation*, not just in the proofs:

- **SMR-Safety**: every pair of correct replicas' committed logs are
  prefix-ordered (one is a prefix of the other).
- **Lower-boundedness** (BOC-Validity / Lemma 2): every decided sequence
  number ``s`` satisfies ``s ≥ MIN_seq(t) - λ`` where ``MIN_seq`` ranges
  over the *correct* processes' perceived sequence numbers.
- **Order-fairness oracle** for attack experiments: given a causal pair
  (victim transaction ``t1`` observed by the attacker before issuing
  ``t2``), check whether ``t2`` was sequenced before ``t1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def is_prefix(shorter: Sequence, longer: Sequence) -> bool:
    """True iff ``shorter`` is a prefix of ``longer``."""
    if len(shorter) > len(longer):
        return False
    return all(a == b for a, b in zip(shorter, longer))


def check_prefix_consistency(
    outputs: Dict[int, List[Tuple[int, bytes]]],
) -> Optional[str]:
    """Verify SMR-Safety over the committed logs of correct replicas.

    ``outputs`` maps pid -> ordered list of ``(seq, cipher_id)``.
    Returns ``None`` when safe, else a human-readable violation report.
    """
    pids = sorted(outputs)
    for i in range(len(pids)):
        for j in range(i + 1, len(pids)):
            a, b = outputs[pids[i]], outputs[pids[j]]
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            if not is_prefix(shorter, longer):
                diverge = next(
                    idx
                    for idx, (x, y) in enumerate(zip(shorter, longer))
                    if x != y
                )
                return (
                    f"SMR-Safety violated between pid {pids[i]} and pid "
                    f"{pids[j]}: logs diverge at position {diverge}: "
                    f"{shorter[diverge]} vs {longer[diverge]}"
                )
    return None


def check_output_sorted(output: Sequence[Tuple[int, bytes]]) -> Optional[str]:
    """The committed log must be ordered by decided sequence number
    (Definition 5), ties broken by cipher id."""
    for idx in range(1, len(output)):
        if output[idx - 1] > output[idx]:
            return (
                f"committed log out of order at position {idx}: "
                f"{output[idx - 1]} > {output[idx]}"
            )
    return None


def check_lower_bounded(
    decided: Dict[bytes, int],
    perceived_by_correct: Dict[int, Dict[bytes, int]],
    lambda_us: int,
) -> List[str]:
    """Definition 6: for every decided ``(cipher_id, s)``, verify
    ``s ≥ min over correct processes of seq_i(t) - λ``.

    ``perceived_by_correct`` maps pid -> {cipher_id -> perceived seq}.
    Returns a list of violation descriptions (empty when the property holds).
    """
    violations: List[str] = []
    for cipher_id, s in decided.items():
        seqs = [
            seqs_of_i[cipher_id]
            for seqs_of_i in perceived_by_correct.values()
            if cipher_id in seqs_of_i
        ]
        if not seqs:
            continue
        min_seq = min(seqs)
        if s < min_seq - lambda_us:
            violations.append(
                f"cipher {cipher_id.hex()[:12]}: decided s={s} below "
                f"MIN_seq - lambda = {min_seq - lambda_us}"
            )
    return violations


def ordering_of(
    output: Sequence[Tuple[int, bytes]], cipher_id: bytes
) -> Optional[int]:
    """Position of a cipher in a committed log, or None."""
    for idx, (_, cid) in enumerate(output):
        if cid == cipher_id:
            return idx
    return None


def front_running_succeeded(
    output: Sequence[Tuple[int, bytes]],
    victim_cipher: bytes,
    attacker_cipher: bytes,
) -> Optional[bool]:
    """Did the attacker's (causally later) transaction get sequenced before
    the victim's?  None when either transaction is not committed yet."""
    v = ordering_of(output, victim_cipher)
    a = ordering_of(output, attacker_cipher)
    if v is None or a is None:
        return None
    return a < v


__all__ = [
    "is_prefix",
    "check_prefix_consistency",
    "check_output_sorted",
    "check_lower_bounded",
    "ordering_of",
    "front_running_succeeded",
]
