"""Distance estimation and sequence-number prediction (§IV-B).

When a broadcaster ``p_i`` sends a cipher it remembers the reference value
``s_ref`` of its ordering clock; every peer ``p_j`` piggybacks its perceived
sequence number ``seq_j(t)`` on its votes, letting ``p_i`` maintain
``d_ij = seq_j(t) - s_ref`` — one-way latency *plus* the clock offset
between the two nodes.  After a warm-up period the broadcaster predicts the
sequence number each peer will perceive for a fresh transaction:

    S_t = { s_ref + d_ij } for every j

and requests the ``(n-f)``-th smallest value of ``S_t`` (§IV-B1, Lemma 2).

Each peer's estimate is the median of its last ``window`` observations —
the standard robust RTT estimator: a single outlier (one queueing spike,
one adversarially delayed probe) cannot move it, yet after a genuine
regime change (routes shifting, or adversarial delays ending at GST) it
re-converges within ``window/2`` fresh samples.  A Byzantine peer can only
poison its *own* entry of ``S_t``, which Lemma 2 tolerates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

DEFAULT_WINDOW = 5


class DistanceEstimator:
    """Median-of-recent-samples estimates of ``d_ij`` to every peer."""

    def __init__(self, n: int, self_pid: int, *, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.n = n
        self.self_pid = self_pid
        self.window = window
        self._history: Dict[int, Deque[float]] = {
            self_pid: deque([0.0], maxlen=window)
        }
        self._samples: Dict[int, int] = {self_pid: 1}

    @staticmethod
    def _median(values: Sequence[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def record(self, peer: int, s_ref: int, seq_j: int) -> None:
        """Fold in one observation ``d = seq_j - s_ref`` for ``peer``.

        Samples claiming to be from ourselves are dropped: the self entry
        is the 0.0 anchor seeded at construction (``d_ii = 0`` by
        definition) and a spoofed or reflected sample must not displace it.
        """
        if peer == self.self_pid or not (0 <= peer < self.n):
            return
        sample = float(seq_j - s_ref)
        history = self._history.get(peer)
        if history is None:
            history = deque(maxlen=self.window)
            self._history[peer] = history
        history.append(sample)
        self._samples[peer] = self._samples.get(peer, 0) + 1

    def distance(self, peer: int) -> Optional[float]:
        history = self._history.get(peer)
        if not history:
            return None
        return self._median(history)

    def samples(self, peer: int) -> int:
        return self._samples.get(peer, 0)

    def peers_measured(self) -> int:
        """Number of *peers* (self excluded) with at least one sample."""
        return sum(
            1
            for pid, history in self._history.items()
            if pid != self.self_pid and history
        )

    def coverage(self) -> float:
        """Fraction of peers (self excluded) with at least one sample.

        The self entry is seeded at construction and carries no
        measurement information, so it must not contribute: a node that
        has heard from nobody reports 0.0, not ``1/n``.
        """
        if self.n <= 1:
            return 1.0
        return self.peers_measured() / (self.n - 1)

    def ready(self, quorum: int) -> bool:
        """Enough peers measured to predict a quorum of sequence numbers?

        Counts measured peers only — the free self anchor does not make a
        node "ready" before any probe reply has arrived.
        """
        return self.peers_measured() >= quorum

    def _blank_value(self) -> float:
        """Fill-in for unmeasured (possibly Byzantine-silent) peers: the
        median of known distances, the least-biased neutral guess."""
        known = [self._median(h) for h in self._history.values() if h]
        if not known:
            return 0.0
        return self._median(known)

    def predict(self, s_ref: int) -> Tuple[int, ...]:
        """The prediction set ``S_t`` indexed by pid.

        Missing peers get the blank value (§IV-B1: "values that may be
        missing from Byzantine processes are filled with a blank value").
        """
        blank = self._blank_value()
        out = []
        for j in range(self.n):
            d = self.distance(j)
            out.append(int(round(s_ref + (d if d is not None else blank))))
        return tuple(out)


def requested_sequence(predictions: Sequence[int], f: int) -> int:
    """The sequence number a broadcaster requests: the ``(n-f)``-th smallest
    value of ``S_t`` (1-based), per §IV-B1.

    With ``n = 3f+1`` this is the ``(2f+1)``-th smallest: at most ``f``
    predictions exceed it, so it is lower bounded by the perception of at
    least one correct process (Lemma 2).
    """
    n = len(predictions)
    if not (0 <= f < n):
        raise ValueError(f"invalid f={f} for n={n}")
    rank = n - f  # 1-based rank
    return sorted(predictions)[rank - 1]


__all__ = ["DistanceEstimator", "requested_sequence"]
