"""Lyra's core: the paper's contribution (Algorithms 1-4).

- :mod:`repro.core.vvb` — Validating Value Broadcast (Algorithm 1).
- :mod:`repro.core.dbft` — modified DBFT binary consensus (Algorithm 3).
- :mod:`repro.core.distance` — sequence-number prediction (§IV-B).
- :mod:`repro.core.commit` — the Commit protocol (Algorithm 4).
- :mod:`repro.core.node` — the full Lyra replica (ordered-propose,
  Algorithm 2, plus batching and the client path).
- :mod:`repro.core.smr` — SMR-safety / lower-boundedness oracles.
"""

from repro.core.types import AcceptedEntry, Batch, InstanceId, Transaction
from repro.core.clocks import OrderingClock, PerceivedSequence
from repro.core.distance import DistanceEstimator, requested_sequence
from repro.core.services import ProtocolServices
from repro.core.bv_broadcast import BinaryValueBroadcast
from repro.core.vvb import VvbInstance, message_digest
from repro.core.dbft import BinaryConsensus
from repro.core.commit import CommitConfig, CommitState, NO_PENDING
from repro.core.batching import Mempool
from repro.core.obfuscation import (
    HashCommitObfuscation,
    VssObfuscation,
    make_obfuscation,
)
from repro.core.node import LyraConfig, LyraNode
from repro.core.smr import (
    check_lower_bounded,
    check_output_sorted,
    check_prefix_consistency,
    front_running_succeeded,
)

__all__ = [
    "AcceptedEntry",
    "Batch",
    "InstanceId",
    "Transaction",
    "OrderingClock",
    "PerceivedSequence",
    "DistanceEstimator",
    "requested_sequence",
    "ProtocolServices",
    "BinaryValueBroadcast",
    "VvbInstance",
    "message_digest",
    "BinaryConsensus",
    "CommitConfig",
    "CommitState",
    "NO_PENDING",
    "Mempool",
    "HashCommitObfuscation",
    "VssObfuscation",
    "make_obfuscation",
    "LyraConfig",
    "LyraNode",
    "check_lower_bounded",
    "check_output_sorted",
    "check_prefix_consistency",
    "front_running_succeeded",
]
