"""Wiring between protocol instances and their host node.

VVB / DBFT / Commit instances are plain state machines: they never touch
the network or the simulator directly.  A :class:`ProtocolServices` bundle
— constructed by the host node (or by a lightweight test harness) — gives
them identity (pid, n, f), time, cryptographic capabilities, and
``send``/``broadcast`` functions.  This keeps every protocol unit-testable
without spinning up a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS
from repro.crypto.signatures import KeyRegistry, Signer
from repro.crypto.threshold import ThresholdScheme, ThresholdSigner
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.timers import TimerWheel


class NullTransport:
    """Fallback transport for services built without ``send_fn`` /
    ``broadcast_fn``.

    Historically the defaults were silent no-op lambdas, which made a
    mis-wired harness indistinguishable from a quiet protocol: messages
    vanished without a trace.  The null transport still drops everything
    (protocol state machines stay unit-testable without a network) but
    counts every drop and remembers the last message, so tests can assert
    ``services.dropped_messages == 0`` — or spot a wiring bug immediately.
    """

    def __init__(self) -> None:
        self.dropped_sends = 0
        self.dropped_broadcasts = 0
        self.last_dropped: Optional[Message] = None

    @property
    def dropped(self) -> int:
        return self.dropped_sends + self.dropped_broadcasts

    def send(self, dst: int, message: Message) -> None:
        self.dropped_sends += 1
        self.last_dropped = message

    def broadcast(self, message: Message) -> None:
        self.dropped_broadcasts += 1
        self.last_dropped = message


@dataclass
class ProtocolServices:
    """Everything a protocol instance needs from its host."""

    pid: int
    n: int
    f: int
    sim: Simulator
    delta_us: int
    signer: Signer
    registry: KeyRegistry
    threshold: ThresholdScheme
    costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)
    #: Point-to-point send: (dst, Message) -> None.  ``None`` wires a
    #: drop-counting :class:`NullTransport` instead of losing messages
    #: invisibly.
    send_fn: Optional[Callable[[int, Message], None]] = None
    #: Broadcast to all replicas: (Message) -> None.  In a full cluster
    #: this is the host node's ``_proto_broadcast``, which is also where
    #: Algorithm-4 commit state piggybacks onto every outgoing broadcast:
    #: a full ``"pb"`` report, or — with ``CommitConfig.delta_piggyback``
    #: — a ``"pbd"`` delta that collapses to a 16-byte "no change since
    #: seq k" marker whenever locked/min-pending/accepted state is
    #: unchanged.  Protocol instances stay oblivious: they call
    #: :meth:`broadcast` with their own payload and the transport layer
    #: decorates it.
    broadcast_fn: Optional[Callable[[Message], None]] = None
    timers: Optional[TimerWheel] = None
    threshold_signer: Optional[ThresholdSigner] = None
    null_transport: Optional[NullTransport] = None

    def __post_init__(self) -> None:
        if self.n <= 3 * self.f and self.f > 0:
            raise ValueError(f"need n > 3f (n={self.n}, f={self.f})")
        if self.timers is None:
            self.timers = TimerWheel(self.sim)
        if self.threshold_signer is None:
            self.threshold_signer = self.threshold.share_signer(self.pid)
        if self.send_fn is None or self.broadcast_fn is None:
            if self.null_transport is None:
                self.null_transport = NullTransport()
            if self.send_fn is None:
                self.send_fn = self.null_transport.send
            if self.broadcast_fn is None:
                self.broadcast_fn = self.null_transport.broadcast

    @property
    def dropped_messages(self) -> int:
        """Messages swallowed by the null transport (0 when fully wired)."""
        return self.null_transport.dropped if self.null_transport else 0

    @property
    def quorum(self) -> int:
        """``n - f`` — the Byzantine quorum (≥ 2f+1 when n = 3f+1)."""
        return self.n - self.f

    @property
    def small_quorum(self) -> int:
        """``f + 1`` — guarantees at least one correct process."""
        return self.f + 1

    def send(self, dst: int, kind: str, payload: Any, size: int = 0) -> None:
        self.send_fn(dst, Message(kind, payload, size))

    def broadcast(self, kind: str, payload: Any, size: int = 0) -> None:
        # ``size`` is the protocol payload only; piggyback bytes are
        # accounted by the decorating broadcast_fn (see field doc above).
        self.broadcast_fn(Message(kind, payload, size))


__all__ = ["ProtocolServices", "NullTransport"]
