"""Wiring between protocol instances and their host node.

VVB / DBFT / Commit instances are plain state machines: they never touch
the network or the simulator directly.  A :class:`ProtocolServices` bundle
— constructed by the host node (or by a lightweight test harness) — gives
them identity (pid, n, f), time, cryptographic capabilities, and
``send``/``broadcast`` functions.  This keeps every protocol unit-testable
without spinning up a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.crypto.cost import CryptoCosts, DEFAULT_COSTS
from repro.crypto.signatures import KeyRegistry, Signer
from repro.crypto.threshold import ThresholdScheme, ThresholdSigner
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.timers import TimerWheel


@dataclass
class ProtocolServices:
    """Everything a protocol instance needs from its host."""

    pid: int
    n: int
    f: int
    sim: Simulator
    delta_us: int
    signer: Signer
    registry: KeyRegistry
    threshold: ThresholdScheme
    costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)
    #: Point-to-point send: (dst, Message) -> None.
    send_fn: Callable[[int, Message], None] = lambda dst, msg: None
    #: Broadcast to all replicas: (Message) -> None.
    broadcast_fn: Callable[[Message], None] = lambda msg: None
    timers: Optional[TimerWheel] = None
    threshold_signer: Optional[ThresholdSigner] = None

    def __post_init__(self) -> None:
        if self.n <= 3 * self.f and self.f > 0:
            raise ValueError(f"need n > 3f (n={self.n}, f={self.f})")
        if self.timers is None:
            self.timers = TimerWheel(self.sim)
        if self.threshold_signer is None:
            self.threshold_signer = self.threshold.share_signer(self.pid)

    @property
    def quorum(self) -> int:
        """``n - f`` — the Byzantine quorum (≥ 2f+1 when n = 3f+1)."""
        return self.n - self.f

    @property
    def small_quorum(self) -> int:
        """``f + 1`` — guarantees at least one correct process."""
        return self.f + 1

    def send(self, dst: int, kind: str, payload: Any, size: int = 0) -> None:
        self.send_fn(dst, Message(kind, payload, size))

    def broadcast(self, kind: str, payload: Any, size: int = 0) -> None:
        self.broadcast_fn(Message(kind, payload, size))


__all__ = ["ProtocolServices"]
