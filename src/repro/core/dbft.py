"""Modified DBFT binary consensus — Algorithm 3 of the paper.

DBFT [8] is a leaderless (weak-coordinator) binary Byzantine consensus.
Lyra modifies it by replacing the round-1 Binary Value Broadcast with the
Validating Value Broadcast (Algorithm 1), so that deciding the binary value
1 *also* reliably delivers the broadcaster's message ``m = (c_t, S_t)`` and
proves a supermajority validated it.  Rounds ≥ 2 (only reached when the
network is misbehaving or the broadcaster is faulty) fall back to plain
BV-broadcast of the current estimate — VVB with a trivial validation
function, as §IV-A1 notes.

Round structure at process ``p_i`` (round ``r``):

1. broadcast the estimate via VVB (r = 1) / BV-broadcast (r ≥ 2),
   start a Δ timer;
2. the round's coordinator (``r mod n``) broadcasts the first value ``w``
   delivered into its ``vvals`` (COORD);
3. once ``vvals ≠ ∅`` *and* the timer expired, broadcast AUX carrying
   ``{c}`` if the coordinator's value ``c`` is in ``vvals``, else ``vvals``;
4. wait for AUX contents from ``n - f`` distinct senders, all of whose
   values are in ``vvals``; if they form a singleton ``{v}``, adopt ``v``
   and decide it when ``v = r mod 2``; otherwise adopt the parity bit.

A process keeps participating for two rounds after deciding (line 50) so
that lagging correct processes terminate too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.core.bv_broadcast import BinaryValueBroadcast
from repro.core.services import ProtocolServices
from repro.core.vvb import VvbInstance

COORD_KIND = "lyra.coord"
AUX_KIND = "lyra.aux"

#: Hard cap on rounds — a livelock backstop for tests; DBFT terminates in
#: O(1) expected rounds after GST so hitting this indicates a bug or an
#: adversarial schedule longer than any experiment we run.
DEFAULT_MAX_ROUNDS = 64

_FS1: FrozenSet[int] = frozenset({1})
_FS0: FrozenSet[int] = frozenset({0})


class BinaryConsensus:
    """One BOC consensus instance (Algorithm 3) at one process."""

    def __init__(
        self,
        services: ProtocolServices,
        iid: Any,
        *,
        validate: Callable[[Any, Tuple[int, ...]], bool],
        on_decide: Callable[[int, Optional[Tuple[Any, Tuple[int, ...]]]], None],
        perceive: Optional[Callable[[Any], int]] = None,
        on_vote_seq: Optional[Callable[[int, int], None]] = None,
        on_message: Optional[Callable[[Tuple[Any, Tuple[int, ...]]], None]] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        self.services = services
        self.iid = iid
        self._on_decide = on_decide
        self._on_message = on_message
        self.max_rounds = max_rounds

        self.round = 1
        self.est: Optional[int] = None
        self.decided: Optional[int] = None
        self.decided_round: Optional[int] = None
        self.closed = False
        self.started = False
        self.delivered_message: Optional[Tuple[Any, Tuple[int, ...]]] = None

        self.vvb = VvbInstance(
            services,
            iid,
            validate=validate,
            on_deliver=self._vv1_deliver,
            on_vote_seq=on_vote_seq,
            perceive=perceive,
        )

        self._vvals: Dict[int, Set[int]] = {}
        self._aux: Dict[int, Dict[int, FrozenSet[int]]] = {}
        #: Incremental view of the AUX quorum condition.  Eligibility
        #: (``e ⊆ vvals``) is monotone — vvals only grows and AUX contents
        #: are immutable — so each sender is counted exactly once, when its
        #: entry first becomes eligible.  ``[count, ones, zeros, union]``
        #: per round; not-yet-eligible entries wait in ``_aux_pending``.
        self._aux_elig: Dict[int, list] = {}
        self._aux_pending: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self._coord: Dict[int, int] = {}
        self._coord_sent: Set[int] = set()
        self._timer_expired: Set[int] = set()
        self._aux_sent: Set[int] = set()
        self._advanced: Set[int] = set()
        self._bv: Dict[int, BinaryValueBroadcast] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def propose(self, cipher: Any, preds: Tuple[int, ...]) -> None:
        """``bin-propose`` at the broadcaster: vv-broadcast ``m``."""
        self.join()
        self.vvb.start(cipher, preds)

    def join(self) -> None:
        """Start participating (called on the first sign of the instance)."""
        if self.started or self.closed:
            return
        self.started = True
        self._start_round_timer(1)

    # ------------------------------------------------------------------
    # Round-state accessors
    # ------------------------------------------------------------------
    def vvals(self, r: int) -> Set[int]:
        return self._vvals.setdefault(r, set())

    def _bv_for(self, r: int) -> BinaryValueBroadcast:
        bv = self._bv.get(r)
        if bv is None:
            bv = BinaryValueBroadcast(
                self.services, self.iid, r, lambda b, r=r: self._deliver_value(r, b)
            )
            self._bv[r] = bv
        return bv

    def coordinator_of(self, r: int) -> int:
        return r % self.services.n

    # ------------------------------------------------------------------
    # Message handlers (dispatched by the host node)
    # ------------------------------------------------------------------
    def on_init(self, payload: dict, sender: int) -> None:
        self.join()
        self.vvb.on_init(payload, sender)

    def on_vote1(self, payload: dict, sender: int) -> None:
        self.join()
        self.vvb.on_vote1(payload, sender)

    def on_vote0(self, payload: dict, sender: int) -> None:
        self.join()
        self.vvb.on_vote0(payload, sender)

    def on_deliver(self, payload: dict, sender: int) -> None:
        self.join()
        self.vvb.on_deliver(payload, sender)

    def on_fetch(self, payload: dict, sender: int) -> None:
        self.vvb.on_fetch(payload, sender)

    def on_bv(self, payload: dict, sender: int) -> None:
        self.join()
        r = payload.get("round", 0)
        if not isinstance(r, int) or r < 2 or r > self.max_rounds:
            return
        self._bv_for(r).on_vote(payload.get("b"), sender)

    def on_coord(self, payload: dict, sender: int) -> None:
        self.join()
        r = payload.get("round", 0)
        w = payload.get("w")
        if not isinstance(r, int) or r < 1 or w not in (0, 1):
            return
        if sender != self.coordinator_of(r) or r in self._coord:
            return
        self._coord[r] = w
        self._maybe_send_aux(r)

    def on_aux(self, payload: dict, sender: int) -> None:
        self.join()
        r = payload.get("round", 0)
        e = payload.get("e")
        if not isinstance(r, int) or r < 1 or not isinstance(e, (tuple, list)):
            return
        eset = frozenset(v for v in e if v in (0, 1))
        if not eset:
            return
        bucket = self._aux.setdefault(r, {})
        if sender not in bucket:
            bucket[sender] = eset
            if eset <= self.vvals(r):
                self._note_eligible(r, eset)
            else:
                self._aux_pending.setdefault(r, {})[sender] = eset
            self._try_complete(r)

    # ------------------------------------------------------------------
    # Internal: value delivery into vvals
    # ------------------------------------------------------------------
    def _vv1_deliver(
        self, b: int, m: Optional[Tuple[Any, Tuple[int, ...]]]
    ) -> None:
        if b == 1 and m is not None and self.delivered_message is None:
            self.delivered_message = m
            if self._on_message is not None:
                self._on_message(m)
        self._deliver_value(1, b)

    def _deliver_value(self, r: int, b: int) -> None:
        if self.closed:
            return
        vvals = self.vvals(r)
        if b in vvals:
            return
        vvals.add(b)
        # Promote parked AUX entries that this value makes eligible.
        pending = self._aux_pending.get(r)
        if pending:
            for sender in [s for s, e in pending.items() if e <= vvals]:
                self._note_eligible(r, pending.pop(sender))
        # Coordinator duty (lines 37-39): broadcast the first value.
        if (
            self.services.pid == self.coordinator_of(r)
            and r not in self._coord_sent
        ):
            self._coord_sent.add(r)
            self.services.broadcast(
                COORD_KIND, {"iid": self.iid, "round": r, "w": b}, 10
            )
        self._maybe_send_aux(r)
        self._try_complete(r)

    # ------------------------------------------------------------------
    # Internal: round progression
    # ------------------------------------------------------------------
    def _start_round_timer(self, r: int) -> None:
        assert self.services.timers is not None
        self.services.timers.set(
            f"dbft-{self.iid}-r{r}",
            self.services.delta_us,
            lambda: self._on_round_timer(r),
        )

    def _on_round_timer(self, r: int) -> None:
        self._timer_expired.add(r)
        self._maybe_send_aux(r)

    def _maybe_send_aux(self, r: int) -> None:
        """Line 40-42: once vvals ≠ ∅ and the timer expired, broadcast AUX."""
        if self.closed or r != self.round or r in self._aux_sent:
            return
        vvals = self.vvals(r)
        if not vvals or r not in self._timer_expired:
            return
        c = self._coord.get(r)
        e = frozenset({c}) if c is not None and c in vvals else frozenset(vvals)
        self._aux_sent.add(r)
        self.services.broadcast(
            AUX_KIND,
            {"iid": self.iid, "round": r, "e": tuple(sorted(e))},
            10 + 2 * len(e),
        )
        self._try_complete(r)

    def _note_eligible(self, r: int, eset: FrozenSet[int]) -> None:
        state = self._aux_elig.get(r)
        if state is None:
            state = self._aux_elig[r] = [0, 0, 0, set()]
        state[0] += 1
        if eset == _FS1:
            state[1] += 1
        elif eset == _FS0:
            state[2] += 1
        state[3] |= eset

    def _try_complete(self, r: int) -> None:
        """Lines 43-51: evaluate the AUX quorum condition and advance.

        Equivalent to rebuilding ``{s: e for s, e in aux[r].items() if
        e <= vvals}`` and scanning it, but reads the incrementally
        maintained counters instead — this runs once per AUX receipt and
        per vvals growth, making it a protocol hot path at large n."""
        if self.closed or r != self.round or r in self._advanced:
            return
        if r not in self._aux_sent:
            return
        state = self._aux_elig.get(r)
        quorum = self.services.quorum
        if state is None or state[0] < quorum:
            return
        if state[1] >= quorum:
            s: FrozenSet[int] = _FS1
        elif state[2] >= quorum:
            s = _FS0
        else:
            s = frozenset(state[3])
        if len(s) == 1:
            (v,) = s
            self.est = v
            if v == r % 2 and self.decided is None:
                self._decide(v, r)
        else:
            self.est = r % 2
        self._advance(r)

    def _decide(self, v: int, r: int) -> None:
        self.decided = v
        self.decided_round = r
        message = self.delivered_message if v == 1 else None
        if v == 1 and message is None:
            # Decided 1 via amplified estimates without holding m: recover
            # it through the VVB fetch path; on arrival ``on_message`` fires.
            self.request_message()
        self._on_decide(v, message)

    def request_message(self) -> None:
        """Broadcast a FETCH so any holder of the INIT re-sends it."""
        self.services.broadcast("lyra.fetch", {"iid": self.iid}, 8)

    def _advance(self, r: int) -> None:
        self._advanced.add(r)
        if self.decided_round is not None and r >= self.decided_round + 2:
            self.close()
            return
        if r + 1 > self.max_rounds:
            self.close()
            return
        self.round = r + 1
        self._start_round(self.round)

    def _start_round(self, r: int) -> None:
        if self.est in (0, 1):
            self._bv_for(r).broadcast_estimate(self.est)
        self._start_round_timer(r)
        # Early messages for this round may already satisfy the conditions.
        self._maybe_send_aux(r)
        self._try_complete(r)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop participating: cancel this instance's timers."""
        if self.closed:
            return
        self.closed = True
        assert self.services.timers is not None
        self.services.timers.cancel(f"vvb-expire-{self.iid}")
        for r in range(1, self.round + 1):
            self.services.timers.cancel(f"dbft-{self.iid}-r{r}")


__all__ = ["BinaryConsensus", "COORD_KIND", "AUX_KIND", "DEFAULT_MAX_ROUNDS"]
