"""Transaction batching (§VI-B).

Consensus costs are amortised by batching: a node opens a new BOC instance
when it holds a full batch (800 transactions in the paper) *or* when a
timeout elapses since its last proposal — whichever comes first — so light
load does not translate into unbounded latency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.types import Transaction

DEFAULT_BATCH_SIZE = 800
DEFAULT_BATCH_TIMEOUT_US = 50_000


class Mempool:
    """A FIFO of not-yet-proposed transactions with duplicate suppression."""

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.batch_size = batch_size
        self._queue: List[Transaction] = []
        self._seen: set = set()
        self.duplicates_dropped = 0

    def add(self, tx: Transaction) -> bool:
        """Queue a transaction; returns False for duplicates."""
        key = tx.key()
        if key in self._seen:
            self.duplicates_dropped += 1
            return False
        self._seen.add(key)
        self._queue.append(tx)
        return True

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.batch_size

    def __len__(self) -> int:
        return len(self._queue)

    def take_batch(self) -> List[Transaction]:
        """Drain up to ``batch_size`` transactions (may be fewer on flush)."""
        batch, self._queue = self._queue[: self.batch_size], self._queue[self.batch_size :]
        return batch

    def requeue(self, txs) -> None:
        """Put transactions from a rejected batch back at the queue head
        (SMR-Liveness: correct processes continuously re-input their
        transactions until accepted).  Bypasses dedup — the keys are
        already registered."""
        self._queue[:0] = list(txs)

    def drop_committed(self, txs) -> None:
        """Release dedup memory for executed transactions."""
        for tx in txs:
            self._seen.discard(tx.key())


__all__ = ["Mempool", "DEFAULT_BATCH_SIZE", "DEFAULT_BATCH_TIMEOUT_US"]
