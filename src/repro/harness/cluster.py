"""Cluster builders and the experiment runner.

``build_lyra_cluster`` assembles a full simulated deployment — topology,
WAN, PKI, threshold/VSS schemes, replicas, closed-loop clients — from an
:class:`~repro.harness.config.ExperimentConfig`, runs it for the configured
virtual duration, and returns consolidated measurements plus safety-check
results.  The Pompē equivalent lives in :mod:`repro.harness.pompe_cluster`.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.clocks import true_distance_us
from repro.core.commit import CommitConfig
from repro.core.gossip_distance import GossipDistanceEstimator
from repro.core.node import LyraConfig, LyraNode
from repro.core.obfuscation import make_obfuscation
from repro.core.smr import check_output_sorted, check_prefix_consistency
from repro.crypto.cost import DEFAULT_COSTS
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.harness.backend import (
    make_fault_injector,
    make_latency_model,
    make_simulator,
)
from repro.harness.config import ExperimentConfig
from repro.metrics.invariants import InvariantWatchdog
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracelog import TraceLog, install_lyra_tracing
from repro.net.adversary import NullAdversary, PartialSynchronyAdversary
from repro.net.dissemination import make_dissemination
from repro.net.faults import FaultInjector
from repro.net.network import Network, NetworkConfig
from repro.net.topology import Topology
from repro.metrics.fairness import fairness_block
from repro.sim.engine import SECONDS
from repro.sim.rng import RngRegistry
from repro.workload.clients import TxKey, _BaseClient
from repro.workload.kvstore import KvStore
from repro.workload.spec import build_workload


@dataclass
class ExperimentResult:
    """Consolidated measurements of one run."""

    n_nodes: int
    duration_us: int
    committed_count: int = 0  # txs completed by clients in measurement window
    executed_total: int = 0  # txs executed at replicas (all windows)
    throughput_tps: float = 0.0
    avg_latency_us: float = 0.0
    p50_latency_us: float = 0.0
    p99_latency_us: float = 0.0
    latencies_us: List[int] = field(default_factory=list)
    safety_violation: Optional[str] = None
    rejected_instances: int = 0
    accepted_instances: int = 0
    events_processed: int = 0
    messages_delivered: int = 0
    bytes_delivered: int = 0
    per_instance_profile: Dict[str, float] = field(default_factory=dict)
    # Chaos instrumentation: the always-on watchdog's findings and the
    # fault/transport counters of the run.
    invariant_checks: int = 0
    invariant_violations: List[str] = field(default_factory=list)
    fault_stats: Dict[str, int] = field(default_factory=dict)
    # Link-level coalescing counters (frames vs logical messages); empty
    # dict when the run did not enable coalescing.
    wire_stats: Dict[str, Any] = field(default_factory=dict)
    # Observability: the metrics-registry snapshot of the run (empty dict
    # unless ``ExperimentConfig.metrics`` was on).  Plain JSON, so it
    # crosses sweep worker boundaries and the on-disk result cache.
    metrics: Dict[str, Any] = field(default_factory=dict)
    # Fairness report (reorder distance, sandwich outcomes, per-group
    # latency percentiles, end-of-run accounting) — populated when the
    # run's WorkloadSpec has ``fairness`` on, empty otherwise.
    fairness: Dict[str, Any] = field(default_factory=dict)
    # Wall-clock seconds spent inside the event loop proper (excludes
    # post-run consolidation: snapshotting, safety checks).  The bench
    # suite's events/sec — and the observability overhead gate — divide
    # by this, so one-off reporting costs don't pollute a hot-path
    # throughput measure.  Host timing, not a simulation result: it is
    # excluded from to_dict() and from equality so serialized results —
    # and result comparisons — stay deterministic.
    sim_wall_s: float = field(default=0.0, compare=False)

    @property
    def avg_latency_ms(self) -> float:
        return self.avg_latency_us / 1000.0

    # ------------------------------------------------------------------
    # Serialization — sweep cells persist results as JSON and ship them
    # across worker process boundaries.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable representation (round-trips via from_dict).

        Omits ``sim_wall_s``: host wall-clock varies run to run, and the
        serialized form must be bit-identical for the same seed and
        config (the sweep cache and the serial-vs-parallel determinism
        oracle both diff these dicts directly).
        """
        data = asdict(self)
        del data["sim_wall_s"]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentResult fields: {sorted(unknown)}")
        return cls(**data)


class LyraCluster:
    """A fully wired Lyra deployment inside one simulator.

    ``node_classes`` maps pid -> a :class:`LyraNode` subclass (Byzantine
    behaviours for attack experiments); ``node_kwargs`` maps pid -> extra
    constructor kwargs for that subclass.

    ``local_pids`` puts the cluster in shard-worker mode (see
    :mod:`repro.sim.shard`): the FULL cluster is still built — identical
    construction-time RNG draws, pids and topology on every worker — but
    crash-plan events, the watchdog and client traffic are restricted to
    the local partition; remote clients are neutered via ``crashed=True``
    (:meth:`SimProcess.send` drops silently when crashed).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        node_classes: Optional[Dict[int, type]] = None,
        node_kwargs: Optional[Dict[int, dict]] = None,
        local_pids: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config
        self.local_pids: Optional[frozenset] = (
            frozenset(local_pids) if local_pids is not None else None
        )
        self.sim = make_simulator(config)
        self.rng = RngRegistry(config.seed)
        f = config.resolved_f()
        n = config.n_nodes

        # Resolve config-declared attack replicas through the registry;
        # explicit builder arguments override them per pid.
        if config.attack_nodes:
            from repro.attacks.registry import resolve_attack_nodes

            attack_classes, attack_kwargs = resolve_attack_nodes(
                config.attack_nodes, n
            )
            attack_classes.update(node_classes or {})
            for pid, extra in (node_kwargs or {}).items():
                attack_kwargs[pid] = {**attack_kwargs.get(pid, {}), **extra}
            node_classes = attack_classes
            node_kwargs = attack_kwargs

        self.topology = Topology(n, config.regions)
        self.registry = KeyRegistry(config.seed)
        self.threshold = ThresholdScheme(2 * f + 1, n, seed=config.seed)
        self.obf = make_obfuscation(
            config.obfuscation, 2 * f + 1, n, seed=config.seed
        )
        costs = DEFAULT_COSTS.scaled(config.cpu_cost_scale)

        # Replicas.
        self.nodes: List[LyraNode] = []
        skew_rng = self.rng.get("clock-skew")
        for pid in range(n):
            node_cfg = LyraConfig(
                batch_size=config.batch_size,
                batch_timeout_us=config.batch_timeout_us,
                commit=CommitConfig(
                    lambda_us=config.lambda_us,
                    check_dealing=config.check_dealing,
                    max_proposer_rate_per_s=config.max_proposer_rate_per_s,
                    delta_piggyback=(
                        config.delta_piggyback
                        if config.delta_piggyback is not None
                        else config.coalesce
                    ),
                    report_quorum=config.report_quorum,
                ),
                status_interval_us=config.status_interval_us,
                warmup_rounds=config.warmup_rounds,
                warmup_spacing_us=config.warmup_spacing_us,
                distance_mode=config.distance_mode,
                gossip_fanout=config.gossip_fanout,
                gossip_rounds=config.gossip_rounds,
                gossip_spacing_us=config.gossip_spacing_us,
                gossip_seed=config.seed,
                obfuscation=config.obfuscation,
                costs=costs,
                clock_skew_us=int(
                    skew_rng.integers(
                        -config.clock_skew_max_us, config.clock_skew_max_us + 1
                    )
                ),
            )
            cls = (node_classes or {}).get(pid, LyraNode)
            extra = (node_kwargs or {}).get(pid, {})
            node = cls(
                pid,
                self.sim,
                n=n,
                f=f,
                registry=self.registry,
                threshold=self.threshold,
                obfuscation=self.obf,
                config=node_cfg,
                rng=self.rng,
                **extra,
            )
            self.nodes.append(node)

        # Clients: declared by the workload spec (legacy knobs shim into
        # an equivalent spec), resolved through the client registry, each
        # placed in its home node's region.
        self.workload_spec = config.resolved_workload()
        self.workload = build_workload(
            self.workload_spec,
            sim=self.sim,
            topology=self.topology,
            rng=self.rng,
            n=n,
            start_at_us=config.client_start_us(),
            stop_at_us=config.duration_us,
        )
        self.clients: List[_BaseClient] = self.workload.clients

        # Network.  The latency model is backend-selected: uniform links
        # (jitter-free, analytically checkable) are shared, the geo matrix
        # gets the scalar or numpy-batched jitter implementation.
        # Kept on the cluster: ``base_us`` is the jitter-free ground truth
        # the distance-estimator error metrics are measured against.
        self.latency = latency = make_latency_model(
            config, self.topology.placement, self.rng
        )
        adversary = (
            PartialSynchronyAdversary(
                config.gst_us,
                max_delay_us=config.adversary_max_delay_us,
                rng=self.rng,
            )
            if config.gst_us > 0
            else NullAdversary()
        )
        # Chaos engine: link faults execute inside the network, crash
        # events are scheduled on the replicas, and the reliable layer
        # re-implements the §II-A channel abstraction over the lossy wire.
        self.fault_injector: Optional[FaultInjector] = None
        plan = config.fault_plan
        if plan is not None and not plan.empty:
            # Crashes and Byzantine/attack replicas share the resilience
            # budget: the plan is rejected if they jointly exceed f.
            byz = tuple(
                sorted(
                    pid
                    for pid, cls in (node_classes or {}).items()
                    if cls is not LyraNode
                )
            )
            plan.validate_for(n, f, byzantine=byz)
            self.fault_injector = make_fault_injector(config, plan, self.rng)
        self.network = Network(
            self.sim,
            latency,
            adversary,
            NetworkConfig(
                delta_us=config.delta_us,
                bandwidth_enabled=config.bandwidth_enabled,
                rate_bps=config.rate_bps,
            ),
            faults=self.fault_injector,
        )
        # Broadcast dissemination strategy (None = native all2all).
        self.dissemination = make_dissemination(
            config.dissemination, fanout=config.fanout, seed=config.seed
        )
        if self.dissemination is not None:
            self.network.set_dissemination(self.dissemination)
        if config.reliable_channels:
            self.network.enable_reliable()
        if config.coalesce:
            self.network.enable_coalescing(config.coalesce_window_us)
        for node in self.nodes:
            self.network.register(node, replica=True)
        for client in self.clients:
            self.network.register(client, replica=False)
        if self.local_pids is not None:
            # A client belongs to its home replica's shard (``local_pids``
            # holds node pids; client pids are only assigned during build).
            for client in self.clients:
                if client.home not in self.local_pids:
                    # Remote clients exist (identical pid/RNG layout on
                    # every worker) but generate no traffic here: their
                    # sends drop at the crashed check, and neuter()
                    # additionally cancels their pending timer events so
                    # the worker's event count carries no phantom client
                    # ticks.  Their RNG streams are per-client, so the
                    # neutering perturbs nothing.
                    client.neuter()
        if plan is not None:
            for ev in plan.crashes:
                if self.local_pids is not None and ev.pid not in self.local_pids:
                    continue  # the owning shard schedules this crash
                node = self.nodes[ev.pid]
                self.sim.schedule_at(ev.crash_at_us, node.crash)
                if ev.recover_at_us is not None:
                    self.sim.schedule_at(ev.recover_at_us, node.recover)

        # Observability: span tracing over the node tracer hook, and the
        # metrics registry every layer emits into.  Both off by default;
        # neither draws randomness nor schedules events, so enabling them
        # leaves the decided prefix bit-identical.
        self.trace: Optional[TraceLog] = None
        if config.tracing:
            self.trace = install_lyra_tracing(self)
        self.metrics: Optional[MetricsRegistry] = None
        if config.metrics:
            self.metrics = MetricsRegistry()
            for node in self.nodes:
                node.enable_metrics(self.metrics)
            self.network.enable_link_stats()
            self.metrics.add_source("wire", self._wire_source)
            if self.fault_injector is not None:
                self.metrics.add_source(
                    "faults", self.fault_injector.stats.to_dict
                )
            if self.network.reliable is not None:
                self.metrics.add_source(
                    "channel", self.network.reliable.stats.to_dict
                )
            self.metrics.add_source("cache", self._cache_source)
            self.metrics.add_source("workload", self.workload.metrics_source)
            # Estimator error vs the latency model's ground truth (works
            # for both distance modes; per-node estimator health is
            # registered by ``LyraNode.enable_metrics`` itself).
            self.metrics.add_source("distance", self.distance_error_stats)

        # Always-on invariant watchdog: prefix agreement, commit
        # regression, ordered output, and post-GST liveness.  A shard
        # worker watches only its local replicas — the remote ones never
        # start here and would trip the liveness check.
        liveness_from = max(adversary.gst(), config.measurement_start_us())
        self.watchdog = InvariantWatchdog(
            self.sim, self.local_nodes(), f=f, gst_us=liveness_from
        )

        # Execution layer + per-node execution event log (time, tx count).
        # The fairness layer taps replica 0's execution order (all correct
        # replicas execute the same log), and MEV bots observe payloads at
        # their home replica's execution — under Lyra that is the first
        # moment *any* replica can read a VSS-encrypted body, which is why
        # sandwiches structurally fail here (contrast the Pompē cluster's
        # cleartext ordering-phase tap).
        self.committed_order: List[TxKey] = []
        mev_by_home = self.workload.mev_bots_by_home()
        self.stores: Dict[int, KvStore] = {}
        self.exec_events: Dict[int, List[Tuple[int, int]]] = {}
        for node in self.nodes:
            store = KvStore()
            self.stores[node.pid] = store
            events: List[Tuple[int, int]] = []
            self.exec_events[node.pid] = events

            def _hook(entry, batch, store=store, events=events, node=node):
                store.apply_batch(batch)
                events.append((node.sim.now, len(batch)))

            hook = _hook
            if self.workload_spec.fairness and node.pid == 0:

                def hook(entry, batch, prev=hook, order=self.committed_order):
                    prev(entry, batch)
                    order.extend(tx.key() for tx in batch.txs)

            bots = mev_by_home.get(node.pid)
            if bots:

                def hook(entry, batch, prev=hook, bots=tuple(bots)):
                    prev(entry, batch)
                    for bot in bots:
                        bot.on_observed_batch(batch)

            node.on_executed = hook

    # ------------------------------------------------------------------
    def local_nodes(self) -> List[LyraNode]:
        """The replicas this process simulates (all of them outside shard
        mode)."""
        if self.local_pids is None:
            return self.nodes
        return [node for node in self.nodes if node.pid in self.local_pids]

    # ------------------------------------------------------------------
    # Metrics scrape sources (polled at snapshot time, never on hot paths)
    # ------------------------------------------------------------------
    def _wire_source(self) -> Dict[str, float]:
        net = self.network
        out: Dict[str, float] = {
            "messages_delivered": net.messages_delivered,
            "bytes_delivered": net.bytes_delivered,
            "unroutable_dropped": net.unroutable_dropped,
            "corrupt_dropped": net.corrupt_dropped,
        }
        if net.wire_stats.frames_sent:
            out.update(net.wire_stats.to_dict())
        return out

    def _cache_source(self) -> Dict[str, float]:
        from repro.crypto import feldman, hashing

        layers: Dict[str, Dict[str, Any]] = {
            "digest": hashing.digest_cache_stats(),
            "feldman_verify": feldman.verify_cache_stats(),
        }
        if hasattr(self.registry, "verify_cache_stats"):
            layers["signature_verify"] = self.registry.verify_cache_stats()
        if hasattr(self.threshold, "verify_cache_stats"):
            layers["threshold_verify"] = self.threshold.verify_cache_stats()
        if hasattr(self.obf, "decrypt_cache_stats"):
            layers["vss_decrypt"] = self.obf.decrypt_cache_stats()
        out: Dict[str, float] = {}
        for layer, stats in layers.items():
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    out[f"{layer}.{key}"] = value
        return out

    # ------------------------------------------------------------------
    # Distance-estimation accounting (tentpole: gossip estimator)
    # ------------------------------------------------------------------
    def _distance_error_values(self) -> Tuple[int, List[float]]:
        """``(pairs_total, per-pair abs errors)`` of every local node's
        estimator vs the latency-model ground truth; pairs with no
        estimate yet are counted in the total but contribute no error."""
        errors: List[float] = []
        pairs_total = 0
        for node in self.local_nodes():
            for peer in self.nodes:
                if peer.pid == node.pid:
                    continue
                pairs_total += 1
                est = node.estimator.distance(peer.pid)
                if est is None:
                    continue
                truth = true_distance_us(
                    node.clock,
                    peer.clock,
                    self.latency.base_us(node.pid, peer.pid),
                )
                errors.append(abs(float(est) - truth))
        return pairs_total, errors

    def distance_error_stats(self) -> Dict[str, float]:
        """Per-pair absolute estimator error vs ground truth.

        Ground truth for pair (i, j) is the jitter-free one-way base
        latency plus the constant skew difference
        (:func:`repro.core.clocks.true_distance_us`).  Post-run, read-only
        — never perturbs RNG streams or event schedules.
        """
        pairs_total, errors = self._distance_error_values()
        out: Dict[str, float] = {
            "pairs_total": float(pairs_total),
            "pairs_estimated": float(len(errors)),
        }
        if errors:
            ordered = sorted(errors)
            out["abs_error_us_mean"] = float(statistics.fmean(errors))
            out["abs_error_us_p50"] = float(ordered[len(ordered) // 2])
            out["abs_error_us_p99"] = float(
                ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
            )
            out["abs_error_us_max"] = float(ordered[-1])
        return out

    def gossip_distance_stats(self) -> Dict[str, float]:
        """Aggregated epidemic-estimator wire accounting.

        ``max_requests_per_round`` over all nodes is the O(n·fanout)
        witness: no node ever contacts more than ``gossip_fanout`` peers
        in one round, so a round costs at most n·fanout messages.
        """
        per_node = [
            node.estimator.gossip_stats()
            for node in self.local_nodes()
            if isinstance(node.estimator, GossipDistanceEstimator)
        ]
        if not per_node:
            return {}
        converged = [
            s["converged_round"] for s in per_node if s["converged_round"] >= 0
        ]
        return {
            "fanout": self.config.gossip_fanout,
            "nodes": len(per_node),
            "rounds_started": sum(s["rounds_started"] for s in per_node),
            "requests_sent": sum(s["requests_sent"] for s in per_node),
            "max_requests_per_round": max(
                s["max_requests_per_round"] for s in per_node
            ),
            "vectors_merged": sum(s["vectors_merged"] for s in per_node),
            "entries_merged": sum(s["entries_merged"] for s in per_node),
            "stale_entries_dropped": sum(
                s["stale_entries_dropped"] for s in per_node
            ),
            "converged_nodes": len(converged),
            "max_converged_round": max(converged) if converged else -1,
            "min_coverage": min(s["coverage"] for s in per_node),
        }

    # ------------------------------------------------------------------
    def run(self, *, skip_safety_check: bool = False) -> ExperimentResult:
        """Run the configured duration and consolidate measurements."""
        cfg = self.config
        for node in self.local_nodes():
            node.start()
        self.watchdog.start()
        # The event loop allocates millions of short-lived events/messages
        # and creates no reference cycles on its hot path; suspending the
        # cyclic collector for the duration avoids repeated full-heap scans.
        # Purely a wall-clock optimisation: virtual time is unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        loop_start = time.perf_counter()
        try:
            self.sim.run(until=cfg.duration_us)
            if self.network.coalescing_enabled and self.network.pending_coalesced():
                self._drain_coalesced(cfg.duration_us)
        finally:
            sim_wall_s = time.perf_counter() - loop_start
            if gc_was_enabled:
                gc.enable()
        self.watchdog.check_now()  # final end-of-run sample
        # End-of-run accounting: whatever is still in flight is counted
        # as incomplete, never silently dropped.
        self.workload.finalize(self.sim.now)

        measure_from = cfg.measurement_start_us()
        latencies: List[int] = []
        for client in self.clients:
            latencies.extend(client.stats.latencies_us)
        # Throughput: replica-side executed transactions over the
        # measurement window (clients only see their own completions).
        executed_total = max(
            (node.stats.txs_executed for node in self.nodes), default=0
        )

        result = ExperimentResult(
            n_nodes=cfg.n_nodes,
            duration_us=cfg.duration_us,
            executed_total=executed_total,
            committed_count=sum(c.stats.completed for c in self.clients),
            latencies_us=latencies,
            events_processed=self.sim.events_processed,
            messages_delivered=self.network.messages_delivered,
            bytes_delivered=self.network.bytes_delivered,
            sim_wall_s=sim_wall_s,
        )
        if latencies:
            result.avg_latency_us = float(statistics.fmean(latencies))
            ordered = sorted(latencies)
            result.p50_latency_us = float(ordered[len(ordered) // 2])
            result.p99_latency_us = float(ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))])
        result.throughput_tps = self._windowed_throughput(measure_from)
        result.rejected_instances = sum(
            node.commit.rejected_count for node in self.nodes if node.commit
        )
        result.accepted_instances = max(
            (node.commit.accepted_count for node in self.nodes if node.commit),
            default=0,
        )
        result.invariant_checks = self.watchdog.report.checks_run
        result.invariant_violations = [
            v.render() for v in self.watchdog.report.violations
        ]
        stats: Dict[str, int] = {
            "unroutable_dropped": self.network.unroutable_dropped,
            "corrupt_dropped": self.network.corrupt_dropped,
        }
        if self.fault_injector is not None:
            stats.update(self.fault_injector.stats.to_dict())
        if self.network.reliable is not None:
            stats.update(self.network.reliable.stats.to_dict())
        result.fault_stats = stats
        if self.workload_spec.fairness:
            block = fairness_block(
                submitted_order=self.workload.submit_order(),
                committed_order=self.committed_order,
                attempts=self.workload.sandwich_attempts(),
                latencies_by_group=self.workload.latencies_by_group(),
            )
            block["counts"] = self.workload.counts()
            result.fairness = block
        if self.network.wire_stats.frames_sent:
            result.wire_stats = self.network.wire_stats.to_dict()
        if self.dissemination is not None:
            result.wire_stats = dict(result.wire_stats)
            result.wire_stats["dissemination"] = self.dissemination.stats_dict()
        if cfg.distance_mode == "gossip":
            result.wire_stats = dict(result.wire_stats)
            result.wire_stats["gossip_distance"] = self.gossip_distance_stats()
            result.wire_stats["distance_error"] = self.distance_error_stats()
        if self.metrics is not None:
            # End-of-run estimator accuracy: per-pair abs errors land in a
            # registry histogram (p50/p99 via the shared summary path).
            self.metrics.histogram("distance", "abs_error_us").observe_many(
                self._distance_error_values()[1]
            )
            snap = self.metrics.snapshot()
            link = self.network.link_stats()
            if link:
                snap["links"] = link
            result.metrics = snap
        if not skip_safety_check:
            outputs = {node.pid: node.output_sequence() for node in self.nodes}
            result.safety_violation = check_prefix_consistency(outputs)
            if result.safety_violation is None:
                for pid, output in outputs.items():
                    err = check_output_sorted(output)
                    if err is not None:
                        result.safety_violation = f"pid {pid}: {err}"
                        break
        return result

    def _drain_coalesced(self, horizon_us: int) -> None:
        """Flush coalescing windows left open at the run horizon.

        With ``coalesce_window_us > 0`` the shared per-burst flush timer
        can land past ``duration_us``, which would strand messages in
        their outboxes — commits in flight at the cutoff would silently
        vanish.  Force-flush and give the protocol a bounded grace (in
        Δ-sized steps, re-flushing between steps) so in-flight work
        lands.  No-op for window-0 coalescing (end-of-instant hooks keep
        outboxes empty) and for non-coalesced runs, whose event streams
        — and decided-prefix digests — are therefore unchanged.
        """
        delta = self.network.delta_us
        deadline = horizon_us + 10 * delta
        while True:
            self.network.drain_pending()
            if self.sim.now >= deadline:
                break
            self.sim.run(until=min(self.sim.now + delta, deadline))
            if not self.network.pending_coalesced():
                break

    def _windowed_throughput(self, measure_from: int) -> float:
        """Committed-transaction throughput over the measurement window,
        from replica-side execution timestamps (the paper reports
        replica-observed commit throughput)."""
        window_us = max(1, self.config.duration_us - measure_from)
        per_node = [
            sum(count for t, count in events if t >= measure_from)
            for events in self.exec_events.values()
        ]
        if not per_node:
            return 0.0
        # All correct replicas execute the same log; take the median to be
        # robust to stragglers still draining at the cutoff.
        per_node.sort()
        total = per_node[len(per_node) // 2]
        return total * 1_000_000.0 / window_us


def build_lyra_cluster(
    config: ExperimentConfig,
    *,
    node_classes: Optional[Dict[int, type]] = None,
    node_kwargs: Optional[Dict[int, dict]] = None,
) -> LyraCluster:
    """Deprecated: use ``build_cluster(config, protocol="lyra")``."""
    import warnings

    warnings.warn(
        "build_lyra_cluster is deprecated; use "
        "repro.harness.build_cluster(config, protocol='lyra')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.harness.factory import build_cluster

    return build_cluster(
        config, protocol="lyra", node_classes=node_classes, node_kwargs=node_kwargs
    )


__all__ = ["LyraCluster", "ExperimentResult", "build_lyra_cluster"]
