"""Experiment harness: cluster builders and figure regenerators.

- :func:`build_lyra_cluster` / :func:`build_pompe_cluster` — assemble a
  full simulated deployment from an :class:`ExperimentConfig`.
- :mod:`repro.harness.experiments` — one entry point per paper artefact
  (Fig. 1, Fig. 2, Fig. 3, plus the ablations listed in DESIGN.md §4).
"""

from repro.harness.config import ExperimentConfig
from repro.harness.cluster import (
    ExperimentResult,
    LyraCluster,
    build_lyra_cluster,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "LyraCluster",
    "build_lyra_cluster",
]
