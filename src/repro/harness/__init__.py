"""Experiment harness: cluster builders, sweeps and figure regenerators.

- :func:`build_cluster` — the unified factory: assemble a full simulated
  deployment for any registered protocol from an :class:`ExperimentConfig`.
- :mod:`repro.harness.sweep` — parallel (config, seed) grid sweeps with
  content-addressed result caching.
- :mod:`repro.harness.experiments` — one entry point per paper artefact
  (Fig. 1, Fig. 2, Fig. 3, plus the ablations listed in DESIGN.md §4).

``build_lyra_cluster`` / ``build_pompe_cluster`` remain as deprecated
shims over :func:`build_cluster`.
"""

from repro.harness.config import ExperimentConfig
from repro.harness.cluster import (
    ExperimentResult,
    LyraCluster,
    build_lyra_cluster,
)
from repro.harness.factory import (
    available_protocols,
    build_cluster,
    register_protocol,
)
from repro.harness.pompe_cluster import PompeCluster, build_pompe_cluster
from repro.harness.sweep import (
    SweepCell,
    SweepReport,
    grid_cells,
    run_sweep,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "LyraCluster",
    "PompeCluster",
    "build_cluster",
    "register_protocol",
    "available_protocols",
    "build_lyra_cluster",
    "build_pompe_cluster",
    "SweepCell",
    "SweepReport",
    "grid_cells",
    "run_sweep",
]
