"""Experiment configuration shared by all harness entry points."""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence

from repro.core.gossip_distance import (
    DEFAULT_GOSSIP_FANOUT,
    DEFAULT_GOSSIP_ROUNDS,
)
from repro.core.node import (
    DEFAULT_WARMUP_ROUNDS,
    DEFAULT_WARMUP_SPACING_US,
    DISTANCE_MODES,
    warmup_duration_us,
)
from repro.net.faults import FaultPlan
from repro.net.topology import EVAL_REGIONS
from repro.sim.engine import MILLISECONDS, SECONDS
from repro.workload.spec import WorkloadSpec


@dataclass
class ExperimentConfig:
    """One cluster run (Lyra or a baseline).

    Defaults mirror §VI: three regions, batch 800, λ = 5 ms, 1 Gbps NICs.
    """

    n_nodes: int = 4
    #: Byzantine resilience; default is the maximum f with n > 3f.
    f: Optional[int] = None
    regions: Sequence[str] = field(default_factory=lambda: list(EVAL_REGIONS))
    seed: int = 1
    #: Simulation backend: ``"python"`` (the reference engine) or
    #: ``"vector"`` (arena event storage + numpy-batched latency/fault
    #: draws — same schedules, same decided prefixes, less interpreter
    #: overhead; see EXPERIMENTS.md "Backends").  Runs are bit-identical
    #: across backends for the same ``(seed, config)`` by construction.
    backend: str = "python"

    # Network.
    delta_us: int = 150 * MILLISECONDS
    #: Replace the geo latency matrix with one uniform one-way delay (µs),
    #: jitter-free.  Makes latency decompositions analytically checkable:
    #: BOC should decide in 3 message delays of this value (§III).
    uniform_delay_us: Optional[int] = None
    jitter: float = 0.015
    bandwidth_enabled: bool = True
    rate_bps: float = 1_000_000_000.0
    gst_us: int = 0  # 0 = synchronous from the start
    adversary_max_delay_us: int = 400 * MILLISECONDS
    #: Broadcast dissemination strategy: ``"all2all"`` (direct fan-out,
    #: today's behaviour), ``"tree"`` (deterministic k-ary relay tree per
    #: sender) or ``"gossip"`` (seeded push fan-out with protocol pull
    #: repair).  See :mod:`repro.net.dissemination` and EXPERIMENTS.md
    #: "Sharded runs and dissemination strategies".
    dissemination: str = "all2all"
    #: Relay fan-out for ``tree``/``gossip`` (ignored by ``all2all``).
    fanout: int = 8

    # Protocol.
    batch_size: int = 800
    batch_timeout_us: int = 50 * MILLISECONDS
    lambda_us: int = 5 * MILLISECONDS
    #: §VI-D flooding mitigation: per-proposer instance rate cap (None=off).
    max_proposer_rate_per_s: float | None = None
    obfuscation: str = "vss"
    check_dealing: bool = True
    status_interval_us: int = 25 * MILLISECONDS
    #: Warm-up defaults come from ``repro.core.node`` — the single source
    #: of truth shared with ``LyraConfig``, so direct core users and
    #: harness users agree on when warm-up ends (they used to diverge:
    #: 150 ms vs 200 ms).
    warmup_rounds: int = DEFAULT_WARMUP_ROUNDS
    warmup_spacing_us: int = DEFAULT_WARMUP_SPACING_US
    #: Distance learning: ``"probe"`` (§IV-B1 all-to-all warm-up, the
    #: default — bit-identical to the checked-in digest oracles) or
    #: ``"gossip"`` (epidemic constant-fan-out estimation, O(n·fanout)
    #: messages per round; see :mod:`repro.core.gossip_distance`).
    #: Resolved per node at ``build_cluster`` time like ``backend``.
    distance_mode: str = "probe"
    #: Peers each node contacts per gossip round (gossip mode only).
    gossip_fanout: int = DEFAULT_GOSSIP_FANOUT
    #: Warm-up gossip rounds — the convergence/accuracy budget the
    #: distance-error ablation sweeps.
    gossip_rounds: int = DEFAULT_GOSSIP_ROUNDS
    #: Spacing between gossip rounds.
    gossip_spacing_us: int = 50 * MILLISECONDS
    clock_skew_max_us: int = 20 * MILLISECONDS

    # Workload.
    #: The declarative traffic description (arrival processes, body
    #: mixes, MEV bots — see :class:`repro.workload.spec.WorkloadSpec`).
    #: ``None`` falls back to the legacy closed-loop knobs below.
    workload: Optional[WorkloadSpec] = None
    clients_per_node: int = 1
    client_window: int = 50
    #: Deprecated (use ``workload``): extra light-load probe clients (one
    #: per node, up to this count) with their own small request window —
    #: the Fig. 2 latency measurement rig.
    probe_clients: int = 0
    #: Deprecated (use ``workload``): request window of the probes.
    probe_window: int = 1
    duration_us: int = 5 * SECONDS
    #: Measurement starts after clients have ramped up.
    measure_after_us: Optional[int] = None

    # Chaos engineering: an optional fault schedule (lossy links plus
    # crash/recover events) and the reliable channel layer that lets the
    # protocol survive it.  Plans are pure data, so sweep cells can grid
    # over fault schedules like any other parameter.
    fault_plan: Optional[FaultPlan] = None
    reliable_channels: bool = False

    # Adversarial replicas: pid -> attack spec (a registry name, or
    # {"name": ..., "kwargs": {...}}), resolved through
    # ``repro.attacks.registry.ATTACK_NODE_CLASSES`` at cluster build time.
    # Serialisable, so attack experiments and fuzzer schedules ride the
    # sweep cache like any other knob.  Explicit ``node_classes`` builder
    # arguments override entries here per pid.
    attack_nodes: Optional[Dict[int, Any]] = None
    #: Commit-protocol report quorum override (``None`` = the safe 2f+1).
    #: A deliberately weakenable validation knob for the attack corpus —
    #: see :class:`repro.core.commit.CommitConfig.report_quorum`.
    report_quorum: Optional[int] = None

    # Cost model scaling (1.0 = DESIGN.md §5 calibration).
    cpu_cost_scale: float = 1.0

    # Wire-frame coalescing: bundle all messages a node emits toward one
    # destination within the same simulated instant (window 0) — or within
    # ``coalesce_window_us`` of the first enqueue — into a single frame
    # with one event, one latency/bandwidth draw, one checksum and one
    # fault draw.  Off by default: the compat path is the bit-determinism
    # oracle that coalesced runs are validated against.
    coalesce: bool = False
    coalesce_window_us: int = 0
    #: Delta-encode Algorithm-4 piggyback reports: full reports only when
    #: the min-pending/accepted state changed, cheap "no change since seq
    #: k" markers otherwise.  ``None`` follows ``coalesce``.
    delta_piggyback: Optional[bool] = None

    # Observability: span tracing (proposed → decided → committed →
    # executed per instance, read via ``cluster.trace``) and the metrics
    # registry (``ExperimentResult.metrics`` snapshot).  Both off by
    # default; neither perturbs RNG streams or event timing, so enabling
    # them leaves decided prefixes bit-identical.
    tracing: bool = False
    metrics: bool = False

    def __post_init__(self) -> None:
        if self.backend not in ("python", "vector"):
            raise ValueError(
                f"unknown backend {self.backend!r}: expected 'python' or 'vector'"
            )
        # Late import: net.dissemination must not import harness code.
        from repro.net.dissemination import DISSEMINATION_STRATEGIES

        if self.dissemination not in DISSEMINATION_STRATEGIES:
            raise ValueError(
                f"unknown dissemination {self.dissemination!r}: "
                f"expected one of {DISSEMINATION_STRATEGIES}"
            )
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.distance_mode not in DISTANCE_MODES:
            raise ValueError(
                f"unknown distance_mode {self.distance_mode!r}: "
                f"expected one of {DISTANCE_MODES}"
            )
        if self.gossip_fanout < 1:
            raise ValueError(
                f"gossip_fanout must be >= 1, got {self.gossip_fanout}"
            )
        if self.gossip_rounds < 1:
            raise ValueError(
                f"gossip_rounds must be >= 1, got {self.gossip_rounds}"
            )

    def resolved_f(self) -> int:
        if self.f is not None:
            if self.n_nodes <= 3 * self.f:
                raise ValueError(f"n={self.n_nodes} does not tolerate f={self.f}")
            return self.f
        return max(0, (self.n_nodes - 1) // 3)

    def client_start_us(self) -> int:
        """Clients start once distance warm-up has converged.

        Delegates to :func:`repro.core.node.warmup_duration_us` so the
        harness gate and ``LyraConfig.warmup_duration_us`` can never
        drift apart again.
        """
        return warmup_duration_us(self.warmup_rounds, self.warmup_spacing_us)

    def measurement_start_us(self) -> int:
        if self.measure_after_us is not None:
            return self.measure_after_us
        # Skip the first second of client traffic (pipeline fill).
        return self.client_start_us() + 1 * SECONDS

    def resolved_workload(self) -> WorkloadSpec:
        """The effective :class:`WorkloadSpec` of this run.

        An explicit ``workload`` wins; otherwise the deprecated legacy
        knobs (``clients_per_node`` / ``client_window`` /
        ``probe_clients`` / ``probe_window``) are shimmed into an
        equivalent spec that reproduces the historical client rig
        bit-for-bit.
        """
        if self.workload is not None:
            return self.workload
        if self.probe_clients != 0 or self.probe_window != 1:
            warnings.warn(
                "ExperimentConfig.probe_clients/probe_window are "
                "deprecated; pass an equivalent WorkloadSpec via "
                "ExperimentConfig.workload instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return WorkloadSpec.from_legacy(
            clients_per_node=self.clients_per_node,
            client_window=self.client_window,
            probe_clients=self.probe_clients,
            probe_window=self.probe_window,
        )

    # ------------------------------------------------------------------
    # Serialization — sweep cells cross process boundaries and are cached
    # on disk keyed by a content hash of this exact representation.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (round-trips via from_dict)."""
        data = asdict(self)
        data["regions"] = list(self.regions)
        data["fault_plan"] = (
            self.fault_plan.to_dict() if self.fault_plan is not None else None
        )
        data["workload"] = (
            self.workload.to_dict() if self.workload is not None else None
        )
        if self.attack_nodes is not None:
            # Canonical form: int keys sorted, bare names normalised to
            # the {"name", "kwargs"} shape (JSON stringifies the keys;
            # from_dict converts them back).
            data["attack_nodes"] = {
                int(pid): (
                    {"name": spec, "kwargs": {}}
                    if isinstance(spec, str)
                    else dict(spec)
                )
                for pid, spec in sorted(self.attack_nodes.items())
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output; unknown keys are
        rejected so stale cache entries fail loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentConfig fields: {sorted(unknown)}")
        data = dict(data)
        if data.get("fault_plan") is not None and not isinstance(
            data["fault_plan"], FaultPlan
        ):
            data["fault_plan"] = FaultPlan.from_dict(data["fault_plan"])
        if data.get("workload") is not None and not isinstance(
            data["workload"], WorkloadSpec
        ):
            data["workload"] = WorkloadSpec.from_dict(data["workload"])
        if data.get("attack_nodes") is not None:
            # JSON object keys are strings; pids are ints.
            data["attack_nodes"] = {
                int(pid): spec for pid, spec in data["attack_nodes"].items()
            }
        return cls(**data)


__all__ = ["ExperimentConfig"]
