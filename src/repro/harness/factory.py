"""Unified cluster construction: one factory for every protocol.

Historically each system had its own entry point (``build_lyra_cluster``,
``build_pompe_cluster``, ad-hoc baseline wiring), so every sweep, benchmark
and CLI command grew per-protocol code paths.  :func:`build_cluster`
collapses them behind a single registry keyed by protocol name; every
registered builder takes the same ``(config, *, node_classes, node_kwargs)``
signature and returns a cluster whose ``run()`` yields the shared
:class:`~repro.harness.cluster.ExperimentResult` schema.

New baselines self-register with :func:`register_protocol`, which makes
them reachable from the sweep runner and the ``--protocol`` CLI flag with
no further plumbing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.harness.cluster import LyraCluster
from repro.harness.config import ExperimentConfig
from repro.harness.pompe_cluster import PompeCluster

#: A builder takes (config, *, node_classes, node_kwargs) and returns a
#: cluster object exposing ``run(*, skip_safety_check=False)``.
ClusterBuilder = Callable[..., object]

_REGISTRY: Dict[str, ClusterBuilder] = {}


def register_protocol(name: str, builder: ClusterBuilder) -> None:
    """Register (or replace) a protocol's cluster builder."""
    _REGISTRY[name.lower()] = builder


def available_protocols() -> Tuple[str, ...]:
    """Registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


def build_cluster(
    config: ExperimentConfig,
    *,
    protocol: str = "lyra",
    node_classes: Optional[Dict[int, type]] = None,
    node_kwargs: Optional[Dict[int, dict]] = None,
):
    """Construct (but do not run) a cluster for ``protocol``.

    ``node_classes`` / ``node_kwargs`` inject Byzantine node subclasses per
    pid, exactly as the per-protocol builders did.
    """
    builder = _REGISTRY.get(protocol.lower())
    if builder is None:
        raise ValueError(
            f"unknown protocol {protocol!r}; available: {', '.join(available_protocols())}"
        )
    return builder(config, node_classes=node_classes, node_kwargs=node_kwargs)


register_protocol("lyra", LyraCluster)
register_protocol("pompe", PompeCluster)


__all__ = [
    "build_cluster",
    "register_protocol",
    "available_protocols",
    "ClusterBuilder",
]
