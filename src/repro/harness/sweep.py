"""Parallel experiment sweeps with content-addressed result caching.

The paper's evaluation is a grid of (protocol, n, batch, λ, seed) cells.
This module fans such a grid out across CPU cores and persists every
finished cell on disk, keyed by a content hash of the resolved
:class:`~repro.harness.config.ExperimentConfig` plus protocol name — so
re-running a sweep (or resuming an interrupted one) only executes the
cells that are missing.

Guarantees:

- **Determinism** — each cell is seeded solely by its config, so the same
  grid yields byte-identical per-cell results at any worker count (and
  whether a cell came from the cache or a fresh run).
- **Isolation** — a cell that raises is reported as a failed record; the
  rest of the grid still completes.
- **Resumability** — each successful cell is one JSONL file
  ``<cache_dir>/<content-hash>.jsonl``; re-invoking the sweep skips them.

Typical use::

    from repro.harness import ExperimentConfig
    from repro.harness.sweep import grid_cells, run_sweep

    cells = grid_cells(
        ExperimentConfig(duration_us=3_000_000),
        protocols=("lyra", "pompe"),
        seeds=(1, 2),
        n_nodes=[4, 7, 10],
    )
    report = run_sweep(cells, workers=4, cache_dir="results/sweep-cache")
    for record in report.records:
        print(record.protocol, record.config["n_nodes"], record.result.throughput_tps)
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.crypto.hashing import digest_of
from repro.harness.cluster import ExperimentResult
from repro.harness.config import ExperimentConfig

#: Bump when the cache record layout (or anything that changes simulated
#: results) becomes incompatible; old entries are then ignored, not misread.
#: Schema 2: canonical same-instant delivery ordering (deliveries run at
#: priority src+1) and per-source jitter streams — every digest changed —
#: plus the ``dissemination``/``fanout`` config knobs (hashed via
#: ``config.to_dict()`` like ``backend`` and every other field).
CACHE_SCHEMA = 2


# ----------------------------------------------------------------------
# Cells and content addressing
# ----------------------------------------------------------------------
def cell_key(config: ExperimentConfig, protocol: str) -> str:
    """Content hash of one (protocol, resolved config) sweep cell."""
    payload = {
        "schema": CACHE_SCHEMA,
        "protocol": protocol.lower(),
        "config": config.to_dict(),
    }
    return digest_of(payload).hex()


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a protocol plus a fully resolved config."""

    protocol: str
    config: ExperimentConfig

    @property
    def key(self) -> str:
        return cell_key(self.config, self.protocol)


def grid_cells(
    base: Optional[ExperimentConfig] = None,
    *,
    protocols: Sequence[str] = ("lyra",),
    seeds: Optional[Sequence[int]] = None,
    **axes: Sequence[Any],
) -> List[SweepCell]:
    """Cartesian grid of cells around ``base``.

    Each keyword argument names an :class:`ExperimentConfig` field and
    supplies the values to sweep; ``protocols`` and ``seeds`` multiply the
    grid.  Cell order (and therefore progress reporting) is deterministic:
    protocols × seeds × axes in the given order.  Per-cell seeding is by
    construction deterministic — the seed is part of the cell's config,
    never derived from execution order.
    """
    base = base if base is not None else ExperimentConfig()
    known = {f.name for f in fields(ExperimentConfig)}
    unknown = set(axes) - known
    if unknown:
        raise ValueError(f"unknown ExperimentConfig axes: {sorted(unknown)}")
    seed_values: Sequence[int] = seeds if seeds is not None else (base.seed,)
    names = list(axes)
    cells: List[SweepCell] = []
    for protocol in protocols:
        for seed in seed_values:
            for combo in itertools.product(*(axes[name] for name in names)):
                overrides = dict(zip(names, combo))
                overrides["seed"] = seed
                cells.append(SweepCell(protocol, replace(base, **overrides)))
    return cells


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class CellRecord:
    """Outcome of one cell: a result, or a contained failure."""

    key: str
    protocol: str
    config: Dict[str, Any]
    status: str  # "ok" | "error"
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    cached: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA,
            "key": self.key,
            "protocol": self.protocol,
            "config": self.config,
            "status": self.status,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "traceback": self.traceback,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "CellRecord":
        result = data.get("result")
        return cls(
            key=data["key"],
            protocol=data["protocol"],
            config=data["config"],
            status=data["status"],
            result=ExperimentResult.from_dict(result) if result else None,
            error=data.get("error"),
            traceback=data.get("traceback"),
            elapsed_s=data.get("elapsed_s", 0.0),
        )


@dataclass
class SweepReport:
    """Everything one :func:`run_sweep` invocation produced."""

    records: List[CellRecord]
    executed: int = 0  # cells actually simulated by this invocation
    cache_hits: int = 0
    failures: int = 0

    def ok_records(self) -> List[CellRecord]:
        return [r for r in self.records if r.ok]

    def failed_records(self) -> List[CellRecord]:
        return [r for r in self.records if not r.ok]

    def results(self) -> List[ExperimentResult]:
        return [r.result for r in self.records if r.result is not None]

    def aggregate_metrics(self) -> Dict[str, Any]:
        """Merge the metrics-registry snapshots of every successful cell
        (cells that ran without ``metrics=True`` contribute nothing).
        Counters sum, gauges average, histogram summaries merge with
        count-weighted percentiles — see
        :func:`repro.metrics.registry.merge_snapshots`."""
        from repro.metrics.registry import merge_snapshots

        return merge_snapshots(
            [r.metrics for r in self.results() if getattr(r, "metrics", None)]
        )

    def aggregate_fairness(self) -> Dict[str, Any]:
        """Consolidate the fairness blocks of every successful cell.

        Sums the accounting and sandwich counters across cells and
        count-weights the reorder statistics — the sweep-level view of
        "how unfair was this grid", keyed to feed the same report path
        as single runs.  Cells without a fairness block contribute
        nothing; returns ``{}`` when no cell produced one.
        """
        blocks = [
            r.fairness for r in self.results() if getattr(r, "fairness", None)
        ]
        if not blocks:
            return {}
        out: Dict[str, Any] = {
            "cells": len(blocks),
            "submitted": sum(b.get("submitted", 0) for b in blocks),
            "committed": sum(b.get("committed", 0) for b in blocks),
        }
        sandwich: Dict[str, float] = {}
        for key in ("attempts", "launched", "landed", "successes"):
            sandwich[key] = sum(
                b.get("sandwich", {}).get(key, 0) for b in blocks
            )
        sandwich["success_rate"] = (
            sandwich["successes"] / sandwich["attempts"]
            if sandwich["attempts"]
            else 0.0
        )
        out["sandwich"] = sandwich
        total = sum(b.get("reorder", {}).get("count", 0) for b in blocks)
        if total:
            out["reorder"] = {
                "count": total,
                "mean": sum(
                    b["reorder"]["mean"] * b["reorder"]["count"]
                    for b in blocks
                    if b.get("reorder", {}).get("count")
                )
                / total,
                "max": max(b["reorder"]["max"] for b in blocks),
                "kendall_tau": sum(
                    b["reorder"]["kendall_tau"] * b["reorder"]["count"]
                    for b in blocks
                    if b.get("reorder", {}).get("count")
                )
                / total,
            }
        return out


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.jsonl"


def load_cached_record(cache_dir: Path, key: str) -> Optional[CellRecord]:
    """Load a cell's cached record; None if absent, stale, or unreadable."""
    path = _cache_path(cache_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            line = fh.readline()
        data = json.loads(line)
    except (OSError, ValueError):
        return None
    if data.get("schema") != CACHE_SCHEMA or data.get("status") != "ok":
        return None
    try:
        record = CellRecord.from_json_dict(data)
    except (KeyError, TypeError, ValueError):
        return None
    record.cached = True
    return record


def store_record(cache_dir: Path, record: CellRecord) -> None:
    """Persist one successful cell as a single-line JSONL file, atomically
    (interrupted sweeps never leave half-written entries)."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = _cache_path(cache_dir, record.key)
    tmp = path.with_suffix(".jsonl.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(record.to_json_dict(), sort_keys=True) + "\n")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute_cell(payload: Tuple[int, str, Dict[str, Any], bool]):
    """Worker entry point: run one cell from plain data (must stay at
    module top level so the multiprocessing pool can pickle it)."""
    index, protocol, config_dict, skip_safety_check = payload
    started = time.perf_counter()
    try:
        # Imported here (not at module import) so worker start-up cost is
        # paid once per process, and a fork-started worker reuses the parent.
        from repro.harness.factory import build_cluster

        config = ExperimentConfig.from_dict(config_dict)
        cluster = build_cluster(config, protocol=protocol)
        result = cluster.run(skip_safety_check=skip_safety_check)
        return index, {
            "status": "ok",
            "result": result.to_dict(),
            "elapsed_s": time.perf_counter() - started,
        }
    except Exception as exc:  # crash-in-one-cell isolation
        return index, {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "elapsed_s": time.perf_counter() - started,
        }


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: Progress hook: (record, done_count, total_count) -> None.
ProgressHook = Callable[[CellRecord, int, int], None]


def run_sweep(
    cells: Sequence[SweepCell],
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    force: bool = False,
    skip_safety_check: bool = False,
    progress: Optional[ProgressHook] = None,
) -> SweepReport:
    """Run a grid of cells, in parallel, against the cache.

    ``workers=1`` runs serially in-process; higher counts fan the
    non-cached cells out over a process pool.  Results are identical at
    any worker count.  With ``cache_dir`` set, cached cells are returned
    without executing any simulation and fresh cells are persisted;
    ``force=True`` ignores (and overwrites) existing entries.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    cache = Path(cache_dir) if cache_dir else None
    report = SweepReport(records=[None] * len(cells))  # type: ignore[list-item]
    done = 0

    def _finish(index: int, record: CellRecord) -> None:
        nonlocal done
        done += 1
        report.records[index] = record
        if record.cached:
            report.cache_hits += 1
        elif record.ok:
            report.executed += 1
        if not record.ok:
            report.failures += 1
        if progress is not None:
            progress(record, done, len(cells))

    # Cache pass: satisfy whatever is already on disk.
    pending: List[Tuple[int, SweepCell, str]] = []
    for index, cell in enumerate(cells):
        key = cell.key
        if cache is not None and not force:
            record = load_cached_record(cache, key)
            if record is not None:
                _finish(index, record)
                continue
        pending.append((index, cell, key))

    def _record_outcome(index: int, cell: SweepCell, key: str, outcome: Dict) -> None:
        record = CellRecord(
            key=key,
            protocol=cell.protocol,
            config=cell.config.to_dict(),
            status=outcome["status"],
            result=(
                ExperimentResult.from_dict(outcome["result"])
                if outcome.get("result")
                else None
            ),
            error=outcome.get("error"),
            traceback=outcome.get("traceback"),
            elapsed_s=outcome.get("elapsed_s", 0.0),
        )
        if cache is not None and record.ok:
            store_record(cache, record)
        _finish(index, record)

    payloads = [
        (index, cell.protocol, cell.config.to_dict(), skip_safety_check)
        for index, cell, _ in pending
    ]
    by_index = {index: (cell, key) for index, cell, key in pending}

    if workers == 1 or len(pending) <= 1:
        for payload in payloads:
            index, outcome = _execute_cell(payload)
            cell, key = by_index[index]
            _record_outcome(index, cell, key, outcome)
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(pending))) as pool:
            for index, outcome in pool.imap_unordered(_execute_cell, payloads):
                cell, key = by_index[index]
                _record_outcome(index, cell, key, outcome)

    return report


def sweep_workers(default: int = 1) -> int:
    """Worker count for harness-internal sweeps: the ``REPRO_WORKERS``
    environment variable, else ``default``."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", default)))
    except ValueError:
        return default


def sweep_cache_dir() -> Optional[str]:
    """Cache directory for harness-internal sweeps: ``REPRO_CACHE`` if set."""
    value = os.environ.get("REPRO_CACHE", "").strip()
    return value or None


__all__ = [
    "CACHE_SCHEMA",
    "SweepCell",
    "CellRecord",
    "SweepReport",
    "cell_key",
    "grid_cells",
    "run_sweep",
    "load_cached_record",
    "store_record",
    "sweep_workers",
    "sweep_cache_dir",
]
