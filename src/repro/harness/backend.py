"""Simulation-backend selection for the cluster builders.

``ExperimentConfig.backend`` picks the engine at ``build_cluster`` time:

- ``"python"`` — the reference implementation: :class:`~repro.sim.engine.
  Simulator`, scalar-buffered :class:`~repro.net.latency.GeoLatencyModel`
  jitter, scalar :class:`~repro.net.faults.FaultInjector` draws.  This is
  the bit-determinism oracle every optimisation is validated against.
- ``"vector"`` — the accelerated backend: :class:`~repro.sim.arena.
  ArenaSimulator` (no per-event records on fire-and-forget paths, recycled
  bucket storage), :class:`~repro.net.latency.VectorGeoLatencyModel`
  (one numpy draw per broadcast fan-out) and :class:`~repro.net.faults.
  VectorFaultInjector` (blocked per-link uniforms).  Schedules remain a
  pure function of ``(seed, config)``: decided-prefix digests are
  identical to the python backend, which the bench suite and the
  backend-equivalence tests enforce.

The accelerated classes are imported lazily so the default path never
touches them — a broken or missing vector module can only ever fail runs
that asked for it.
"""

from __future__ import annotations

from typing import Optional

from repro.harness.config import ExperimentConfig
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.latency import GeoLatencyModel, LatencyModel, UniformLatencyModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Recognised ``ExperimentConfig.backend`` values.
BACKENDS = ("python", "vector")


def resolve_backend(config: ExperimentConfig) -> str:
    """The validated backend name of ``config``."""
    backend = getattr(config, "backend", "python")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of {BACKENDS}"
        )
    return backend


def make_simulator(config: ExperimentConfig) -> Simulator:
    """The event loop the cluster runs on."""
    if resolve_backend(config) == "vector":
        from repro.sim.arena import ArenaSimulator

        return ArenaSimulator()
    return Simulator()


def make_latency_model(
    config: ExperimentConfig, placement, rng: RngRegistry
) -> LatencyModel:
    """The WAN model: uniform (jitter-free) beats backend choice."""
    if config.uniform_delay_us is not None:
        # Jitter-free uniform links draw nothing, so there is nothing to
        # vectorise; both backends share one implementation.
        return UniformLatencyModel(config.uniform_delay_us)
    if resolve_backend(config) == "vector":
        from repro.net.latency import VectorGeoLatencyModel

        return VectorGeoLatencyModel(placement, jitter=config.jitter, rng=rng)
    return GeoLatencyModel(placement, jitter=config.jitter, rng=rng)


def make_fault_injector(
    config: ExperimentConfig, plan: FaultPlan, rng: RngRegistry
) -> FaultInjector:
    """The link-fault executor for ``plan``."""
    if resolve_backend(config) == "vector":
        from repro.net.faults import VectorFaultInjector

        return VectorFaultInjector(plan, rng)
    return FaultInjector(plan, rng)


__all__ = [
    "BACKENDS",
    "resolve_backend",
    "make_simulator",
    "make_latency_model",
    "make_fault_injector",
]
