"""Full-cluster attack experiments (Fig. 1 and §VI-D).

These builders construct mixed honest/Byzantine deployments on the Fig. 1
topology and report whether the front-run landed in the committed order.
They are used by ``benchmarks/bench_fig1_frontrunning.py`` and the
``examples/frontrunning_attack.py`` walk-through.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.attacks.pompe_attacks import (
    ATTACK_MARKER,
    CherryPickingOrdererNode,
    VICTIM_MARKER,
    batch_contains,
)
from repro.baselines.pompe import PompeConfig, PompeNode
from repro.core.commit import CommitConfig
from repro.core.node import LyraConfig, LyraNode
from repro.core.obfuscation import make_obfuscation
from repro.core.types import Batch, InstanceId, Transaction
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.net.latency import GeoLatencyModel
from repro.net.network import Network, NetworkConfig
from repro.net.topology import Topology
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.rng import RngRegistry
from repro.workload.clients import OpenLoopClient


def _fig1_outcome_cls():
    from repro.attacks.frontrun import Fig1Outcome

    return Fig1Outcome


# ----------------------------------------------------------------------
# Pompē: clear-text ordering — the attack is expected to SUCCEED.
# ----------------------------------------------------------------------
def run_pompe_attack(scenario, *, seed: int = 7, duration_us: int = 12_000_000):
    Fig1Outcome = _fig1_outcome_cls()
    sim = Simulator()
    rng = RngRegistry(seed)
    n, f = scenario.n, scenario.f
    topology = Topology(n, scenario.regions())
    registry = KeyRegistry(seed)
    threshold = ThresholdScheme(2 * f + 1, n, seed=seed)

    nodes: List[PompeNode] = []
    for pid in range(n):
        cfg = PompeConfig(batch_size=1, batch_timeout_us=20 * MILLISECONDS)
        cls = CherryPickingOrdererNode if pid == 1 else PompeNode
        nodes.append(
            cls(
                pid,
                sim,
                n=n,
                f=f,
                registry=registry,
                threshold=threshold,
                config=cfg,
                rng=rng,
            )
        )

    latency = GeoLatencyModel(topology.placement, jitter=0.0, rng=rng)
    network = Network(
        sim, latency, config=NetworkConfig(delta_us=200 * MILLISECONDS)
    )
    for node in nodes:
        network.register(node, replica=True)

    # Alice: one victim transaction from Tokyo, homed at the Tokyo replica.
    alice_pid = topology.place(scenario.victim_region)
    alice = OpenLoopClient(
        alice_pid,
        sim,
        0,
        interval_us=1_000_000,
        start_at_us=1_000_000,
        count=1,
        body=VICTIM_MARKER,
    )
    network.register(alice, replica=False)

    # Record executed batches at the victim's replica.
    executed: List[Tuple[int, Batch]] = []
    nodes[0].on_executed = lambda cert: executed.append(
        (cert.assigned_ts, cert.batch)
    )

    for node in nodes:
        node.start()
    sim.run(until=duration_us)

    victim_pos = attacker_pos = None
    for idx, (_, batch) in enumerate(executed):
        if batch_contains(batch, VICTIM_MARKER) and victim_pos is None:
            victim_pos = idx
        if batch_contains(batch, ATTACK_MARKER) and attacker_pos is None:
            attacker_pos = idx
    succeeded = (
        attacker_pos < victim_pos
        if victim_pos is not None and attacker_pos is not None
        else None
    )
    attacker = nodes[1]
    return Fig1Outcome(
        attack_succeeded=succeeded,
        victim_position=victim_pos,
        attacker_position=attacker_pos,
        attacker_observed_plaintext=attacker.attack.observed_at_us is not None,
        detail=(
            f"observed at {attacker.attack.observed_at_us}us, "
            f"attacked at {attacker.attack.attacked_at_us}us, "
            f"executed order: victim@{victim_pos} attacker@{attacker_pos}"
        ),
    )


# ----------------------------------------------------------------------
# Lyra: commit-reveal — the attack is expected to FAIL.
# ----------------------------------------------------------------------
class LyraBackdatingAttacker(LyraNode):
    """The strongest Mallory against Lyra: she cannot read ciphertexts, so
    she waits for the reveal and then tries to inject a front-running
    transaction with a *backdated* sequence-number prediction set.  The
    validation function (Equation 1) rejects it at every correct replica.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.observed_plaintext_at: Optional[int] = None
        self.attacked_at: Optional[int] = None
        self.attack_iid: Optional[InstanceId] = None
        self.attack_decision: Optional[int] = None
        self.victim_seq: Optional[int] = None
        self._attack_nonce = 0

    def _on_execute(self, entry, plaintext: bytes) -> None:
        super()._on_execute(entry, plaintext)
        if self.observed_plaintext_at is not None:
            return
        try:
            batch = Batch.deserialize(
                entry.instance.proposer, entry.instance.batch_no, plaintext
            )
        except ValueError:
            return
        if not batch_contains(batch, VICTIM_MARKER):
            return
        # First moment Mallory can READ the victim's payload: post-commit.
        self.observed_plaintext_at = self.sim.now
        self.victim_seq = entry.seq
        self._launch_backdated(entry.seq)

    def _launch_backdated(self, victim_seq: int) -> None:
        self.attacked_at = self.sim.now
        tx = Transaction(self.pid, self._attack_nonce, ATTACK_MARKER)
        self._attack_nonce += 1
        iid = InstanceId(self.pid, self._batch_counter)
        self._batch_counter += 1
        self.attack_iid = iid
        batch = Batch(self.pid, iid.batch_no, (tx,))
        cipher = self.obf.encrypt(batch.serialize(), self.rng, self.pid)
        # Claim every replica perceived the transaction just before the
        # victim's sequence number — a lie by now, hence rejected.
        preds = tuple(victim_seq - 1_000 for _ in range(self.n))
        self._s_ref[iid] = victim_seq - 1_000
        self._instance(iid).propose(cipher, preds)

    def _on_decide(self, iid, v, m) -> None:
        if iid == self.attack_iid:
            self.attack_decision = v
        super()._on_decide(iid, v, m)


def run_lyra_attack(scenario, *, seed: int = 7, duration_us: int = 12_000_000):
    Fig1Outcome = _fig1_outcome_cls()
    sim = Simulator()
    rng = RngRegistry(seed)
    n, f = scenario.n, scenario.f
    topology = Topology(n, scenario.regions())
    registry = KeyRegistry(seed)
    threshold = ThresholdScheme(2 * f + 1, n, seed=seed)
    obf = make_obfuscation("vss", 2 * f + 1, n, seed=seed)

    nodes: List[LyraNode] = []
    for pid in range(n):
        cfg = LyraConfig(
            batch_size=1,
            batch_timeout_us=20 * MILLISECONDS,
            commit=CommitConfig(lambda_us=5 * MILLISECONDS),
            warmup_rounds=3,
            warmup_spacing_us=200 * MILLISECONDS,
        )
        cls = LyraBackdatingAttacker if pid == 1 else LyraNode
        nodes.append(
            cls(
                pid,
                sim,
                n=n,
                f=f,
                registry=registry,
                threshold=threshold,
                obfuscation=obf,
                config=cfg,
                rng=rng,
            )
        )

    latency = GeoLatencyModel(topology.placement, jitter=0.0, rng=rng)
    network = Network(
        sim, latency, config=NetworkConfig(delta_us=200 * MILLISECONDS)
    )
    for node in nodes:
        network.register(node, replica=True)

    alice_pid = topology.place(scenario.victim_region)
    alice = OpenLoopClient(
        alice_pid,
        sim,
        0,
        interval_us=1_000_000,
        start_at_us=1_500_000,  # after warm-up
        count=1,
        body=VICTIM_MARKER,
    )
    network.register(alice, replica=False)

    for node in nodes:
        node.start()
    sim.run(until=duration_us)

    attacker: LyraBackdatingAttacker = nodes[1]  # type: ignore[assignment]
    output = nodes[0].output_sequence()
    victim_pos = attacker_pos = None
    # Identify positions via executed plaintexts at node 0.
    for idx, entry in enumerate(nodes[0].commit.output_log):
        plaintext = nodes[0].commit._plaintexts.get(entry.instance)
        if plaintext is None:
            continue
        try:
            batch = Batch.deserialize(
                entry.instance.proposer, entry.instance.batch_no, plaintext
            )
        except ValueError:
            continue
        if batch_contains(batch, VICTIM_MARKER) and victim_pos is None:
            victim_pos = idx
        if batch_contains(batch, ATTACK_MARKER) and attacker_pos is None:
            attacker_pos = idx
    succeeded = (
        attacker_pos < victim_pos
        if victim_pos is not None and attacker_pos is not None
        else (False if victim_pos is not None else None)
    )
    return Fig1Outcome(
        attack_succeeded=succeeded,
        victim_position=victim_pos,
        attacker_position=attacker_pos,
        attacker_observed_plaintext=attacker.observed_plaintext_at is not None,
        attacker_rejected=attacker.attack_decision == 0,
        detail=(
            f"plaintext visible at {attacker.observed_plaintext_at}us "
            f"(post-commit), backdated attack decision="
            f"{attacker.attack_decision}, victim@{victim_pos} "
            f"attacker@{attacker_pos}"
        ),
    )


__all__ = ["run_pompe_attack", "run_lyra_attack", "LyraBackdatingAttacker"]
