"""Artifact generation: run every experiment and write results to disk.

``generate_report(outdir)`` regenerates all of DESIGN.md §4's experiments
(quick mode unless ``REPRO_FULL=1``), writing:

- ``results.json`` — machine-readable rows per experiment;
- ``REPORT.md`` — the same tables as markdown, timestamped with the run's
  configuration so EXPERIMENTS.md claims can be re-derived verbatim.

Used by ``python -m repro report``.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Callable, Dict, List, Tuple

from repro.harness import experiments as exp

#: (experiment id, description, callable returning rows)
EXPERIMENTS: List[Tuple[str, str, Callable[[], List[dict]]]] = [
    ("LAT3", "good-case message delays (Theorem 3)", lambda: [exp.goodcase_latency_rounds()]),
    ("FIG1", "front-running attack (paper Fig. 1)", exp.fig1_frontrunning),
    ("FIG2", "commit latency vs n (paper Fig. 2)", lambda: exp.fig2_commit_latency()),
    ("FIG3", "throughput vs n (paper Fig. 3)", lambda: exp.fig3_throughput()),
    ("FIG3-VALID", "message-level throughput validation", lambda: [exp.fig3_sim_validation()]),
    ("LAM", "security parameter lambda (§VI-B)", lambda: exp.lambda_ablation()),
    ("LAM-JITTER", "jitter sensitivity at lambda = 5 ms", lambda: exp.jitter_sensitivity()),
    ("BATCH", "batch size (§VI-B)", lambda: exp.batch_ablation()),
    ("BYZ", "Byzantine behaviours (§VI-D)", exp.byzantine_behaviours),
    ("BYZ-CENSOR", "leader censorship (§V-E)", exp.censorship_comparison),
    ("OBF", "VSS vs hash commit-reveal", exp.obfuscation_ablation),
    ("DECOMP", "latency decomposition", exp.latency_breakdown),
    ("DECOMP-DELTA", "delta sensitivity", lambda: exp.delta_ablation()),
]


def _markdown_table(rows: List[dict]) -> str:
    if not rows:
        return "(no rows)\n"
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    lines = [
        "| " + " | ".join(keys) + " |",
        "|" + "|".join("---" for _ in keys) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(row.get(k, "")) for k in keys) + " |"
        )
    return "\n".join(lines) + "\n"


def generate_report(
    outdir: str = "results", *, only: List[str] | None = None
) -> Dict[str, List[dict]]:
    """Run the experiments and write ``results.json`` + ``REPORT.md``."""
    os.makedirs(outdir, exist_ok=True)
    results: Dict[str, List[dict]] = {}
    md: List[str] = [
        "# Reproduction report\n",
        f"- mode: {'FULL (paper node counts)' if exp.full_mode() else 'quick'}",
        f"- python: {platform.python_version()} on {platform.system()}",
        "- all runs deterministic given the seeds in "
        "`repro.harness.experiments`\n",
    ]
    for exp_id, description, fn in EXPERIMENTS:
        if only and exp_id not in only:
            continue
        print(f"[{exp_id}] {description} ...", flush=True)
        rows = fn()
        results[exp_id] = rows
        md.append(f"\n## {exp_id} — {description}\n")
        md.append(_markdown_table(rows))
    with open(os.path.join(outdir, "results.json"), "w") as fh:
        json.dump(results, fh, indent=2, default=str)
    with open(os.path.join(outdir, "REPORT.md"), "w") as fh:
        fh.write("\n".join(md))
    print(f"wrote {outdir}/results.json and {outdir}/REPORT.md")
    return results


__all__ = ["generate_report", "EXPERIMENTS"]
