"""Pompē cluster builder — the §VI baseline deployment.

Mirrors :mod:`repro.harness.cluster` so Fig. 2/3 sweeps run both systems
under identical topology, cost model, client placement and seeds.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from repro.baselines.pompe import PompeConfig, PompeNode
from repro.core.smr import check_prefix_consistency
from repro.crypto.cost import DEFAULT_COSTS
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.harness.backend import make_simulator, resolve_backend
from repro.harness.cluster import ExperimentResult
from repro.harness.config import ExperimentConfig
from repro.metrics.fairness import fairness_block
from repro.net.adversary import NullAdversary, PartialSynchronyAdversary
from repro.net.latency import GeoLatencyModel
from repro.net.network import Network, NetworkConfig
from repro.net.topology import Topology
from repro.sim.rng import RngRegistry
from repro.workload.clients import TxKey, _BaseClient
from repro.workload.spec import build_workload


class PompeCluster:
    """A fully wired Pompē deployment inside one simulator.

    ``node_classes`` / ``node_kwargs`` inject Byzantine node subclasses
    per pid (censoring leaders, cherry-picking orderers, ...).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        node_classes=None,
        node_kwargs=None,
    ) -> None:
        self.config = config
        self.sim = make_simulator(config)
        self.rng = RngRegistry(config.seed)
        f = config.resolved_f()
        n = config.n_nodes

        self.topology = Topology(n, config.regions)
        self.registry = KeyRegistry(config.seed)
        self.threshold = ThresholdScheme(2 * f + 1, n, seed=config.seed)
        costs = DEFAULT_COSTS.scaled(config.cpu_cost_scale)

        self.nodes: List[PompeNode] = []
        skew_rng = self.rng.get("clock-skew")
        for pid in range(n):
            node_cfg = PompeConfig(
                batch_size=config.batch_size,
                batch_timeout_us=config.batch_timeout_us,
                costs=costs,
                clock_skew_us=int(
                    skew_rng.integers(
                        -config.clock_skew_max_us, config.clock_skew_max_us + 1
                    )
                ),
            )
            cls = (node_classes or {}).get(pid, PompeNode)
            extra = (node_kwargs or {}).get(pid, {})
            self.nodes.append(
                cls(
                    pid,
                    self.sim,
                    n=n,
                    f=f,
                    registry=self.registry,
                    threshold=self.threshold,
                    config=node_cfg,
                    rng=self.rng,
                    **extra,
                )
            )

        # Clients: declared by the workload spec (legacy knobs shim into
        # an equivalent spec), mirroring the Lyra cluster's placement.
        self.workload_spec = config.resolved_workload()
        self.workload = build_workload(
            self.workload_spec,
            sim=self.sim,
            topology=self.topology,
            rng=self.rng,
            n=n,
            start_at_us=config.client_start_us(),
            stop_at_us=config.duration_us,
        )
        self.clients: List[_BaseClient] = self.workload.clients

        # MEV observation tap: Pompē batches travel in clear text during
        # the ordering phase, so a bot colocated with its home replica
        # sees every victim payload *before* a timestamp is assigned —
        # the attack surface Lyra closes.  Chained after any existing
        # hook (a colluding CherryPickingOrdererNode installs its own).
        for node in self.nodes:
            bots = self.workload.mev_bots_by_home().get(node.pid)
            if not bots:
                continue
            prev = node.observe_batch

            def tap(batch, sender, prev=prev, bots=tuple(bots)):
                if prev is not None:
                    prev(batch, sender)
                for bot in bots:
                    bot.on_observed_batch(batch)

            node.observe_batch = tap

        # Backend-selected jitter implementation (Pompē always runs the
        # geo matrix; it has no uniform-delay mode).
        if resolve_backend(config) == "vector":
            from repro.net.latency import VectorGeoLatencyModel

            latency = VectorGeoLatencyModel(
                self.topology.placement, jitter=config.jitter, rng=self.rng
            )
        else:
            latency = GeoLatencyModel(
                self.topology.placement, jitter=config.jitter, rng=self.rng
            )
        adversary = (
            PartialSynchronyAdversary(
                config.gst_us,
                max_delay_us=config.adversary_max_delay_us,
                rng=self.rng,
            )
            if config.gst_us > 0
            else NullAdversary()
        )
        self.network = Network(
            self.sim,
            latency,
            adversary,
            NetworkConfig(
                delta_us=config.delta_us,
                bandwidth_enabled=config.bandwidth_enabled,
                rate_bps=config.rate_bps,
            ),
        )
        for node in self.nodes:
            self.network.register(node, replica=True)
        for client in self.clients:
            self.network.register(client, replica=False)

        self.committed_order: List[TxKey] = []
        self.exec_events: Dict[int, List[Tuple[int, int]]] = {}
        for node in self.nodes:
            events: List[Tuple[int, int]] = []
            self.exec_events[node.pid] = events

            def _hook(cert, events=events, node=node):
                events.append((node.sim.now, len(cert.batch)))

            hook = _hook
            if self.workload_spec.fairness and node.pid == 0:

                def hook(cert, prev=hook, order=self.committed_order):
                    prev(cert)
                    order.extend(tx.key() for tx in cert.batch.txs)

            node.on_executed = hook

    # ------------------------------------------------------------------
    def run(self, *, skip_safety_check: bool = False) -> ExperimentResult:
        cfg = self.config
        for node in self.nodes:
            node.start()
        self.sim.run(until=cfg.duration_us)
        self.workload.finalize(self.sim.now)

        latencies: List[int] = []
        for client in self.clients:
            latencies.extend(client.stats.latencies_us)
        result = ExperimentResult(
            n_nodes=cfg.n_nodes,
            duration_us=cfg.duration_us,
            executed_total=max(
                (node.stats.txs_executed for node in self.nodes), default=0
            ),
            committed_count=sum(c.stats.completed for c in self.clients),
            latencies_us=latencies,
            events_processed=self.sim.events_processed,
            messages_delivered=self.network.messages_delivered,
            bytes_delivered=self.network.bytes_delivered,
        )
        if latencies:
            result.avg_latency_us = float(statistics.fmean(latencies))
            ordered = sorted(latencies)
            result.p50_latency_us = float(ordered[len(ordered) // 2])
            result.p99_latency_us = float(
                ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
            )
        measure_from = cfg.measurement_start_us()
        window_us = max(1, cfg.duration_us - measure_from)
        per_node = sorted(
            sum(c for t, c in events if t >= measure_from)
            for events in self.exec_events.values()
        )
        if per_node:
            result.throughput_tps = (
                per_node[len(per_node) // 2] * 1_000_000.0 / window_us
            )
        if self.workload_spec.fairness:
            block = fairness_block(
                submitted_order=self.workload.submit_order(),
                committed_order=self.committed_order,
                attempts=self.workload.sandwich_attempts(),
                latencies_by_group=self.workload.latencies_by_group(),
            )
            block["counts"] = self.workload.counts()
            result.fairness = block
        if not skip_safety_check:
            outputs = {node.pid: node.output_sequence() for node in self.nodes}
            result.safety_violation = check_prefix_consistency(outputs)
        return result


def build_pompe_cluster(
    config: ExperimentConfig, *, node_classes=None, node_kwargs=None
) -> PompeCluster:
    """Deprecated: use ``build_cluster(config, protocol="pompe")``."""
    import warnings

    warnings.warn(
        "build_pompe_cluster is deprecated; use "
        "repro.harness.build_cluster(config, protocol='pompe')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.harness.factory import build_cluster

    return build_cluster(
        config, protocol="pompe", node_classes=node_classes, node_kwargs=node_kwargs
    )


__all__ = ["PompeCluster", "build_pompe_cluster"]
