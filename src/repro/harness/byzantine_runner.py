"""Byzantine-behaviour experiments (§VI-D and §V-E).

Each case runs a 4-node Lyra cluster with one Byzantine replica (pid 3 —
clients only attach to correct replicas) and verifies the cluster stays
safe and live, reporting what the deviation cost.  The censorship case
contrasts a Byzantine HotStuff leader in Pompē with leaderless Lyra.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.byzantine import (
    EquivocatingNode,
    FloodingNode,
    FutureSequenceNode,
    PrefixStallerNode,
    SilentProposerNode,
)
from repro.attacks.pompe_attacks import CensoringLeaderNode
from repro.harness.cluster import build_lyra_cluster
from repro.harness.config import ExperimentConfig
from repro.harness.pompe_cluster import build_pompe_cluster
from repro.sim.engine import MILLISECONDS, SECONDS

_CASES: Dict[str, Optional[type]] = {
    "baseline": None,
    "equivocator": EquivocatingNode,
    "silent-proposer": SilentProposerNode,
    "flooder": FloodingNode,
    "flooder-limited": FloodingNode,  # with the fair-allocation rate cap on
    "future-sequence": FutureSequenceNode,
    "prefix-staller": PrefixStallerNode,
}

_CASE_KWARGS: Dict[str, dict] = {
    "silent-proposer": {"reach": 2},  # INIT reaches only f+1 replicas
    "flooder": {"flood_interval_us": 200 * MILLISECONDS},
    "flooder-limited": {"flood_interval_us": 200 * MILLISECONDS},
    "future-sequence": {"offset_us": 3_600_000_000},
}


def byzantine_cases() -> List[str]:
    return list(_CASES)


def run_byzantine_case(case: str, *, seed: int = 13, n: int = 4) -> Dict:
    """One Byzantine Lyra replica; report liveness/safety of the cluster."""
    if case not in _CASES:
        raise ValueError(f"unknown Byzantine case {case!r}")
    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=10,
        clients_per_node=0,
        duration_us=8 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
        # The fair-allocation cap (§VI-D) throttles flooders while leaving
        # honest proposal rates (well under 3/s here) untouched.
        max_proposer_rate_per_s=3.0 if case == "flooder-limited" else None,
    )
    byz_pid = n - 1
    node_classes = {}
    node_kwargs = {}
    if _CASES[case] is not None:
        node_classes[byz_pid] = _CASES[case]
        node_kwargs[byz_pid] = _CASE_KWARGS.get(case, {})
    cluster = build_lyra_cluster(
        cfg, node_classes=node_classes, node_kwargs=node_kwargs
    )
    # Clients only on correct replicas.
    from repro.workload.clients import ClosedLoopClient

    for home in range(n - 1):
        cpid = cluster.topology.place(cluster.topology.region_of(home))
        client = ClosedLoopClient(
            cpid, cluster.sim, home, window=5, start_at_us=cfg.client_start_us()
        )
        cluster.clients.append(client)
        cluster.network.register(client, replica=False)
    # Fuel the Byzantine proposer cases: the attacker needs transactions
    # in its mempool to misbehave with.
    if case in ("equivocator", "silent-proposer", "future-sequence"):
        byz_client = ClosedLoopClient(
            cluster.topology.place(cluster.topology.region_of(byz_pid)),
            cluster.sim,
            byz_pid,
            window=3,
            start_at_us=cfg.client_start_us(),
        )
        cluster.clients.append(byz_client)
        cluster.network.register(byz_client, replica=False)

    result = cluster.run(skip_safety_check=True)
    # Safety over CORRECT replicas only (the Byzantine one may lie about
    # its own output).
    from repro.core.smr import check_output_sorted, check_prefix_consistency

    outputs = {
        node.pid: node.output_sequence()
        for node in cluster.nodes
        if node.pid != byz_pid
    }
    violation = check_prefix_consistency(outputs)
    if violation is None:
        for pid, output in outputs.items():
            err = check_output_sorted(output)
            if err:
                violation = f"pid {pid}: {err}"
                break

    correct_completed = sum(
        c.stats.completed for c in cluster.clients[: n - 1]
    )
    rate_limited = sum(
        node.commit.rate_limited_count
        for node in cluster.nodes
        if node.pid != byz_pid and node.commit
    )
    return {
        "case": case,
        "correct_clients_completed": correct_completed,
        "accepted": result.accepted_instances,
        "rejected": result.rejected_instances,
        "rate_limited": rate_limited,
        "latency_ms": round(result.avg_latency_ms, 1),
        "safety_violation": violation,
        "live": correct_completed > 0,
    }


def run_warmup_bias_case(*, seed: int = 59, n: int = 4) -> Dict:
    """§VI-D's network adversary: biases the propagation-delay measurements
    during warm-up (all traffic to/from one victim delayed pre-GST).  The
    poisoned distance estimates reject the victim's early proposals, but
    continuous re-probing and vote piggybacks re-converge the estimates
    after GST and its transactions commit (the "unexpected change ...
    triggers the rejection" then recovery story)."""
    from repro.net.adversary import TargetedDelayAdversary
    from repro.workload.clients import ClosedLoopClient

    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=5,
        clients_per_node=0,
        duration_us=12 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )
    cluster = build_lyra_cluster(cfg)
    cluster.network.adversary = TargetedDelayAdversary(
        {2}, 400 * MILLISECONDS, gst_us=2 * SECONDS
    )
    client = ClosedLoopClient(
        cluster.topology.place(cluster.topology.region_of(2)),
        cluster.sim,
        2,
        window=3,
        start_at_us=cfg.client_start_us(),
    )
    cluster.clients.append(client)
    cluster.network.register(client, replica=False)
    result = cluster.run()
    return {
        "case": "network-warmup-bias",
        "victim_completed": client.stats.completed,
        "rejected_then_retried": result.rejected_instances,
        "safety_violation": result.safety_violation,
        "live_after_gst": client.stats.completed > 0,
    }


def run_censorship_case(*, seed: int = 17, n: int = 4) -> List[Dict]:
    """Pompē with a censoring leader (drops pid-2 certificates) vs Lyra."""
    victim = 2
    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=5,
        clients_per_node=1,
        client_window=3,
        duration_us=10 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )
    pompe = build_pompe_cluster(
        cfg,
        node_classes={0: CensoringLeaderNode},
        node_kwargs={0: {"censored": {victim}}},
    )
    # Keep the censoring leader in power: no view changes on its watch —
    # it makes "progress" on everything except the victim's certificates,
    # so its behaviour is indistinguishable from honest slowness.
    pompe_res = pompe.run(skip_safety_check=True)
    pompe_victim = pompe.clients[victim].stats.completed
    pompe_others = sum(
        c.stats.completed for i, c in enumerate(pompe.clients) if i != victim
    )

    lyra = build_lyra_cluster(cfg)
    lyra_res = lyra.run(skip_safety_check=True)
    lyra_victim = lyra.clients[victim].stats.completed
    lyra_others = sum(
        c.stats.completed for i, c in enumerate(lyra.clients) if i != victim
    )
    leader: CensoringLeaderNode = pompe.nodes[0]  # type: ignore[assignment]

    # Fino-style commit-reveal with a *blind* censoring leader: it cannot
    # read any payload, yet still starves the victim by proposer identity —
    # the paper's §I critique of leader-based blind order-fairness.
    fino_victim, fino_others, fino_censored = _run_fino_censorship(
        seed=seed, n=n, victim=victim
    )
    return [
        {
            "system": "pompe+censoring-leader",
            "victim_completed": pompe_victim,
            "others_completed": pompe_others,
            "certs_censored": leader.censored_count,
        },
        {
            "system": "fino+blind-censoring-leader",
            "victim_completed": fino_victim,
            "others_completed": fino_others,
            "certs_censored": fino_censored,
        },
        {
            "system": "lyra",
            "victim_completed": lyra_victim,
            "others_completed": lyra_others,
            "certs_censored": 0,
        },
    ]


def _run_fino_censorship(*, seed: int, n: int, victim: int):
    from repro.baselines.fino import (
        BlindCensoringLeaderFino,
        FinoConfig,
        FinoNode,
    )
    from repro.core.obfuscation import HashCommitObfuscation
    from repro.crypto.signatures import KeyRegistry
    from repro.crypto.threshold import ThresholdScheme
    from repro.net.latency import UniformLatencyModel
    from repro.net.network import Network, NetworkConfig
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.workload.clients import ClosedLoopClient

    f = (n - 1) // 3
    sim = Simulator()
    registry = KeyRegistry(seed)
    threshold = ThresholdScheme(2 * f + 1, n, seed=seed)
    obf = HashCommitObfuscation(2 * f + 1, n, seed=seed)
    net = Network(
        sim,
        UniformLatencyModel(10 * MILLISECONDS),
        config=NetworkConfig(delta_us=50 * MILLISECONDS, bandwidth_enabled=False),
    )
    nodes = []
    for pid in range(n):
        cls = BlindCensoringLeaderFino if pid == 0 else FinoNode
        kwargs = {"censored": {victim}} if pid == 0 else {}
        node = cls(
            pid,
            sim,
            n=n,
            f=f,
            registry=registry,
            threshold=threshold,
            obfuscation=obf,
            config=FinoConfig(batch_size=5, batch_timeout_us=20 * MILLISECONDS),
            rng=RngRegistry(seed),
            **kwargs,
        )
        nodes.append(node)
        net.register(node)
    clients = []
    for i, home in enumerate(range(n)):
        client = ClosedLoopClient(
            100 + i, sim, home, window=3, start_at_us=200_000
        )
        clients.append(client)
        net.register(client, replica=False)
    for node in nodes:
        node.start()
    sim.run(until=8 * SECONDS)
    victim_completed = clients[victim].stats.completed
    others = sum(
        c.stats.completed for i, c in enumerate(clients) if i != victim
    )
    return victim_completed, others, nodes[0].censored_count


__all__ = [
    "run_byzantine_case",
    "run_censorship_case",
    "run_warmup_bias_case",
    "byzantine_cases",
]
