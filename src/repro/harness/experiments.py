"""One entry point per paper artefact (see DESIGN.md §4).

Each function returns a list of row dicts — the same rows the paper's
figure plots — and is wrapped by a benchmark in ``benchmarks/``.  Set
``REPRO_FULL=1`` to sweep the paper's full node counts (n up to 100,
minutes of wall-clock); the default quick sweeps keep CI fast while
preserving every qualitative claim.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.harness.cluster import build_lyra_cluster
from repro.harness.config import ExperimentConfig
from repro.harness.pompe_cluster import build_pompe_cluster
from repro.metrics.capacity import CapacityInputs, lyra_capacity, pompe_capacity
from repro.sim.engine import MILLISECONDS, SECONDS

#: §VI-C node counts.
PAPER_NODE_COUNTS = [5, 10, 16, 31, 61, 100]
QUICK_NODE_COUNTS = [4, 7, 10]


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


def node_counts() -> List[int]:
    return PAPER_NODE_COUNTS if full_mode() else QUICK_NODE_COUNTS


def _latency_config(n: int, seed: int = 3) -> ExperimentConfig:
    """Light-load config for latency measurement: a few probing clients,
    small batches, heartbeat cadence scaled to keep event counts sane."""
    return ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=8,
        batch_timeout_us=30 * MILLISECONDS,
        clients_per_node=0,  # overridden below via probe_clients
        duration_us=7 * SECONDS,
        warmup_rounds=3,
        warmup_spacing_us=200 * MILLISECONDS,
        status_interval_us=(100 if n > 30 else 50) * MILLISECONDS,
        jitter=0.01,
    )


def fig2_commit_latency(
    ns: Optional[Sequence[int]] = None, *, seed: int = 3
) -> List[Dict]:
    """Fig. 2: average commit latency vs cluster size, Lyra vs Pompē.

    Expected shape: Lyra stays flat and sub-second; Pompē roughly 2x Lyra
    once n exceeds ~60 (more message rounds + leader relay).
    """
    rows: List[Dict] = []
    for n in ns or node_counts():
        lyra_cfg = _latency_config(n, seed)
        lyra_cfg.clients_per_node = 0
        lyra = build_lyra_cluster(lyra_cfg)
        _install_probe_clients(lyra, count=3, window=1)
        lyra_res = lyra.run()

        pompe_cfg = _latency_config(n, seed)
        pompe = build_pompe_cluster(pompe_cfg)
        _install_probe_clients(pompe, count=3, window=1)
        pompe_res = pompe.run()

        from repro.metrics.capacity import (
            lyra_loaded_latency_us,
            pompe_loaded_latency_us,
        )

        f = (n - 1) // 3
        lyra_loaded = lyra_loaded_latency_us(n, f, lyra_res.avg_latency_us)
        pompe_loaded = pompe_loaded_latency_us(n, f, pompe_res.avg_latency_us)
        rows.append(
            {
                "n": n,
                "lyra_latency_ms": round(lyra_res.avg_latency_ms, 1),
                "pompe_latency_ms": round(pompe_res.avg_latency_ms, 1),
                "ratio": round(
                    pompe_res.avg_latency_us / max(1.0, lyra_res.avg_latency_us), 2
                ),
                # At the benchmark operating point (queueing model on top of
                # the measured protocol latency — see EXPERIMENTS.md FIG2).
                "lyra_loaded_ms": round(lyra_loaded / 1000.0, 1),
                "pompe_loaded_ms": round(pompe_loaded / 1000.0, 1),
                "loaded_ratio": round(pompe_loaded / max(1.0, lyra_loaded), 2),
                "lyra_safety": lyra_res.safety_violation,
                "pompe_safety": pompe_res.safety_violation,
            }
        )
    return rows


def _install_probe_clients(cluster, *, count: int, window: int) -> None:
    """Attach a few closed-loop probe clients to an already-built cluster."""
    from repro.workload.clients import ClosedLoopClient

    cfg = cluster.config
    for home in range(min(count, cfg.n_nodes)):
        cpid = cluster.topology.place(cluster.topology.region_of(home))
        client = ClosedLoopClient(
            cpid,
            cluster.sim,
            home,
            window=window,
            start_at_us=cfg.client_start_us(),
        )
        cluster.clients.append(client)
        cluster.network.register(client, replica=False)


def fig3_throughput(
    ns: Optional[Sequence[int]] = None, *, inputs: Optional[CapacityInputs] = None
) -> List[Dict]:
    """Fig. 3: saturation throughput vs cluster size (capacity model).

    Expected shape: Pompē peaks below ~31 nodes then decays ~1/n
    (leader egress); Lyra rises with n to ~240k tx/s at n = 100 where its
    replica CPU saturates.  Crossover between 31 and 61 nodes.
    """
    inputs = inputs or CapacityInputs()
    rows: List[Dict] = []
    for n in ns or PAPER_NODE_COUNTS:
        f = (n - 1) // 3
        lyra_tps, lyra_bound = lyra_capacity(n, f, inputs)
        pompe_tps, pompe_bound = pompe_capacity(n, f, inputs)
        rows.append(
            {
                "n": n,
                "lyra_ktps": round(lyra_tps / 1000.0, 1),
                "lyra_bound": lyra_bound,
                "pompe_ktps": round(pompe_tps / 1000.0, 1),
                "pompe_bound": pompe_bound,
                "ratio": round(lyra_tps / pompe_tps, 2),
            }
        )
    return rows


def fig3_sim_validation(n: int = 4, *, seed: int = 5) -> Dict:
    """Message-level throughput at small n, to sanity-check the capacity
    model's direction (Lyra sustains offered load; absolute numbers are
    simulator-scale, see EXPERIMENTS.md)."""
    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=50,
        clients_per_node=2,
        client_window=60,
        duration_us=8 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )
    lyra = build_lyra_cluster(cfg).run()
    pompe = build_pompe_cluster(cfg).run()
    return {
        "n": n,
        "lyra_tps": round(lyra.throughput_tps, 1),
        "pompe_tps": round(pompe.throughput_tps, 1),
        "lyra_latency_ms": round(lyra.avg_latency_ms, 1),
        "pompe_latency_ms": round(pompe.avg_latency_ms, 1),
    }


def fig1_frontrunning(*, seed: int = 7) -> List[Dict]:
    """Fig. 1 scenario: the attack lands on Pompē, fails on Lyra."""
    from repro.attacks.frontrun import Fig1Scenario, run_fig1_lyra, run_fig1_pompe

    scenario = Fig1Scenario()
    victim_ts, attacker_ts = scenario.median_timestamps_ms()
    pompe = run_fig1_pompe(scenario, seed=seed)
    lyra = run_fig1_lyra(scenario, seed=seed)
    return [
        {
            "system": "arrival-analysis",
            "attack_succeeded": scenario.analytic_attack_wins(),
            "detail": f"victim median {victim_ts}ms vs attacker {attacker_ts}ms",
        },
        {
            "system": "pompe",
            "attack_succeeded": pompe.attack_succeeded,
            "detail": pompe.detail,
        },
        {
            "system": "lyra",
            "attack_succeeded": lyra.attack_succeeded,
            "attacker_rejected": lyra.attacker_rejected,
            "detail": lyra.detail,
        },
    ]


def goodcase_latency_rounds(n: int = 4, *, delay_ms: int = 40) -> Dict:
    """§IV claim: Lyra's BOC decides in 3 message delays in the good case
    (vs Pompē's 11 rounds).  Runs a single instance on a uniform-latency
    network with Δ equal to one delay and counts elapsed delays."""
    from repro.harness.rounds import measure_lyra_rounds, measure_pompe_rounds

    lyra_rounds = measure_lyra_rounds(n=n, delay_ms=delay_ms)
    pompe_rounds = measure_pompe_rounds(n=n, delay_ms=delay_ms)
    return {
        "delay_ms": delay_ms,
        "lyra_decide_rounds": lyra_rounds,
        "pompe_commit_rounds": pompe_rounds,
        "paper_lyra": 3,
        "paper_pompe": 11,
    }


def lambda_ablation(
    lambdas_ms: Sequence[int] = (1, 2, 5, 10, 50),
    *,
    n: int = 4,
    seed: int = 11,
) -> List[Dict]:
    """§VI-B claim: λ can be reduced to 5 ms without hurting performance.

    Sweeps λ and reports instance acceptance rate and latency: too-tight λ
    rejects honest proposals (predictions miss by jitter), large λ changes
    nothing for honest traffic."""
    rows: List[Dict] = []
    for lam in lambdas_ms:
        cfg = ExperimentConfig(
            n_nodes=n,
            seed=seed,
            lambda_us=lam * MILLISECONDS,
            batch_size=10,
            clients_per_node=1,
            client_window=5,
            duration_us=6 * SECONDS,
            warmup_rounds=3,
            warmup_spacing_us=150 * MILLISECONDS,
            jitter=0.015,
        )
        res = build_lyra_cluster(cfg).run()
        total = res.accepted_instances + res.rejected_instances
        rows.append(
            {
                "lambda_ms": lam,
                "accepted": res.accepted_instances,
                "rejected": res.rejected_instances,
                "acceptance_rate": round(
                    res.accepted_instances / total, 3
                )
                if total
                else None,
                "latency_ms": round(res.avg_latency_ms, 1),
                "committed": res.committed_count,
            }
        )
    return rows


def batch_ablation(
    batch_sizes: Sequence[int] = (1, 50, 100, 200, 400, 800, 1600, 3200),
    *,
    n: int = 100,
    inputs: Optional[CapacityInputs] = None,
) -> List[Dict]:
    """§VI-B claim: batch size 800 maximises throughput without hurting
    client QoS.  Capacity-model sweep: larger batches amortise per-instance
    crypto but stop helping once fixed costs vanish, while batch fill time
    (at fixed per-node load) grows linearly — the latency proxy."""
    inputs = inputs or CapacityInputs()
    f = (n - 1) // 3
    rows: List[Dict] = []
    for b in batch_sizes:
        from dataclasses import replace

        tuned = replace(inputs, batch_size=b)
        tps, bound = lyra_capacity(n, f, tuned)
        fill_ms = b / max(1.0, inputs.offered_per_node_tps) * 1000.0
        rows.append(
            {
                "batch": b,
                "lyra_ktps": round(tps / 1000.0, 1),
                "bound": bound,
                "batch_fill_ms": round(fill_ms, 1),
            }
        )
    return rows


def latency_breakdown(*, n: int = 4, seed: int = 29) -> List[Dict]:
    """Decompose Lyra's commit latency into the paper's phases, measured
    at the proposer from protocol traces:

    - ``proposed->decided`` — the BOC instance (3 message delays, §IV);
    - ``decided->committed`` — Commit-protocol lag (waiting for the
      stable/committed prefixes to cover the new sequence number, driven
      by piggybacks and STATUS heartbeats, §V-C);
    - ``committed->executed`` — the commit-reveal round (decryption-share
      quorum, Lemma 7).
    """
    from repro.metrics.tracelog import install_lyra_tracing

    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=10,
        clients_per_node=1,
        client_window=5,
        duration_us=6 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )
    cluster = build_lyra_cluster(cfg)
    log = install_lyra_tracing(cluster)
    cluster.run()

    sums: Dict[str, List[int]] = {}
    for node in cluster.nodes:
        for iid in list(node._proposed_at):
            if iid.proposer != node.pid:
                continue
            for phase, dur in log.phase_durations_us(iid, node.pid).items():
                sums.setdefault(phase, []).append(dur)
    rows: List[Dict] = []
    for phase in (
        "proposed->decided",
        "decided->committed",
        "committed->executed",
        "total",
    ):
        samples = sums.get(phase, [])
        if not samples:
            continue
        rows.append(
            {
                "phase": phase,
                "mean_ms": round(sum(samples) / len(samples) / 1000.0, 1),
                "max_ms": round(max(samples) / 1000.0, 1),
                "samples": len(samples),
            }
        )
    return rows


def delta_ablation(
    deltas_ms: Sequence[int] = (75, 150, 300),
    *,
    n: int = 4,
    seed: int = 37,
) -> List[Dict]:
    """Sensitivity to the synchrony bound Δ.

    Lyra's end-to-end latency is dominated by the acceptance window
    ``L = 3Δ``: a prefix only locks (and thus commits) once 2f+1 clocks
    pass ``seq + L``, so commit latency tracks ~3Δ + reveal + RTT.  A
    conservative Δ costs latency linearly; an aggressive Δ risks liveness
    during asynchrony (the partial-synchrony tests cover that side).
    """
    rows: List[Dict] = []
    for delta_ms in deltas_ms:
        cfg = ExperimentConfig(
            n_nodes=n,
            seed=seed,
            delta_us=delta_ms * MILLISECONDS,
            batch_size=10,
            clients_per_node=1,
            client_window=5,
            duration_us=8 * SECONDS,
            warmup_rounds=2,
            warmup_spacing_us=150 * MILLISECONDS,
        )
        res = build_lyra_cluster(cfg).run()
        rows.append(
            {
                "delta_ms": delta_ms,
                "L_ms": 3 * delta_ms,
                "latency_ms": round(res.avg_latency_ms, 1),
                "committed": res.committed_count,
                "safety": res.safety_violation,
            }
        )
    return rows


def obfuscation_ablation(*, n: int = 4, seed: int = 19) -> List[Dict]:
    """DESIGN ablation: §II-B's full VSS scheme vs the prototype's
    hash-based commitments (§VI-A).

    Trade-off: VSS lets any 2f+1 replicas reveal (no proposer trust, bigger
    ciphers and more reveal traffic); hash commitments are compact but the
    reveal key is held by the proposer (a crashed proposer delays reveals).
    """
    rows: List[Dict] = []
    for scheme in ("vss", "hash"):
        cfg = ExperimentConfig(
            n_nodes=n,
            seed=seed,
            obfuscation=scheme,
            check_dealing=(scheme == "vss"),
            batch_size=10,
            clients_per_node=1,
            client_window=5,
            duration_us=6 * SECONDS,
            warmup_rounds=2,
            warmup_spacing_us=150 * MILLISECONDS,
        )
        res = build_lyra_cluster(cfg).run()
        rows.append(
            {
                "scheme": scheme,
                "latency_ms": round(res.avg_latency_ms, 1),
                "committed": res.committed_count,
                "mbytes_on_wire": round(res.bytes_delivered / 1e6, 2),
                "reveal_quorum": "2f+1 replicas" if scheme == "vss" else "proposer only",
                "safety": res.safety_violation,
            }
        )
    return rows


def jitter_sensitivity(
    jitters: Sequence[float] = (0.0, 0.01, 0.03, 0.06, 0.12),
    *,
    n: int = 4,
    seed: int = 23,
) -> List[Dict]:
    """How much WAN jitter the λ = 5 ms prediction budget tolerates:
    acceptance stays near 1.0 while per-link jitter stays in the
    single-millisecond range [26], then degrades."""
    rows: List[Dict] = []
    for jitter in jitters:
        cfg = ExperimentConfig(
            n_nodes=n,
            seed=seed,
            jitter=jitter,
            batch_size=10,
            clients_per_node=1,
            client_window=5,
            duration_us=6 * SECONDS,
            warmup_rounds=3,
            warmup_spacing_us=150 * MILLISECONDS,
        )
        res = build_lyra_cluster(cfg).run()
        total = res.accepted_instances + res.rejected_instances
        rows.append(
            {
                "jitter": jitter,
                "acceptance_rate": round(res.accepted_instances / total, 3)
                if total
                else None,
                "committed": res.committed_count,
                "latency_ms": round(res.avg_latency_ms, 1),
            }
        )
    return rows


def byzantine_behaviours(*, seed: int = 13) -> List[Dict]:
    """§VI-D: one Byzantine replica per run, measuring that the cluster
    stays safe and live (and what the attack costs)."""
    from repro.harness.byzantine_runner import run_byzantine_case

    rows = []
    for case in (
        "baseline",
        "equivocator",
        "silent-proposer",
        "flooder",
        "future-sequence",
        "prefix-staller",
    ):
        rows.append(run_byzantine_case(case, seed=seed))
    return rows


def censorship_comparison(*, seed: int = 17) -> List[Dict]:
    """§V-E: a censoring HotStuff leader starves a victim's batches in
    Pompē; leaderless Lyra has no role capable of this."""
    from repro.harness.byzantine_runner import run_censorship_case

    return run_censorship_case(seed=seed)


def format_rows(rows: List[Dict]) -> str:
    """Render rows as an aligned text table (what the benches print)."""
    if not rows:
        return "(no rows)"
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    widths = {
        k: max(len(str(k)), max(len(str(r.get(k, ""))) for r in rows)) for k in keys
    }
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys)
        )
    return "\n".join(lines)


__all__ = [
    "PAPER_NODE_COUNTS",
    "QUICK_NODE_COUNTS",
    "node_counts",
    "full_mode",
    "fig1_frontrunning",
    "fig2_commit_latency",
    "fig3_throughput",
    "fig3_sim_validation",
    "goodcase_latency_rounds",
    "lambda_ablation",
    "obfuscation_ablation",
    "latency_breakdown",
    "delta_ablation",
    "jitter_sensitivity",
    "batch_ablation",
    "byzantine_behaviours",
    "censorship_comparison",
    "format_rows",
]
