"""One entry point per paper artefact (see DESIGN.md §4).

Each function returns a list of row dicts — the same rows the paper's
figure plots — and is wrapped by a benchmark in ``benchmarks/``.  Set
``REPRO_FULL=1`` to sweep the paper's full node counts (n up to 100,
minutes of wall-clock); the default quick sweeps keep CI fast while
preserving every qualitative claim.

Every cluster-running entry point routes through
:func:`repro.harness.sweep.run_sweep`, so ``REPRO_WORKERS=<k>`` fans the
grid across CPU cores and ``REPRO_CACHE=<dir>`` makes repeat invocations
(and interrupted runs) reuse already-computed cells.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.harness.config import ExperimentConfig
from repro.harness.cluster import ExperimentResult
from repro.harness.factory import build_cluster
from repro.harness.sweep import (
    SweepCell,
    run_sweep,
    sweep_cache_dir,
    sweep_workers,
)
from repro.metrics.capacity import CapacityInputs, lyra_capacity, pompe_capacity
from repro.sim.engine import MILLISECONDS, SECONDS
from repro.workload.spec import ClientGroup, WorkloadSpec

#: §VI-C node counts.
PAPER_NODE_COUNTS = [5, 10, 16, 31, 61, 100]
QUICK_NODE_COUNTS = [4, 7, 10]


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


def node_counts() -> List[int]:
    return PAPER_NODE_COUNTS if full_mode() else QUICK_NODE_COUNTS


def _sweep(cells: List[SweepCell]) -> List[ExperimentResult]:
    """Run cells through the sweep runner (workers/cache from the
    environment) and return their results in cell order, failing loudly on
    any failed cell — figure generators must not silently drop points."""
    report = run_sweep(
        cells, workers=sweep_workers(), cache_dir=sweep_cache_dir()
    )
    failed = report.failed_records()
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{len(failed)} sweep cell(s) failed; first: "
            f"{first.protocol} {first.config.get('n_nodes')} nodes — {first.error}"
        )
    return report.results()


def _latency_config(n: int, seed: int = 3) -> ExperimentConfig:
    """Light-load config for latency measurement: a few probing clients,
    small batches, heartbeat cadence scaled to keep event counts sane."""
    return ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=8,
        batch_timeout_us=30 * MILLISECONDS,
        clients_per_node=0,
        workload=WorkloadSpec(
            groups=(
                ClientGroup(
                    name="probes",
                    client="closed",
                    count=3,
                    one_per_node=True,
                    window=1,
                ),
            ),
            fairness=False,
        ),
        duration_us=7 * SECONDS,
        warmup_rounds=3,
        warmup_spacing_us=200 * MILLISECONDS,
        status_interval_us=(100 if n > 30 else 50) * MILLISECONDS,
        jitter=0.01,
    )


def fig2_commit_latency(
    ns: Optional[Sequence[int]] = None,
    *,
    seed: int = 3,
    protocols: Sequence[str] = ("lyra", "pompe"),
) -> List[Dict]:
    """Fig. 2: average commit latency vs cluster size, Lyra vs Pompē.

    Expected shape: Lyra stays flat and sub-second; Pompē roughly 2x Lyra
    once n exceeds ~60 (more message rounds + leader relay).  The
    (protocol, n) grid runs through the sweep runner.
    """
    from repro.metrics.capacity import (
        lyra_loaded_latency_us,
        pompe_loaded_latency_us,
    )

    ns = list(ns or node_counts())
    cells = [
        SweepCell(protocol, _latency_config(n, seed))
        for n in ns
        for protocol in protocols
    ]
    results = _sweep(cells)
    by_cell = {
        (cell.protocol, cell.config.n_nodes): res
        for cell, res in zip(cells, results)
    }

    loaded_model = {
        "lyra": lyra_loaded_latency_us,
        "pompe": pompe_loaded_latency_us,
    }
    rows: List[Dict] = []
    for n in ns:
        f = (n - 1) // 3
        row: Dict = {"n": n}
        loaded: Dict[str, float] = {}
        for protocol in protocols:
            res = by_cell[(protocol, n)]
            row[f"{protocol}_latency_ms"] = round(res.avg_latency_ms, 1)
            loaded[protocol] = loaded_model[protocol](n, f, res.avg_latency_us)
        if "lyra" in loaded and "pompe" in loaded:
            row["ratio"] = round(
                by_cell[("pompe", n)].avg_latency_us
                / max(1.0, by_cell[("lyra", n)].avg_latency_us),
                2,
            )
        # At the benchmark operating point (queueing model on top of the
        # measured protocol latency — see EXPERIMENTS.md FIG2).
        for protocol in protocols:
            row[f"{protocol}_loaded_ms"] = round(loaded[protocol] / 1000.0, 1)
        if "lyra" in loaded and "pompe" in loaded:
            row["loaded_ratio"] = round(
                loaded["pompe"] / max(1.0, loaded["lyra"]), 2
            )
        for protocol in protocols:
            row[f"{protocol}_safety"] = by_cell[(protocol, n)].safety_violation
        rows.append(row)
    return rows


def fig3_throughput(
    ns: Optional[Sequence[int]] = None, *, inputs: Optional[CapacityInputs] = None
) -> List[Dict]:
    """Fig. 3: saturation throughput vs cluster size (capacity model).

    Expected shape: Pompē peaks below ~31 nodes then decays ~1/n
    (leader egress); Lyra rises with n to ~240k tx/s at n = 100 where its
    replica CPU saturates.  Crossover between 31 and 61 nodes.
    """
    inputs = inputs or CapacityInputs()
    rows: List[Dict] = []
    for n in ns or PAPER_NODE_COUNTS:
        f = (n - 1) // 3
        lyra_tps, lyra_bound = lyra_capacity(n, f, inputs)
        pompe_tps, pompe_bound = pompe_capacity(n, f, inputs)
        rows.append(
            {
                "n": n,
                "lyra_ktps": round(lyra_tps / 1000.0, 1),
                "lyra_bound": lyra_bound,
                "pompe_ktps": round(pompe_tps / 1000.0, 1),
                "pompe_bound": pompe_bound,
                "ratio": round(lyra_tps / pompe_tps, 2),
            }
        )
    return rows


def fig3_sim_validation(n: int = 4, *, seed: int = 5) -> Dict:
    """Message-level throughput at small n, to sanity-check the capacity
    model's direction (Lyra sustains offered load; absolute numbers are
    simulator-scale, see EXPERIMENTS.md)."""
    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=50,
        clients_per_node=2,
        client_window=60,
        duration_us=8 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )
    lyra, pompe = _sweep([SweepCell("lyra", cfg), SweepCell("pompe", cfg)])
    return {
        "n": n,
        "lyra_tps": round(lyra.throughput_tps, 1),
        "pompe_tps": round(pompe.throughput_tps, 1),
        "lyra_latency_ms": round(lyra.avg_latency_ms, 1),
        "pompe_latency_ms": round(pompe.avg_latency_ms, 1),
    }


def fig1_frontrunning(*, seed: int = 7) -> List[Dict]:
    """Fig. 1 scenario: the attack lands on Pompē, fails on Lyra."""
    from repro.attacks.frontrun import Fig1Scenario, run_fig1_lyra, run_fig1_pompe

    scenario = Fig1Scenario()
    victim_ts, attacker_ts = scenario.median_timestamps_ms()
    pompe = run_fig1_pompe(scenario, seed=seed)
    lyra = run_fig1_lyra(scenario, seed=seed)
    return [
        {
            "system": "arrival-analysis",
            "attack_succeeded": scenario.analytic_attack_wins(),
            "detail": f"victim median {victim_ts}ms vs attacker {attacker_ts}ms",
        },
        {
            "system": "pompe",
            "attack_succeeded": pompe.attack_succeeded,
            "detail": pompe.detail,
        },
        {
            "system": "lyra",
            "attack_succeeded": lyra.attack_succeeded,
            "attacker_rejected": lyra.attacker_rejected,
            "detail": lyra.detail,
        },
    ]


def goodcase_latency_rounds(n: int = 4, *, delay_ms: int = 40) -> Dict:
    """§IV claim: Lyra's BOC decides in 3 message delays in the good case
    (vs Pompē's 11 rounds).  Runs a single instance on a uniform-latency
    network with Δ equal to one delay and counts elapsed delays."""
    from repro.harness.rounds import measure_lyra_rounds, measure_pompe_rounds

    lyra_rounds = measure_lyra_rounds(n=n, delay_ms=delay_ms)
    pompe_rounds = measure_pompe_rounds(n=n, delay_ms=delay_ms)
    return {
        "delay_ms": delay_ms,
        "lyra_decide_rounds": lyra_rounds,
        "pompe_commit_rounds": pompe_rounds,
        "paper_lyra": 3,
        "paper_pompe": 11,
    }


def lambda_ablation(
    lambdas_ms: Sequence[int] = (1, 2, 5, 10, 50),
    *,
    n: int = 4,
    seed: int = 11,
) -> List[Dict]:
    """§VI-B claim: λ can be reduced to 5 ms without hurting performance.

    Sweeps λ and reports instance acceptance rate and latency: too-tight λ
    rejects honest proposals (predictions miss by jitter), large λ changes
    nothing for honest traffic."""
    cells = [
        SweepCell(
            "lyra",
            ExperimentConfig(
                n_nodes=n,
                seed=seed,
                lambda_us=lam * MILLISECONDS,
                batch_size=10,
                clients_per_node=1,
                client_window=5,
                duration_us=6 * SECONDS,
                warmup_rounds=3,
                warmup_spacing_us=150 * MILLISECONDS,
                jitter=0.015,
            ),
        )
        for lam in lambdas_ms
    ]
    rows: List[Dict] = []
    for lam, res in zip(lambdas_ms, _sweep(cells)):
        total = res.accepted_instances + res.rejected_instances
        rows.append(
            {
                "lambda_ms": lam,
                "accepted": res.accepted_instances,
                "rejected": res.rejected_instances,
                "acceptance_rate": round(
                    res.accepted_instances / total, 3
                )
                if total
                else None,
                "latency_ms": round(res.avg_latency_ms, 1),
                "committed": res.committed_count,
            }
        )
    return rows


def batch_ablation(
    batch_sizes: Sequence[int] = (1, 50, 100, 200, 400, 800, 1600, 3200),
    *,
    n: int = 100,
    inputs: Optional[CapacityInputs] = None,
) -> List[Dict]:
    """§VI-B claim: batch size 800 maximises throughput without hurting
    client QoS.  Capacity-model sweep: larger batches amortise per-instance
    crypto but stop helping once fixed costs vanish, while batch fill time
    (at fixed per-node load) grows linearly — the latency proxy."""
    inputs = inputs or CapacityInputs()
    f = (n - 1) // 3
    rows: List[Dict] = []
    for b in batch_sizes:
        from dataclasses import replace

        tuned = replace(inputs, batch_size=b)
        tps, bound = lyra_capacity(n, f, tuned)
        fill_ms = b / max(1.0, inputs.offered_per_node_tps) * 1000.0
        rows.append(
            {
                "batch": b,
                "lyra_ktps": round(tps / 1000.0, 1),
                "bound": bound,
                "batch_fill_ms": round(fill_ms, 1),
            }
        )
    return rows


def latency_breakdown(*, n: int = 4, seed: int = 29) -> List[Dict]:
    """Decompose Lyra's commit latency into the paper's phases, measured
    at the proposer from protocol traces:

    - ``proposed->decided`` — the BOC instance (3 message delays, §IV);
    - ``decided->committed`` — Commit-protocol lag (waiting for the
      stable/committed prefixes to cover the new sequence number, driven
      by piggybacks and STATUS heartbeats, §V-C);
    - ``committed->executed`` — the commit-reveal round (decryption-share
      quorum, Lemma 7).
    """
    from repro.metrics.tracelog import install_lyra_tracing

    cfg = ExperimentConfig(
        n_nodes=n,
        seed=seed,
        batch_size=10,
        clients_per_node=1,
        client_window=5,
        duration_us=6 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
    )
    # Needs the live cluster object for trace installation, so this one
    # runs in-process rather than through the sweep runner.
    cluster = build_cluster(cfg, protocol="lyra")
    log = install_lyra_tracing(cluster)
    cluster.run()

    sums: Dict[str, List[int]] = {}
    for node in cluster.nodes:
        for iid in list(node._proposed_at):
            if iid.proposer != node.pid:
                continue
            for phase, dur in log.phase_durations_us(iid, node.pid).items():
                sums.setdefault(phase, []).append(dur)
    rows: List[Dict] = []
    for phase in (
        "proposed->decided",
        "decided->committed",
        "committed->executed",
        "total",
    ):
        samples = sums.get(phase, [])
        if not samples:
            continue
        rows.append(
            {
                "phase": phase,
                "mean_ms": round(sum(samples) / len(samples) / 1000.0, 1),
                "max_ms": round(max(samples) / 1000.0, 1),
                "samples": len(samples),
            }
        )
    return rows


def delta_ablation(
    deltas_ms: Sequence[int] = (75, 150, 300),
    *,
    n: int = 4,
    seed: int = 37,
) -> List[Dict]:
    """Sensitivity to the synchrony bound Δ.

    Lyra's end-to-end latency is dominated by the acceptance window
    ``L = 3Δ``: a prefix only locks (and thus commits) once 2f+1 clocks
    pass ``seq + L``, so commit latency tracks ~3Δ + reveal + RTT.  A
    conservative Δ costs latency linearly; an aggressive Δ risks liveness
    during asynchrony (the partial-synchrony tests cover that side).
    """
    cells = [
        SweepCell(
            "lyra",
            ExperimentConfig(
                n_nodes=n,
                seed=seed,
                delta_us=delta_ms * MILLISECONDS,
                batch_size=10,
                clients_per_node=1,
                client_window=5,
                duration_us=8 * SECONDS,
                warmup_rounds=2,
                warmup_spacing_us=150 * MILLISECONDS,
            ),
        )
        for delta_ms in deltas_ms
    ]
    rows: List[Dict] = []
    for delta_ms, res in zip(deltas_ms, _sweep(cells)):
        rows.append(
            {
                "delta_ms": delta_ms,
                "L_ms": 3 * delta_ms,
                "latency_ms": round(res.avg_latency_ms, 1),
                "committed": res.committed_count,
                "safety": res.safety_violation,
            }
        )
    return rows


def obfuscation_ablation(*, n: int = 4, seed: int = 19) -> List[Dict]:
    """DESIGN ablation: §II-B's full VSS scheme vs the prototype's
    hash-based commitments (§VI-A).

    Trade-off: VSS lets any 2f+1 replicas reveal (no proposer trust, bigger
    ciphers and more reveal traffic); hash commitments are compact but the
    reveal key is held by the proposer (a crashed proposer delays reveals).
    """
    schemes = ("vss", "hash")
    cells = [
        SweepCell(
            "lyra",
            ExperimentConfig(
                n_nodes=n,
                seed=seed,
                obfuscation=scheme,
                check_dealing=(scheme == "vss"),
                batch_size=10,
                clients_per_node=1,
                client_window=5,
                duration_us=6 * SECONDS,
                warmup_rounds=2,
                warmup_spacing_us=150 * MILLISECONDS,
            ),
        )
        for scheme in schemes
    ]
    rows: List[Dict] = []
    for scheme, res in zip(schemes, _sweep(cells)):
        rows.append(
            {
                "scheme": scheme,
                "latency_ms": round(res.avg_latency_ms, 1),
                "committed": res.committed_count,
                "mbytes_on_wire": round(res.bytes_delivered / 1e6, 2),
                "reveal_quorum": "2f+1 replicas" if scheme == "vss" else "proposer only",
                "safety": res.safety_violation,
            }
        )
    return rows


def jitter_sensitivity(
    jitters: Sequence[float] = (0.0, 0.01, 0.03, 0.06, 0.12),
    *,
    n: int = 4,
    seed: int = 23,
) -> List[Dict]:
    """How much WAN jitter the λ = 5 ms prediction budget tolerates:
    acceptance stays near 1.0 while per-link jitter stays in the
    single-millisecond range [26], then degrades."""
    cells = [
        SweepCell(
            "lyra",
            ExperimentConfig(
                n_nodes=n,
                seed=seed,
                jitter=jitter,
                batch_size=10,
                clients_per_node=1,
                client_window=5,
                duration_us=6 * SECONDS,
                warmup_rounds=3,
                warmup_spacing_us=150 * MILLISECONDS,
            ),
        )
        for jitter in jitters
    ]
    rows: List[Dict] = []
    for jitter, res in zip(jitters, _sweep(cells)):
        total = res.accepted_instances + res.rejected_instances
        rows.append(
            {
                "jitter": jitter,
                "acceptance_rate": round(res.accepted_instances / total, 3)
                if total
                else None,
                "committed": res.committed_count,
                "latency_ms": round(res.avg_latency_ms, 1),
            }
        )
    return rows


def ablation_distance_error(
    round_budgets: Sequence[int] = (1, 2, 4, 6),
    *,
    n: int = 16,
    seed: int = 23,
) -> List[Dict]:
    """Distance-estimator accuracy vs its downstream protocol cost.

    Sweeps the gossip warm-up round budget (the convergence/accuracy
    knob of ``distance_mode="gossip"``) against the all-to-all probe
    baseline.  Each row maps estimator error magnitude — per-pair
    absolute error vs the latency model's jitter-free ground truth
    (:func:`repro.core.clocks.true_distance_us`) — to the λ-validation
    failure rate it induces (Equation-1 rejections are exactly how
    estimator error surfaces in the protocol: the broadcaster's
    prediction for a validator's clock misses by more than λ).

    Needs the live cluster object (estimator internals, per-node commit
    counters), so cells run in-process rather than through the sweep
    runner — same pattern as :func:`latency_breakdown`.
    """

    def _cfg(mode: str, rounds: int) -> ExperimentConfig:
        return ExperimentConfig(
            n_nodes=n,
            seed=seed,
            batch_size=10,
            clients_per_node=1,
            client_window=5,
            duration_us=4 * SECONDS,
            warmup_rounds=2,
            warmup_spacing_us=150 * MILLISECONDS,
            distance_mode=mode,
            gossip_rounds=rounds,
        )

    cells = [("probe", 0, _cfg("probe", 1))]
    cells.extend(("gossip", r, _cfg("gossip", r)) for r in round_budgets)
    rows: List[Dict] = []
    for mode, rounds, cfg in cells:
        cluster = build_cluster(cfg, protocol="lyra")
        result = cluster.run()
        err = cluster.distance_error_stats()
        commits = [node.commit for node in cluster.nodes if node.commit]
        rejects = sum(c.lambda_rejects for c in commits)
        validations = sum(c.validations for c in commits)
        row: Dict = {
            "mode": mode,
            "rounds": rounds if mode == "gossip" else "-",
            "pairs_estimated": int(err.get("pairs_estimated", 0)),
            "pairs_total": int(err.get("pairs_total", 0)),
            "err_mean_us": round(err.get("abs_error_us_mean", 0.0), 1),
            "err_p99_us": round(err.get("abs_error_us_p99", 0.0), 1),
            "lambda_rejects": rejects,
            "validations": validations,
            "lambda_failure_rate": (
                round(rejects / validations, 4) if validations else None
            ),
            "committed": result.committed_count,
        }
        gossip = cluster.gossip_distance_stats()
        if gossip:
            row["converged_nodes"] = gossip["converged_nodes"]
            row["max_converged_round"] = gossip["max_converged_round"]
            row["max_requests_per_round"] = gossip["max_requests_per_round"]
        rows.append(row)
    return rows


def byzantine_behaviours(*, seed: int = 13) -> List[Dict]:
    """§VI-D: one Byzantine replica per run, measuring that the cluster
    stays safe and live (and what the attack costs)."""
    from repro.harness.byzantine_runner import run_byzantine_case

    rows = []
    for case in (
        "baseline",
        "equivocator",
        "silent-proposer",
        "flooder",
        "future-sequence",
        "prefix-staller",
    ):
        rows.append(run_byzantine_case(case, seed=seed))
    return rows


def censorship_comparison(*, seed: int = 17) -> List[Dict]:
    """§V-E: a censoring HotStuff leader starves a victim's batches in
    Pompē; leaderless Lyra has no role capable of this."""
    from repro.harness.byzantine_runner import run_censorship_case

    return run_censorship_case(seed=seed)


def format_rows(rows: List[Dict]) -> str:
    """Render rows as an aligned text table (what the benches print)."""
    if not rows:
        return "(no rows)"
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    widths = {
        k: max(len(str(k)), max(len(str(r.get(k, ""))) for r in rows)) for k in keys
    }
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys)
        )
    return "\n".join(lines)


__all__ = [
    "PAPER_NODE_COUNTS",
    "QUICK_NODE_COUNTS",
    "node_counts",
    "full_mode",
    "fig1_frontrunning",
    "fig2_commit_latency",
    "fig3_throughput",
    "fig3_sim_validation",
    "goodcase_latency_rounds",
    "lambda_ablation",
    "ablation_distance_error",
    "obfuscation_ablation",
    "latency_breakdown",
    "delta_ablation",
    "jitter_sensitivity",
    "batch_ablation",
    "byzantine_behaviours",
    "censorship_comparison",
    "format_rows",
]
