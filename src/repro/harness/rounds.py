"""Good-case message-delay counting (§III / §IV-C3).

Runs a single instance of each protocol on a uniform-latency network where
every hop costs exactly one delay ``D`` (and Δ = D), then divides elapsed
virtual time by ``D``.  Lyra's BOC should decide within ~3 delays
(Theorem 3); Pompē needs ~11 (ordering + relay + three HotStuff phases +
decide, [31]).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.pompe import PompeConfig, PompeNode
from repro.core.commit import CommitConfig
from repro.core.node import LyraConfig, LyraNode
from repro.core.obfuscation import make_obfuscation
from repro.core.types import Transaction
from repro.crypto.cost import FREE_COSTS
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.rng import RngRegistry


def _build_lyra(n: int, delay_us: int, seed: int = 1):
    sim = Simulator()
    rng = RngRegistry(seed)
    f = (n - 1) // 3
    registry = KeyRegistry(seed)
    threshold = ThresholdScheme(2 * f + 1, n, seed=seed)
    obf = make_obfuscation("vss", 2 * f + 1, n, seed=seed)
    network = Network(
        sim,
        UniformLatencyModel(delay_us),
        config=NetworkConfig(delta_us=delay_us, bandwidth_enabled=False),
    )
    nodes: List[LyraNode] = []
    for pid in range(n):
        cfg = LyraConfig(
            batch_size=1,
            commit=CommitConfig(lambda_us=5 * MILLISECONDS),
            warmup_rounds=2,
            warmup_spacing_us=4 * delay_us,
            costs=FREE_COSTS,
            status_interval_us=2 * delay_us,
        )
        node = LyraNode(
            pid,
            sim,
            n=n,
            f=f,
            registry=registry,
            threshold=threshold,
            obfuscation=obf,
            config=cfg,
            rng=rng,
        )
        nodes.append(node)
        network.register(node)
    return sim, nodes


def measure_lyra_rounds(n: int = 4, delay_ms: int = 40, seed: int = 1) -> float:
    """Delays from ordered-propose to the proposer's BOC decision."""
    delay_us = delay_ms * MILLISECONDS
    sim, nodes = _build_lyra(n, delay_us, seed)
    for node in nodes:
        node.start()
    # Let distance warm-up converge first.
    sim.run(until=12 * delay_us)

    proposer = nodes[0]
    decide_at: List[int] = []
    original = proposer._on_decide

    def traced(iid, v, m):
        decide_at.append(sim.now)
        original(iid, v, m)

    proposer._on_decide = traced
    start = sim.now
    proposer._propose_batch([Transaction(999, 0)])
    sim.run(until=start + 20 * delay_us)
    if not decide_at:
        return float("inf")
    return (decide_at[0] - start) / delay_us


def measure_pompe_rounds(n: int = 4, delay_ms: int = 40, seed: int = 1) -> float:
    """Delays from the ordering broadcast to execution at the proposer."""
    delay_us = delay_ms * MILLISECONDS
    sim = Simulator()
    rng = RngRegistry(seed)
    f = (n - 1) // 3
    registry = KeyRegistry(seed)
    threshold = ThresholdScheme(2 * f + 1, n, seed=seed)
    network = Network(
        sim,
        UniformLatencyModel(delay_us),
        config=NetworkConfig(delta_us=delay_us, bandwidth_enabled=False),
    )
    nodes: List[PompeNode] = []
    for pid in range(n):
        cfg = PompeConfig(batch_size=1, costs=FREE_COSTS)
        node = PompeNode(
            pid,
            sim,
            n=n,
            f=f,
            registry=registry,
            threshold=threshold,
            config=cfg,
            rng=rng,
        )
        nodes.append(node)
        network.register(node)
    for node in nodes:
        node.start()
    sim.run(until=4 * delay_us)

    # Propose from a non-leader so the certificate relay hop is included
    # (the leader of view 0 is pid 0).
    proposer = nodes[1]
    done_at: List[int] = []
    proposer.on_executed = lambda cert: done_at.append(sim.now)
    start = sim.now
    proposer.submit(Transaction(999, 0))
    sim.run(until=start + 40 * delay_us)
    if not done_at:
        return float("inf")
    return (done_at[0] - start) / delay_us


__all__ = ["measure_lyra_rounds", "measure_pompe_rounds"]
