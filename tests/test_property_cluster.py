"""Property-based end-to-end tests: SMR safety and lower-boundedness must
hold for *every* seed (random jitter, clock skews, client interleavings),
not just the ones the unit tests happen to pick."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.smr import check_lower_bounded, check_output_sorted
from repro.harness import ExperimentConfig, build_lyra_cluster
from repro.sim.engine import MILLISECONDS, SECONDS


def run_cluster(seed: int, n_nodes: int = 4, gst_ms: int = 0):
    cfg = ExperimentConfig(
        n_nodes=n_nodes,
        seed=seed,
        batch_size=8,
        clients_per_node=1,
        client_window=4,
        duration_us=4 * SECONDS,
        warmup_rounds=2,
        warmup_spacing_us=150 * MILLISECONDS,
        gst_us=gst_ms * MILLISECONDS,
        jitter=0.03,
    )
    cluster = build_lyra_cluster(cfg)
    result = cluster.run()
    return cluster, result


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_safety_holds_for_any_seed(seed):
    cluster, result = run_cluster(seed)
    assert result.safety_violation is None, f"seed={seed}: {result.safety_violation}"
    for node in cluster.nodes:
        assert check_output_sorted(node.output_sequence()) is None


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_lower_boundedness_holds_for_any_seed(seed):
    """Definition 6 as a universal property: no committed sequence number
    undercuts any correct replica's perception by more than lambda."""
    cluster, result = run_cluster(seed)
    decided = {}
    for node in cluster.nodes:
        for entry in node.commit.output_log:
            decided[entry.cipher_id] = entry.seq
    perceived = {
        node.pid: dict(node.perceived._perceived) for node in cluster.nodes
    }
    violations = check_lower_bounded(
        decided, perceived, cluster.config.lambda_us
    )
    assert violations == [], f"seed={seed}: {violations}"


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_liveness_holds_for_any_seed(seed):
    _, result = run_cluster(seed)
    assert result.committed_count > 0, f"seed={seed}: nothing committed"


@pytest.mark.slow
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_safety_under_pre_gst_asynchrony(seed):
    """The adversary delays messages arbitrarily for the first second:
    safety must never break (liveness resumes after GST — checked in the
    integration suite with a longer horizon)."""
    cluster, result = run_cluster(seed, gst_ms=1000)
    assert result.safety_violation is None, f"seed={seed}"
