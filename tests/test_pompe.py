"""Tests for the Pompē baseline: ordering phase, median assignment,
timestamp-ordered execution, end-to-end runs, and ordering linearizability."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.pompe_cluster import build_pompe_cluster
from repro.sim.engine import MILLISECONDS, SECONDS

from tests.helpers import quick_lyra_config


@pytest.fixture(scope="module")
def pompe_run():
    cfg = quick_lyra_config(duration_us=5 * SECONDS)
    cluster = build_pompe_cluster(cfg)
    result = cluster.run()
    return cluster, result


class TestEndToEnd:
    def test_transactions_execute(self, pompe_run):
        _, result = pompe_run
        assert result.committed_count > 0
        assert result.executed_total > 0

    def test_prefix_consistency(self, pompe_run):
        _, result = pompe_run
        assert result.safety_violation is None

    def test_execution_in_timestamp_order(self, pompe_run):
        cluster, _ = pompe_run
        for node in cluster.nodes:
            log = node.executed_log
            assert log == sorted(log), f"pid {node.pid} executed out of ts order"

    def test_latency_higher_than_lyra(self, pompe_run):
        """Fig. 2's direction: Pompē needs more message rounds."""
        from repro.harness.cluster import build_lyra_cluster

        _, pompe_result = pompe_run
        lyra_result = build_lyra_cluster(
            quick_lyra_config(duration_us=5 * SECONDS)
        ).run()
        # ~10 delays vs ~3 delays + commit lag: Pompē should not be faster
        # by any meaningful margin on the same topology.
        assert pompe_result.avg_latency_us > 0.75 * lyra_result.avg_latency_us

    def test_determinism(self):
        cfg = quick_lyra_config(duration_us=3 * SECONDS)
        r1 = build_pompe_cluster(cfg).run()
        r2 = build_pompe_cluster(cfg).run()
        assert r1.committed_count == r2.committed_count
        assert r1.events_processed == r2.events_processed


class TestOrderingPhase:
    def _cluster(self):
        cfg = quick_lyra_config(clients_per_node=0, duration_us=3 * SECONDS)
        return build_pompe_cluster(cfg)

    def test_median_within_correct_clock_range(self):
        """Ordering linearizability: the assigned median of 2f+1 signed
        timestamps lies within the range of the signers' clocks."""
        cluster = self._cluster()
        certs = []
        for node in cluster.nodes:
            node.on_executed = lambda cert, certs=certs: certs.append(cert)
        from repro.core.types import Transaction

        cluster.sim.schedule(
            500 * MILLISECONDS,
            lambda: cluster.nodes[1].submit(Transaction(77, 0)),
        )
        for node in cluster.nodes:
            node.start()
        cluster.sim.run(until=4 * SECONDS)
        assert certs
        cert = certs[0]
        times = [t for _, t, _ in cert.endorsements]
        assert min(times) <= cert.assigned_ts <= max(times)
        assert cert.assigned_ts == sorted(times)[len(times) // 2]

    def test_cert_carries_quorum_of_valid_signatures(self):
        cluster = self._cluster()
        got = []
        cluster.nodes[0].on_executed = got.append
        from repro.core.types import Transaction

        cluster.sim.schedule(
            500 * MILLISECONDS,
            lambda: cluster.nodes[0].submit(Transaction(88, 0)),
        )
        for node in cluster.nodes:
            node.start()
        cluster.sim.run(until=4 * SECONDS)
        assert got
        cert = got[0]
        f = (len(cluster.nodes) - 1) // 3
        assert len(cert.endorsements) == 2 * f + 1
        for pid, ts, sig in cert.endorsements:
            assert cluster.registry.verify((cert.batch_digest, ts), sig, pid)

    def test_observe_hook_sees_cleartext(self):
        """The attack surface: batches are readable during ordering."""
        cluster = self._cluster()
        observed = []
        cluster.nodes[2].observe_batch = lambda batch, sender: observed.append(
            (batch, sender)
        )
        from repro.core.types import Transaction

        tx = Transaction(99, 0, b"SECRET-INTENT")
        cluster.sim.schedule(
            500 * MILLISECONDS, lambda: cluster.nodes[0].submit(tx)
        )
        for node in cluster.nodes:
            node.start()
        cluster.sim.run(until=2 * SECONDS)
        assert observed
        batch, sender = observed[0]
        assert sender == 0
        assert any(t.body.startswith(b"SECRET-INTENT") for t in batch.txs)
