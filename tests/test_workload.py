"""Tests for workload components: generators, clients, KV execution."""

import pytest

from repro.core.node import CLIENT_REPLY_KIND, CLIENT_TX_KIND
from repro.core.types import Batch, Transaction
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.sim.engine import Simulator
from repro.sim.process import SimProcess
from repro.workload.clients import ClosedLoopClient, OpenLoopClient
from repro.workload.generator import TxGenerator, decode_kv_write
from repro.workload.kvstore import KvStore


class EchoReplica(SimProcess):
    """Replies to every client.tx after a fixed service delay."""

    def __init__(self, pid, sim, service_us=1000):
        super().__init__(pid, sim)
        self.service_us = service_us
        self.received = []

    def on_message(self, message, sender):
        if message.kind != CLIENT_TX_KIND:
            return
        tx = message.payload["tx"]
        self.received.append(tx)
        self.sim.schedule(
            self.service_us,
            lambda: self.send(
                sender,
                Message(CLIENT_REPLY_KIND, {"key": tx.key(), "seq": 1}, 24),
            ),
        )


def build_echo_world():
    sim = Simulator()
    net = Network(
        sim,
        UniformLatencyModel(500),
        config=NetworkConfig(bandwidth_enabled=False),
    )
    replica = EchoReplica(0, sim)
    net.register(replica)
    return sim, net, replica


class TestGenerator:
    def test_unique_nonces(self):
        gen = TxGenerator(5)
        keys = {gen.next().key() for _ in range(100)}
        assert len(keys) == 100
        assert gen.issued == 100

    def test_kv_write_roundtrip(self):
        gen = TxGenerator(1)
        tx = gen.kv_write(17, 99)
        assert decode_kv_write(tx) == (17, 99)

    def test_non_kv_body_decodes_none(self):
        assert decode_kv_write(Transaction(1, 2, b"short")) is None

    def test_body_truncated_to_16(self):
        tx = TxGenerator(1).next(body=b"x" * 50)
        assert len(tx.body) == 16


class TestClosedLoopClient:
    def test_maintains_window(self):
        sim, net, replica = build_echo_world()
        client = ClosedLoopClient(10, sim, 0, window=4)
        net.register(client, replica=False)
        sim.run(until=20_000)
        # Steady state: in-flight == window.
        assert client.stats.submitted - client.stats.completed == 4
        assert client.stats.completed > 0

    def test_latency_measured(self):
        sim, net, replica = build_echo_world()
        client = ClosedLoopClient(10, sim, 0, window=1)
        net.register(client, replica=False)
        sim.run(until=10_000)
        # Round trip = 2 x 500us latency + 1000us service.
        assert all(lat == 2000 for lat in client.stats.latencies_us)

    def test_stop_at(self):
        sim, net, replica = build_echo_world()
        client = ClosedLoopClient(10, sim, 0, window=1, stop_at_us=5_000)
        net.register(client, replica=False)
        sim.run(until=50_000)
        final = client.stats.submitted
        assert final < 10  # stopped early

    def test_custom_body(self):
        sim, net, replica = build_echo_world()
        client = ClosedLoopClient(10, sim, 0, window=1, body=b"MARK")
        net.register(client, replica=False)
        sim.run(until=5_000)
        assert replica.received[0].body.startswith(b"MARK")


class TestOpenLoopClient:
    def test_fixed_rate(self):
        sim, net, replica = build_echo_world()
        client = OpenLoopClient(10, sim, 0, interval_us=1000, count=7)
        net.register(client, replica=False)
        sim.run(until=100_000)
        assert client.stats.submitted == 7

    def test_unbounded_until_horizon(self):
        sim, net, replica = build_echo_world()
        client = OpenLoopClient(10, sim, 0, interval_us=1000)
        net.register(client, replica=False)
        sim.run(until=10_500)
        assert client.stats.submitted == 11


class TestKvStore:
    def test_apply_kv_writes(self):
        store = KvStore()
        gen = TxGenerator(0)
        store.apply(gen.kv_write(1, 10))
        store.apply(gen.kv_write(1, 20))
        assert store.get(1) == 20
        assert store.applied_txs == 2

    def test_apply_batch(self):
        store = KvStore()
        gen = TxGenerator(0)
        batch = Batch(0, 0, (gen.kv_write(1, 1), gen.kv_write(2, 2)))
        store.apply_batch(batch)
        assert store.applied_batches == 1
        assert len(store) == 2

    def test_opaque_txs_recorded(self):
        store = KvStore()
        store.apply(Transaction(1, 5, b"opaque"))
        assert len(store) == 1

    def test_snapshot_is_copy(self):
        store = KvStore()
        gen = TxGenerator(0)
        store.apply(gen.kv_write(1, 1))
        snap = store.snapshot()
        snap[1] = 999
        assert store.get(1) == 1
