"""Pytest configuration: registers the ``slow`` marker used by the heavier
end-to-end attack/Byzantine scenarios (still run by default — deselect with
``-m "not slow"`` for a fast loop)."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: multi-second simulated scenario (deselect with -m 'not slow')"
    )
