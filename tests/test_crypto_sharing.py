"""Unit and property tests for Shamir sharing, Feldman VSS, and the VSS
transaction-encryption scheme (§II-B interfaces)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.feldman import FeldmanVSS, find_group
from repro.crypto.field import DEFAULT_FIELD
from repro.crypto.shamir import ShamirShare, reconstruct_secret, split_secret
from repro.crypto.vss_encryption import DecryptionShare, VssError, VssScheme
from repro.sim.rng import RngRegistry

F = DEFAULT_FIELD
RNG = RngRegistry(101)


class TestShamir:
    def test_roundtrip(self):
        shares = split_secret(123, 3, 7, RNG.get("s1"))
        assert reconstruct_secret(shares[:3], 3) == 123

    def test_any_subset_reconstructs(self):
        shares = split_secret(99999, 3, 7, RNG.get("s2"))
        import itertools

        for combo in itertools.combinations(shares, 3):
            assert reconstruct_secret(list(combo), 3) == 99999

    def test_extra_shares_ignored(self):
        shares = split_secret(5, 2, 5, RNG.get("s3"))
        assert reconstruct_secret(shares, 2) == 5

    def test_insufficient_shares_rejected(self):
        shares = split_secret(5, 3, 5, RNG.get("s4"))
        with pytest.raises(ValueError):
            reconstruct_secret(shares[:2], 3)

    def test_duplicate_indices_counted_once(self):
        shares = split_secret(5, 3, 5, RNG.get("s5"))
        with pytest.raises(ValueError):
            reconstruct_secret([shares[0], shares[0], shares[1]], 3)

    def test_wrong_quorum_reconstructs_garbage(self):
        # 2 shares of a threshold-3 sharing interpolate a line — almost
        # surely not the secret (information-theoretic hiding).
        shares = split_secret(42, 3, 5, RNG.get("s6"))
        from repro.crypto.polynomial import lagrange_interpolate_at

        wrong = lagrange_interpolate_at(
            [(shares[0].index, shares[0].value), (shares[1].index, shares[1].value)],
            0,
        )
        assert wrong != 42

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            split_secret(1, 0, 5, RNG.get("s7"))
        with pytest.raises(ValueError):
            split_secret(1, 6, 5, RNG.get("s8"))

    @settings(max_examples=20)
    @given(
        st.integers(min_value=0, max_value=F.p - 1),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=5),
    )
    def test_property_roundtrip(self, secret, k, extra):
        n = k + extra
        rng = RngRegistry(k * 31 + extra).get("prop")
        shares = split_secret(secret, k, n, rng)
        assert reconstruct_secret(shares[-k:], k) == secret


class TestFeldman:
    def setup_method(self):
        self.vss = FeldmanVSS()

    def test_group_parameters(self):
        q, g = self.vss.q, self.vss.g
        assert (q - 1) % F.p == 0
        assert pow(g, F.p, q) == 1  # g has order p
        assert g != 1

    def test_valid_shares_verify(self):
        shares, com = self.vss.deal(31337, 3, 6, RNG.get("f1"))
        assert all(self.vss.verify_share(s, com) for s in shares)

    def test_tampered_value_rejected(self):
        shares, com = self.vss.deal(31337, 3, 6, RNG.get("f2"))
        bad = ShamirShare(shares[0].index, F.add(shares[0].value, 1))
        assert not self.vss.verify_share(bad, com)

    def test_wrong_index_rejected(self):
        shares, com = self.vss.deal(31337, 3, 6, RNG.get("f3"))
        swapped = ShamirShare(shares[1].index, shares[0].value)
        assert not self.vss.verify_share(swapped, com)

    def test_commitment_binds_secret(self):
        shares, com = self.vss.deal(777, 2, 4, RNG.get("f4"))
        assert self.vss.commitment_to_secret(com) == pow(
            self.vss.g, 777, self.vss.q
        )

    def test_shares_reconstruct_committed_secret(self):
        shares, com = self.vss.deal(777, 2, 4, RNG.get("f5"))
        assert reconstruct_secret(shares[:2], 2) == 777

    def test_find_group_small_prime(self):
        q, g = find_group(11)
        assert (q - 1) % 11 == 0
        assert pow(g, 11, q) == 1 and g != 1


class TestVssEncryption:
    def setup_method(self):
        self.scheme = VssScheme(3, 4, seed=55)

    def test_roundtrip(self):
        c = self.scheme.encrypt(b"secret payload bytes", RNG.get("v1"))
        shares = [self.scheme.partial_decrypt(c, i) for i in range(3)]
        assert self.scheme.decrypt(c, shares) == b"secret payload bytes"

    def test_any_quorum_decrypts(self):
        c = self.scheme.encrypt(b"q", RNG.get("v2"))
        shares = [self.scheme.partial_decrypt(c, i) for i in (0, 2, 3)]
        assert self.scheme.decrypt(c, shares) == b"q"

    def test_below_threshold_fails(self):
        c = self.scheme.encrypt(b"x", RNG.get("v3"))
        shares = [self.scheme.partial_decrypt(c, i) for i in range(2)]
        with pytest.raises(VssError):
            self.scheme.decrypt(c, shares)

    def test_dealing_checks_pass_for_honest_dealer(self):
        c = self.scheme.encrypt(b"ok", RNG.get("v4"))
        assert all(self.scheme.check_dealing(c, pid) for pid in range(4))

    def test_forged_share_detected(self):
        c = self.scheme.encrypt(b"z", RNG.get("v5"))
        good = self.scheme.partial_decrypt(c, 0)
        forged = DecryptionShare(
            c.cipher_id, ShamirShare(good.share.index, good.share.value ^ 1)
        )
        assert not self.scheme.verify_decryption_share(c, forged)

    def test_forged_shares_do_not_break_decryption(self):
        c = self.scheme.encrypt(b"resilient", RNG.get("v6"))
        good = [self.scheme.partial_decrypt(c, i) for i in range(3)]
        forged = DecryptionShare(c.cipher_id, ShamirShare(4, 12345))
        assert self.scheme.decrypt(c, [forged] + good) == b"resilient"

    def test_share_for_wrong_cipher_rejected(self):
        c1 = self.scheme.encrypt(b"one", RNG.get("v7"))
        c2 = self.scheme.encrypt(b"two", RNG.get("v8"))
        share = self.scheme.partial_decrypt(c1, 0)
        assert not self.scheme.verify_decryption_share(c2, share)

    def test_invalid_pid(self):
        c = self.scheme.encrypt(b"p", RNG.get("v9"))
        with pytest.raises(VssError):
            self.scheme.partial_decrypt(c, 9)

    def test_ciphertext_differs_from_plaintext(self):
        msg = b"plaintext-visible?"
        c = self.scheme.encrypt(msg, RNG.get("v10"))
        assert msg not in c.body

    def test_cipher_wire_size_scales_with_n(self):
        small = VssScheme(3, 4, seed=1).encrypt(b"a" * 64, RNG.get("v11"))
        large = VssScheme(35, 52, seed=1).encrypt(b"a" * 64, RNG.get("v12"))
        assert large.wire_size() > small.wire_size()

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_property_roundtrip(self, payload):
        rng = RngRegistry(len(payload)).get("vp")
        c = self.scheme.encrypt(payload, rng)
        shares = [self.scheme.partial_decrypt(c, i) for i in (1, 2, 3)]
        assert self.scheme.decrypt(c, shares) == payload
