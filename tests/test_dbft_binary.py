"""Tests for vanilla DBFT binary agreement (baseline [8]): validity,
agreement, termination under unanimous, split, and randomized inputs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dbft_binary import (
    BA_AUX_KIND,
    BA_BV_KIND,
    BA_COORD_KIND,
    BinaryAgreement,
)
from repro.core.services import ProtocolServices
from repro.crypto.cost import FREE_COSTS
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import ThresholdScheme
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.engine import MILLISECONDS, Simulator
from repro.sim.process import SimProcess

DELAY = 5 * MILLISECONDS


class BaNode(SimProcess):
    def __init__(self, pid, sim, *, n, f, registry, threshold):
        super().__init__(pid, sim)
        self.n, self.f = n, f
        self.registry, self.threshold_scheme = registry, threshold
        self.decisions = []

    def attach(self, network):
        super().attach(network)
        services = ProtocolServices(
            pid=self.pid,
            n=self.n,
            f=self.f,
            sim=self.sim,
            delta_us=network.delta_us,
            signer=self.registry.signer(self.pid),
            registry=self.registry,
            threshold=self.threshold_scheme,
            costs=FREE_COSTS,
            send_fn=lambda dst, msg: self.send(dst, msg),
            broadcast_fn=lambda msg: self.broadcast(msg),
            timers=self.timers,
        )
        self.ba = BinaryAgreement(
            services, "ba", on_decide=self.decisions.append
        )

    def on_message(self, message, sender):
        payload = message.payload if isinstance(message.payload, dict) else {}
        if payload.get("iid") != "ba":
            return
        self.ba.handle(message.kind, payload, sender)


def build(n=4):
    f = (n - 1) // 3
    sim = Simulator()
    registry = KeyRegistry(41)
    threshold = ThresholdScheme(2 * f + 1, n, seed=41)
    net = Network(
        sim,
        UniformLatencyModel(DELAY),
        config=NetworkConfig(delta_us=DELAY, bandwidth_enabled=False),
    )
    nodes = []
    for pid in range(n):
        node = BaNode(pid, sim, n=n, f=f, registry=registry, threshold=threshold)
        nodes.append(node)
        net.register(node)
    return sim, nodes


def run(inputs, n=4, horizon_us=5_000_000):
    sim, nodes = build(n)
    for node, b in zip(nodes, inputs):
        if b is not None:
            node.ba.propose(b)
    sim.run(until=horizon_us)
    return nodes


class TestUnanimous:
    def test_all_one_decides_one(self):
        nodes = run([1, 1, 1, 1])
        assert all(node.decisions == [1] for node in nodes)

    def test_all_zero_decides_zero(self):
        nodes = run([0, 0, 0, 0])
        assert all(node.decisions == [0] for node in nodes)


class TestSplit:
    @pytest.mark.parametrize("inputs", [[1, 1, 1, 0], [0, 0, 0, 1], [1, 0, 1, 0]])
    def test_agreement_and_termination(self, inputs):
        nodes = run(inputs)
        values = {node.decisions[0] for node in nodes if node.decisions}
        assert len(values) == 1
        assert all(node.decisions for node in nodes)

    def test_validity_decided_value_was_some_input(self):
        inputs = [1, 0, 0, 0]
        nodes = run(inputs)
        decided = nodes[0].decisions[0]
        assert decided in inputs


class TestFaults:
    def test_silent_node_does_not_block(self):
        # f = 1: one process never proposes nor participates.
        sim, nodes = build(4)
        nodes[3].crash()
        for node in nodes[:3]:
            node.ba.propose(1)
        sim.run(until=8_000_000)
        assert all(node.decisions == [1] for node in nodes[:3])

    def test_invalid_input_rejected(self):
        sim, nodes = build(4)
        with pytest.raises(ValueError):
            nodes[0].ba.propose(2)

    def test_decides_once(self):
        nodes = run([1, 1, 1, 1], horizon_us=8_000_000)
        assert all(len(node.decisions) == 1 for node in nodes)


class TestRandomInputs:
    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=4))
    def test_property_agreement(self, inputs):
        nodes = run(inputs)
        values = {node.decisions[0] for node in nodes if node.decisions}
        assert len(values) == 1
        assert next(iter(values)) in inputs

    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=7, max_size=7))
    def test_property_agreement_seven_nodes(self, inputs):
        nodes = run(inputs, n=7)
        values = {node.decisions[0] for node in nodes if node.decisions}
        assert len(values) == 1
