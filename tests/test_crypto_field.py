"""Unit and property tests for GF(p), polynomials, and Lagrange
interpolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import DEFAULT_FIELD, MERSENNE_127, PrimeField
from repro.crypto.polynomial import Polynomial, lagrange_interpolate_at
from repro.sim.rng import RngRegistry

F = DEFAULT_FIELD
elements = st.integers(min_value=0, max_value=F.p - 1)
nonzero = st.integers(min_value=1, max_value=F.p - 1)


class TestFieldBasics:
    def test_modulus_is_mersenne_127(self):
        assert F.p == MERSENNE_127 == (1 << 127) - 1

    def test_canonicalisation(self):
        assert F.element(F.p) == 0
        assert F.element(-1) == F.p - 1

    def test_zero_inverse_rejected(self):
        with pytest.raises(ZeroDivisionError):
            F.inv(0)

    def test_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            PrimeField(2)

    def test_sum_prod(self):
        assert F.sum([F.p - 1, 1]) == 0
        assert F.prod([2, 3, 5]) == 30

    def test_random_element_in_range(self):
        rng = RngRegistry(1).get("f")
        for _ in range(50):
            assert 0 <= F.random_element(rng) < F.p

    def test_encode_bytes(self):
        assert F.encode_bytes(b"\x01") == 1
        with pytest.raises(ValueError):
            F.encode_bytes(b"x" * 16)

    def test_equality_and_hash(self):
        assert PrimeField(F.p) == F
        assert hash(PrimeField(F.p)) == hash(F)


class TestFieldProperties:
    @given(elements, elements)
    def test_add_commutes(self, a, b):
        assert F.add(a, b) == F.add(b, a)

    @given(elements, elements, elements)
    def test_mul_distributes(self, a, b, c):
        assert F.mul(a, F.add(b, c)) == F.add(F.mul(a, b), F.mul(a, c))

    @given(nonzero)
    def test_inverse_property(self, a):
        assert F.mul(a, F.inv(a)) == 1

    @given(elements)
    def test_neg_property(self, a):
        assert F.add(a, F.neg(a)) == 0

    @given(elements, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert F.mul(F.div(a, b), b) == a


class TestPolynomial:
    def test_horner_matches_naive(self):
        poly = Polynomial([3, 1, 4, 1, 5])
        x = 123456789
        naive = sum(c * x**i for i, c in enumerate([3, 1, 4, 1, 5])) % F.p
        assert poly.evaluate(x) == naive

    def test_secret_is_constant_term(self):
        rng = RngRegistry(2).get("p")
        poly = Polynomial.random_with_secret(42, 3, rng)
        assert poly.secret == 42
        assert poly.evaluate(0) == 42
        assert poly.degree == 3

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Polynomial([])

    def test_negative_degree_rejected(self):
        rng = RngRegistry(2).get("p")
        with pytest.raises(ValueError):
            Polynomial.random_with_secret(1, -1, rng)

    def test_evaluate_many(self):
        poly = Polynomial([7])
        assert poly.evaluate_many([1, 2, 3]) == [7, 7, 7]


class TestLagrange:
    def test_reconstructs_constant_term(self):
        rng = RngRegistry(3).get("p")
        poly = Polynomial.random_with_secret(777, 4, rng)
        points = [(i, poly.evaluate(i)) for i in range(1, 6)]
        assert lagrange_interpolate_at(points, 0) == 777

    def test_reconstructs_arbitrary_point(self):
        poly = Polynomial([5, 3, 2])
        points = [(i, poly.evaluate(i)) for i in (2, 7, 11)]
        assert lagrange_interpolate_at(points, 20) == poly.evaluate(20)

    def test_duplicate_abscissae_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate_at([(1, 2), (1, 3)], 0)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate_at([], 0)

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=F.p - 1), st.integers(1, 6))
    def test_property_roundtrip(self, secret, degree):
        rng = RngRegistry(secret % 1000).get("lag")
        poly = Polynomial.random_with_secret(secret, degree, rng)
        pts = [(i, poly.evaluate(i)) for i in range(1, degree + 2)]
        assert lagrange_interpolate_at(pts, 0) == secret
