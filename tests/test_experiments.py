"""Tests for the experiment drivers (one per paper artefact) and the
good-case round measurements."""

import pytest

from repro.harness.experiments import (
    batch_ablation,
    fig2_commit_latency,
    fig3_throughput,
    format_rows,
    goodcase_latency_rounds,
    lambda_ablation,
)
from repro.harness.rounds import measure_lyra_rounds, measure_pompe_rounds


class TestGoodCaseRounds:
    """§III-§IV: Lyra's BOC decides in 3 message delays — the paper's
    optimality claim (Theorem 3) versus Pompē's ~11 rounds."""

    def test_lyra_three_rounds(self):
        rounds = measure_lyra_rounds(n=4, delay_ms=40)
        assert 2.9 <= rounds <= 3.2, rounds

    def test_lyra_three_rounds_larger_cluster(self):
        rounds = measure_lyra_rounds(n=7, delay_ms=40)
        assert 2.9 <= rounds <= 3.2, rounds

    def test_pompe_about_eleven_rounds(self):
        rounds = measure_pompe_rounds(n=4, delay_ms=40)
        assert 9.0 <= rounds <= 13.0, rounds

    def test_summary_row(self):
        row = goodcase_latency_rounds(n=4, delay_ms=40)
        assert row["lyra_decide_rounds"] < row["pompe_commit_rounds"]
        assert row["paper_lyra"] == 3 and row["paper_pompe"] == 11


@pytest.mark.slow
class TestFig2:
    def test_quick_sweep_sane(self):
        rows = fig2_commit_latency([4, 7])
        assert len(rows) == 2
        for row in rows:
            assert row["lyra_safety"] is None
            assert row["pompe_safety"] is None
            assert 0 < row["lyra_latency_ms"] < 2000
            assert 0 < row["pompe_latency_ms"] < 4000

    def test_lyra_latency_stable_across_n(self):
        rows = fig2_commit_latency([4, 10])
        lats = [r["lyra_latency_ms"] for r in rows]
        assert max(lats) < 1.5 * min(lats)  # "relatively stable" (§VI-C)


class TestFig3:
    def test_paper_rows_shape(self):
        rows = fig3_throughput()
        by_n = {r["n"]: r for r in rows}
        assert by_n[100]["ratio"] >= 5.0
        assert by_n[5]["ratio"] < 1.0
        lyra = [r["lyra_ktps"] for r in rows]
        assert lyra == sorted(lyra)

    def test_custom_ns(self):
        rows = fig3_throughput([10, 20])
        assert [r["n"] for r in rows] == [10, 20]


class TestAblations:
    @pytest.mark.slow
    def test_lambda_five_ms_suffices(self):
        rows = lambda_ablation((2, 5, 50), n=4)
        by_lambda = {r["lambda_ms"]: r for r in rows}
        # §VI-B: λ = 5 ms does not hurt performance: acceptance at 5 ms is
        # as good as with a very loose λ.
        assert by_lambda[5]["acceptance_rate"] == by_lambda[50]["acceptance_rate"]
        assert by_lambda[5]["committed"] > 0

    def test_batch_ablation_shape(self):
        rows = batch_ablation((1, 100, 800, 3200), n=100)
        by_batch = {r["batch"]: r for r in rows}
        # Tiny batches cannot amortise per-instance costs.
        assert by_batch[1]["lyra_ktps"] < by_batch[800]["lyra_ktps"]
        # Past the knee, throughput gains flatten while fill time grows.
        gain = by_batch[3200]["lyra_ktps"] / by_batch[800]["lyra_ktps"]
        assert gain < 1.5
        assert by_batch[3200]["batch_fill_ms"] == 4 * by_batch[800]["batch_fill_ms"]


class TestFormatting:
    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": "x"}, {"a": 22, "c": None}])
        assert "a" in text and "22" in text
        assert format_rows([]) == "(no rows)"
